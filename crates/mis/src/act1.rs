//! An Actel ACT1-style multiplexer-based logic module as a mapping
//! target.
//!
//! The paper's conclusion asks to "extend our algorithm to handle
//! commercial FPGA architectures". Besides lookup tables (Xilinx), the
//! other commercial architecture of the era was the Actel ACT1 family
//! [ElGa89 in the paper's references], whose logic module is a tree of
//! three 2:1 multiplexers:
//!
//! ```text
//! out = MUX( MUX(a0, a1, sa), MUX(b0, b1, sb), s0 OR s1 )
//! ```
//!
//! Unlike a LUT, the module realizes only the functions obtainable by
//! wiring constants and signals to its eight pins. This module enumerates
//! that function set (for up to [`ACT1_MAX_VARS`] distinct signals) as a
//! [`Library`], so the existing cut-enumeration mapper covers networks
//! with ACT1 modules directly.

use std::collections::{HashMap, HashSet};

use crate::canon::canonical_npn_u64;
use crate::library::Library;

/// Largest distinct-signal count enumerated for the ACT1 module. The
/// physical module has eight pins, but functions of more than five
/// distinct signals are rare in covers and keeping the bound at five
/// keeps canonicalization cheap.
pub const ACT1_MAX_VARS: usize = 5;

/// Bit patterns of five variables within a 32-bit truth table word.
const VARS5: [u32; 5] = [
    0xAAAA_AAAA,
    0xCCCC_CCCC,
    0xF0F0_F0F0,
    0xFF00_FF00,
    0xFFFF_0000,
];

fn mux(a: u32, b: u32, s: u32) -> u32 {
    (s & b) | (!s & a)
}

/// Enumerates the NPN classes of all functions the ACT1 module can
/// realize with up to [`ACT1_MAX_VARS`] distinct input signals, keyed by
/// support size.
fn act1_classes() -> HashMap<usize, HashSet<u64>> {
    // Pin choices: constant 0, constant 1, or one of five variables.
    let choices: Vec<u32> = {
        let mut v = vec![0u32, u32::MAX];
        v.extend_from_slice(&VARS5);
        v
    };
    // Select inputs s0, s1 are ORed; enumerate the OR directly.
    let mut selects: Vec<u32> = choices.clone();
    for (i, &a) in VARS5.iter().enumerate() {
        for &b in &VARS5[i + 1..] {
            selects.push(a | b);
        }
    }
    selects.sort_unstable();
    selects.dedup();

    // Raw function tables over 5 variables.
    let mut raw: HashSet<u32> = HashSet::new();
    let n = choices.len();
    for &s in &selects {
        // Iterate (a0, a1, sa, b0, b1, sb) as digits base `n`.
        let total = n.pow(6);
        for code in 0..total {
            let mut digits = [0usize; 6];
            let mut c = code;
            for d in &mut digits {
                *d = c % n;
                c /= n;
            }
            let a = mux(choices[digits[0]], choices[digits[1]], choices[digits[2]]);
            let b = mux(choices[digits[3]], choices[digits[4]], choices[digits[5]]);
            raw.insert(mux(a, b, s));
        }
    }

    // Shrink each unique table to its support and canonicalize.
    let mut classes: HashMap<usize, HashSet<u64>> = HashMap::new();
    for table in raw {
        let (shrunk, support) = shrink5(table);
        if support == 0 || support > ACT1_MAX_VARS {
            continue; // constants are free; nothing exceeds 5 here
        }
        classes
            .entry(support)
            .or_default()
            .insert(canonical_npn_u64(shrunk, support));
    }
    classes
}

/// Shrinks a 5-variable table to its true support; returns the compacted
/// table and the support size.
fn shrink5(table: u32) -> (u64, usize) {
    let mut vars: Vec<usize> = Vec::new();
    for (v, &mask) in VARS5.iter().enumerate() {
        let shift = 1u32 << v;
        let pos = (table & mask) >> shift;
        let neg = table & !mask;
        if pos != neg {
            vars.push(v);
        }
    }
    let k = vars.len();
    let mut out = 0u64;
    for bits in 0..(1u32 << k) {
        let mut full = 0u32;
        for (j, &v) in vars.iter().enumerate() {
            if (bits >> j) & 1 == 1 {
                full |= 1 << v;
            }
        }
        if (table >> full) & 1 == 1 {
            out |= 1u64 << bits;
        }
    }
    (out, k)
}

/// Builds the ACT1 logic-module library: the mapper then covers networks
/// with ACT1 modules instead of LUTs (area = module count).
///
/// # Examples
///
/// ```
/// use chortle_mis::{act1_library, map_network, MisOptions};
/// use chortle_netlist::{Network, NodeOp, TruthTable};
///
/// let lib = act1_library();
/// // The module natively implements a 2:1 mux...
/// let mux = TruthTable::from_fn(3, |b| if b & 4 == 4 { b & 2 == 2 } else { b & 1 == 1 });
/// assert!(lib.contains(&mux));
/// // ...but not 4-input parity.
/// let xor4 = TruthTable::from_fn(4, |b| b.count_ones() % 2 == 1);
/// assert!(!lib.contains(&xor4));
/// ```
pub fn act1_library() -> Library {
    Library::from_classes(ACT1_MAX_VARS, act1_classes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chortle_netlist::TruthTable;

    fn tt(vars: usize, f: impl Fn(u32) -> bool) -> TruthTable {
        TruthTable::from_fn(vars, f)
    }

    #[test]
    fn shrink_matches_semantics() {
        // table = v3 alone.
        let (shrunk, k) = shrink5(VARS5[3]);
        assert_eq!(k, 1);
        assert_eq!(shrunk, 0b10);
        // Constant.
        let (_, k0) = shrink5(0);
        assert_eq!(k0, 0);
    }

    #[test]
    fn act1_contains_basic_gates_and_muxes() {
        let lib = act1_library();
        assert!(lib.contains(&tt(2, |b| b == 0b11))); // AND2
        assert!(lib.contains(&tt(2, |b| b != 0))); // OR2
        assert!(lib.contains(&tt(2, |b| b.count_ones() % 2 == 1))); // XOR2
        assert!(lib.contains(&tt(3, |b| {
            if b & 4 == 4 {
                b & 2 == 2
            } else {
                b & 1 == 1
            }
        }))); // MUX21
        assert!(lib.contains(&tt(3, |b| b == 0b111))); // AND3
        assert!(lib.contains(&tt(3, |b| b.count_ones() >= 2))); // MAJ3 = mux(b, c, a)-ish
    }

    #[test]
    fn act1_misses_wide_parity() {
        let lib = act1_library();
        assert!(!lib.contains(&tt(4, |b| b.count_ones() % 2 == 1)));
        assert!(!lib.contains(&tt(5, |b| b.count_ones() % 2 == 1)));
        // XOR3 needs two XOR stages; a single module cannot do it.
        assert!(!lib.contains(&tt(3, |b| b.count_ones() % 2 == 1)));
    }

    #[test]
    fn act1_class_counts_are_sane() {
        let lib = act1_library();
        // Known structure: all 2-input functions (4 NPN classes minus
        // constants/wires = 2 gate classes + XOR) are implementable.
        assert!(lib.class_count(2) >= 2);
        // A rich but not complete set at 3 inputs (14 NPN classes total
        // including constants; the module reaches most non-parity ones).
        let three = lib.class_count(3);
        assert!((4..=12).contains(&three), "3-input classes: {three}");
        // Some 4- and 5-input functions exist.
        assert!(lib.class_count(4) > 0);
        assert!(lib.class_count(5) > 0);
    }

    #[test]
    fn mapper_covers_networks_with_act1_modules() {
        use crate::mapper::{map_network, MisOptions};
        use chortle_netlist::{check_equivalence, Network, NodeOp, Signal};
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let d = net.add_input("d");
        let g1 = net.add_gate(NodeOp::And, vec![a.into(), b.into()]);
        let g2 = net.add_gate(NodeOp::Or, vec![g1.into(), Signal::inverted(c)]);
        let z = net.add_gate(NodeOp::And, vec![g2.into(), d.into()]);
        net.add_output("z", z.into());
        let lib = act1_library();
        let mapped = map_network(&net, &lib, &MisOptions::new(ACT1_MAX_VARS)).expect("maps");
        check_equivalence(&net, &mapped.circuit).expect("equivalent");
        assert!(mapped.report.luts >= 1);
    }
}
