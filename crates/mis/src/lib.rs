//! The MIS II-style library mapper — the baseline of the Chortle DAC 1990
//! evaluation (Section 4 of the paper).
//!
//! The historical comparison pitted Chortle against the MIS technology
//! mapper [Detj87] driving libraries built for K-input lookup tables:
//! complete libraries for K = 2 and 3, and partial libraries built from
//! level-0 kernels, their duals and common elements for K = 4 and 5 (a
//! complete K = 4 library would need 9014 cells). This crate reimplements
//! that baseline:
//!
//! * [`canonical_npn`] / [`canonical_npn_u64`] — function classes under
//!   permutation and (free) inversion,
//! * [`Library`] — complete and paper-style partial libraries,
//! * [`binary_decompose`] — the fixed balanced subject graph,
//! * [`map_network`] — cut-enumeration tree covering with optional greedy
//!   fanout duplication.
//!
//! # Examples
//!
//! ```
//! use chortle_mis::{map_network, Library, MisOptions};
//! use chortle_netlist::{Network, NodeOp};
//!
//! let mut net = Network::new();
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let g = net.add_gate(NodeOp::And, vec![a.into(), b.into()]);
//! net.add_output("z", g.into());
//!
//! let lib = Library::for_paper(4);
//! let mapped = map_network(&net, &lib, &MisOptions::new(4))?;
//! assert_eq!(mapped.report.luts, 1);
//! # Ok::<(), chortle_mis::MisError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod act1;
mod canon;
mod decomp;
mod library;
mod mapper;

pub use act1::{act1_library, ACT1_MAX_VARS};
pub use canon::{
    apply_npn_u64, canonical_npn, canonical_npn_u64, canonical_npn_u64_cached,
    canonical_npn_with_transform, count_npn_classes, count_p_classes_nonconstant, NpnTransform,
    MAX_CANON_VARS,
};
pub use decomp::binary_decompose;
pub use library::Library;
pub use mapper::{map_network, MisError, MisMapping, MisOptions, MisReport};
