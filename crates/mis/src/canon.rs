//! NPN canonicalization of small Boolean functions.
//!
//! The MIS library "needs to contain only a single instance of all boolean
//! functions that are permutations of each other" (paper Section 4.1), and
//! since the comparison does not count inverters ("a simple post-processor
//! could easily merge all inverters into the lookup tables"), input and
//! output complementation are free as well. Membership is therefore
//! decided on the NPN canonical form: the lexicographically smallest truth
//! table over all input Negations, input Permutations, and output
//! Negation.
//!
//! Functions are restricted to at most [`MAX_CANON_VARS`] variables, which
//! covers every library cell of a K ≤ 6 lookup table; tables fit one
//! `u64`.

use chortle_netlist::TruthTable;

/// Largest function arity supported by [`canonical_npn`].
pub const MAX_CANON_VARS: usize = 6;

/// Bit patterns of the variables within a 64-bit truth table word.
const VAR_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Valid-bit mask for a `vars`-variable table packed into a `u64`.
fn table_mask(vars: usize) -> u64 {
    if vars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << vars)) - 1
    }
}

/// Complements input `i` of a packed table: swaps the half-blocks where
/// variable `i` is 0 and 1.
fn flip_input(t: u64, i: usize) -> u64 {
    let shift = 1u32 << i;
    ((t & VAR_MASKS[i]) >> shift) | ((t & !VAR_MASKS[i]) << shift)
}

/// Swaps adjacent variables `i` and `i+1` of a packed table.
fn swap_adjacent(t: u64, i: usize) -> u64 {
    let shift = 1u32 << i;
    let hi = VAR_MASKS[i] & !VAR_MASKS[i + 1]; // var i set, var i+1 clear
    let lo = !VAR_MASKS[i] & VAR_MASKS[i + 1]; // var i clear, var i+1 set
    (t & !(hi | lo)) | ((t & hi) << shift) | ((t & lo) >> shift)
}

/// Applies a variable permutation (`perm[i]` = new position of old
/// variable `i`) via adjacent transpositions.
fn apply_perm(mut t: u64, perm: &[usize]) -> u64 {
    let n = perm.len();
    let mut cur: Vec<usize> = (0..n).collect();
    for target in 0..n {
        let old = perm.iter().position(|&p| p == target).expect("permutation");
        let mut pos = cur.iter().position(|&c| c == old).expect("tracked");
        while pos > target {
            t = swap_adjacent(t, pos - 1);
            cur.swap(pos - 1, pos);
            pos -= 1;
        }
    }
    t
}

/// All permutations of `0..n` (intended for small `n`).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for sub in permutations(n - 1) {
        for pos in 0..n {
            let mut p = sub.clone();
            p.insert(pos, n - 1);
            out.push(p);
        }
    }
    out
}

/// The NPN canonical form of a packed truth table.
///
/// # Panics
///
/// Panics if `vars > MAX_CANON_VARS`.
///
/// # Examples
///
/// ```
/// use chortle_mis::canonical_npn_u64;
///
/// // a AND b and a OR b are NPN-equivalent (De Morgan).
/// let and2 = 0b1000u64;
/// let or2 = 0b1110u64;
/// assert_eq!(canonical_npn_u64(and2, 2), canonical_npn_u64(or2, 2));
/// // XOR is its own class, distinct from AND/OR.
/// assert_ne!(canonical_npn_u64(0b0110, 2), canonical_npn_u64(and2, 2));
/// ```
pub fn canonical_npn_u64(table: u64, vars: usize) -> u64 {
    assert!(
        vars <= MAX_CANON_VARS,
        "NPN canonicalization supports at most {MAX_CANON_VARS} variables"
    );
    let mask = table_mask(vars);
    let table = table & mask;
    let mut best = u64::MAX;
    for perm in permutations(vars) {
        let p = apply_perm(table, &perm);
        // Gray-code walk over the input-complementation lattice.
        let mut cur = p;
        let mut gray_prev = 0u32;
        for g in 0..(1u32 << vars) {
            let gray = g ^ (g >> 1);
            let diff = gray ^ gray_prev;
            if diff != 0 {
                cur = flip_input(cur, diff.trailing_zeros() as usize);
            }
            gray_prev = gray;
            let a = cur & mask;
            let b = !cur & mask;
            if a < best {
                best = a;
            }
            if b < best {
                best = b;
            }
        }
    }
    best
}

/// The NPN canonical form of a [`TruthTable`] (must have at most
/// [`MAX_CANON_VARS`] variables).
///
/// # Panics
///
/// Panics if the table has more than [`MAX_CANON_VARS`] variables.
pub fn canonical_npn(table: &TruthTable) -> u64 {
    canonical_npn_u64(table.words()[0], table.num_vars())
}

/// Counts the NPN classes among an iterator of packed tables.
pub fn count_npn_classes<I: IntoIterator<Item = u64>>(tables: I, vars: usize) -> usize {
    let mut set = std::collections::HashSet::new();
    for t in tables {
        set.insert(canonical_npn_u64(t, vars));
    }
    set.len()
}

/// Counts the classes of `vars`-variable functions under input
/// permutation only — the paper's library-size metric ("10 unique
/// functions out of a possible 16" for K=2, "78 out of 256" for K=3,
/// constants excluded).
pub fn count_p_classes_nonconstant(vars: usize) -> usize {
    assert!(vars <= 4, "P-class counting is exhaustive; keep vars small");
    let mask = table_mask(vars);
    let mut set = std::collections::HashSet::new();
    let perms = permutations(vars);
    for t in 0..=mask {
        if t == 0 || t == mask {
            continue;
        }
        let canon = perms
            .iter()
            .map(|p| apply_perm(t, p) & mask)
            .min()
            .expect("at least one permutation");
        set.insert(canon);
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_input_matches_truth_table_semantics() {
        // f = a AND b; flipping a gives !a AND b.
        let f = 0b1000u64;
        let flipped = flip_input(f, 0) & table_mask(2);
        assert_eq!(flipped, 0b0100);
    }

    #[test]
    fn swap_matches_permutation() {
        // f = a AND !b: minterm a=1,b=0 → index 0b01 → bit 1.
        let f = 0b0010u64;
        // After swapping a,b: !a AND b → index 0b10 → bit 2.
        assert_eq!(swap_adjacent(f, 0) & table_mask(2), 0b0100);
    }

    #[test]
    fn canonical_is_invariant_under_group_action() {
        let f = 0b0110_1001_1100_0011u64; // arbitrary 4-var function
        let c = canonical_npn_u64(f, 4);
        assert_eq!(canonical_npn_u64(!f & table_mask(4), 4), c);
        assert_eq!(canonical_npn_u64(flip_input(f, 2), 4), c);
        assert_eq!(canonical_npn_u64(apply_perm(f, &[3, 0, 2, 1]), 4), c);
    }

    #[test]
    fn npn_class_counts_match_known_values() {
        // Known NPN class counts including constants: 1 var: 2, 2 vars: 4,
        // 3 vars: 14.
        assert_eq!(count_npn_classes(0u64..4, 1), 2);
        assert_eq!(count_npn_classes(0u64..16, 2), 4);
        assert_eq!(count_npn_classes(0u64..256, 3), 14);
    }

    #[test]
    fn p_class_counts_match_paper() {
        // Paper Section 4.1: 10 unique nonconstant functions for K=2 and
        // 78 for K=3 under input permutation.
        assert_eq!(count_p_classes_nonconstant(2), 10);
        assert_eq!(count_p_classes_nonconstant(3), 78);
    }

    #[test]
    fn distinct_functions_distinct_classes() {
        // XOR3, MAJ3, AND3 are pairwise NPN-inequivalent.
        let xor3 = 0b1001_0110u64;
        let and3 = 0b1000_0000u64;
        let maj3 = 0b1110_1000u64;
        let cs: std::collections::HashSet<u64> = [xor3, and3, maj3]
            .iter()
            .map(|&t| canonical_npn_u64(t, 3))
            .collect();
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn five_var_canonicalization_is_consistent() {
        let f = 0x0123_4567_89AB_CDEFu64 & table_mask(5);
        let c = canonical_npn_u64(f, 5);
        assert_eq!(canonical_npn_u64(apply_perm(f, &[4, 3, 2, 1, 0]), 5), c);
        assert_eq!(canonical_npn_u64(!f & table_mask(5), 5), c);
    }
}
