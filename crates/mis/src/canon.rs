//! NPN canonicalization of small Boolean functions.
//!
//! The MIS library "needs to contain only a single instance of all boolean
//! functions that are permutations of each other" (paper Section 4.1), and
//! since the comparison does not count inverters ("a simple post-processor
//! could easily merge all inverters into the lookup tables"), input and
//! output complementation are free as well. Membership is therefore
//! decided on the NPN canonical form: the lexicographically smallest truth
//! table over all input Negations, input Permutations, and output
//! Negation.
//!
//! Functions are restricted to at most [`MAX_CANON_VARS`] variables, which
//! covers every library cell of a K ≤ 6 lookup table; tables fit one
//! `u64`.

use chortle_netlist::TruthTable;

/// Largest function arity supported by [`canonical_npn`].
pub const MAX_CANON_VARS: usize = 6;

/// Bit patterns of the variables within a 64-bit truth table word.
const VAR_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Valid-bit mask for a `vars`-variable table packed into a `u64`.
fn table_mask(vars: usize) -> u64 {
    if vars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << vars)) - 1
    }
}

/// Complements input `i` of a packed table: swaps the half-blocks where
/// variable `i` is 0 and 1.
fn flip_input(t: u64, i: usize) -> u64 {
    let shift = 1u32 << i;
    ((t & VAR_MASKS[i]) >> shift) | ((t & !VAR_MASKS[i]) << shift)
}

/// Swaps adjacent variables `i` and `i+1` of a packed table.
fn swap_adjacent(t: u64, i: usize) -> u64 {
    let shift = 1u32 << i;
    let hi = VAR_MASKS[i] & !VAR_MASKS[i + 1]; // var i set, var i+1 clear
    let lo = !VAR_MASKS[i] & VAR_MASKS[i + 1]; // var i clear, var i+1 set
    (t & !(hi | lo)) | ((t & hi) << shift) | ((t & lo) >> shift)
}

/// Swaps arbitrary variables `i < j` of a packed table: minterms with
/// var `j` set and var `i` clear trade places with their var-`i`-set,
/// var-`j`-clear partners, a distance of `2^j - 2^i` index positions.
fn swap_vars(t: u64, i: usize, j: usize) -> u64 {
    debug_assert!(i < j);
    let down = VAR_MASKS[j] & !VAR_MASKS[i]; // var j set, var i clear
    let up = VAR_MASKS[i] & !VAR_MASKS[j]; // var i set, var j clear
    let shift = (1u32 << j) - (1u32 << i);
    (t & !(down | up)) | ((t & down) >> shift) | ((t & up) << shift)
}

/// Applies a variable permutation (`perm[i]` = new position of old
/// variable `i`) via adjacent transpositions.
fn apply_perm(mut t: u64, perm: &[usize]) -> u64 {
    let n = perm.len();
    let mut cur: Vec<usize> = (0..n).collect();
    for target in 0..n {
        let old = perm.iter().position(|&p| p == target).expect("permutation");
        let mut pos = cur.iter().position(|&c| c == old).expect("tracked");
        while pos > target {
            t = swap_adjacent(t, pos - 1);
            cur.swap(pos - 1, pos);
            pos -= 1;
        }
    }
    t
}

/// All permutations of `0..n` (intended for small `n`).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for sub in permutations(n - 1) {
        for pos in 0..n {
            let mut p = sub.clone();
            p.insert(pos, n - 1);
            out.push(p);
        }
    }
    out
}

/// The NPN canonical form of a packed truth table.
///
/// # Panics
///
/// Panics if `vars > MAX_CANON_VARS`.
///
/// # Examples
///
/// ```
/// use chortle_mis::canonical_npn_u64;
///
/// // a AND b and a OR b are NPN-equivalent (De Morgan).
/// let and2 = 0b1000u64;
/// let or2 = 0b1110u64;
/// assert_eq!(canonical_npn_u64(and2, 2), canonical_npn_u64(or2, 2));
/// // XOR is its own class, distinct from AND/OR.
/// assert_ne!(canonical_npn_u64(0b0110, 2), canonical_npn_u64(and2, 2));
/// ```
pub fn canonical_npn_u64(table: u64, vars: usize) -> u64 {
    assert!(
        vars <= MAX_CANON_VARS,
        "NPN canonicalization supports at most {MAX_CANON_VARS} variables"
    );
    let mask = table_mask(vars);
    // Gray-code walk over the input-complementation lattice of one
    // permuted table, folding both output polarities into the running
    // minimum.
    let flips_min = |p: u64, best: &mut u64| {
        let mut cur = p;
        let mut gray_prev = 0u32;
        for g in 0..(1u32 << vars) {
            let gray = g ^ (g >> 1);
            let diff = gray ^ gray_prev;
            if diff != 0 {
                cur = flip_input(cur, diff.trailing_zeros() as usize);
            }
            gray_prev = gray;
            let a = cur & mask;
            let b = !cur & mask;
            if a < *best {
                *best = a;
            }
            if b < *best {
                *best = b;
            }
        }
    };
    // Heap's algorithm visits every variable permutation with a single
    // pair swap between consecutive ones, applied directly to the packed
    // table — no permutation vectors, no per-permutation re-expansion.
    let mut best = u64::MAX;
    let mut cur = table & mask;
    flips_min(cur, &mut best);
    let mut c = [0usize; MAX_CANON_VARS];
    let mut i = 1;
    while i < vars {
        if c[i] < i {
            let a = if i % 2 == 0 { 0 } else { c[i] };
            cur = swap_vars(cur, a.min(i), a.max(i));
            flips_min(cur, &mut best);
            c[i] += 1;
            i = 1;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    best
}

/// [`canonical_npn_u64`] behind a process-wide memo.
///
/// Canonicalization is a pure function of `(table, vars)` and real
/// netlists draw their small-cone functions from a modest pool, so one
/// bounded, process-lifetime table turns the repeat cost into a hash
/// probe — across the trees of one run, across runs, and across daemon
/// requests alike. The memo stops growing at a fixed cap (further
/// misses are computed but not stored), so a pathological table stream
/// cannot balloon resident memory.
pub fn canonical_npn_u64_cached(table: u64, vars: usize) -> u64 {
    use std::collections::HashMap;
    use std::sync::{OnceLock, RwLock};
    const MEMO_CAP: usize = 1 << 20;
    static MEMO: OnceLock<RwLock<HashMap<(u64, u8), u64>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| RwLock::new(HashMap::new()));
    let key = (table, vars as u8);
    if let Some(&canon) = memo.read().expect("canon memo poisoned").get(&key) {
        return canon;
    }
    let canon = canonical_npn_u64(table, vars);
    let mut write = memo.write().expect("canon memo poisoned");
    if write.len() < MEMO_CAP {
        write.insert(key, canon);
    }
    canon
}

/// A recorded element of the NPN group: the transform that carries a
/// table onto its canonical form.
///
/// The action is `output_flip ∘ input_flips ∘ perm`: the permutation is
/// applied first, then each input `i` with bit `i` set in `input_flips`
/// is complemented (indices are *post-permutation* positions), and
/// finally the output is complemented if `output_flip` is set. This is
/// exactly the order [`canonical_npn_with_transform`] searches in, so
/// `apply_npn_u64(table, &t) == canon` holds for the returned pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NpnTransform {
    /// Number of variables the transform acts on.
    pub vars: u8,
    /// `perm[i]` = new position of old variable `i`; only the first
    /// `vars` entries are meaningful.
    pub perm: [u8; MAX_CANON_VARS],
    /// Bit `i` set = complement post-permutation input `i`.
    pub input_flips: u8,
    /// Complement the output.
    pub output_flip: bool,
}

impl NpnTransform {
    /// The identity transform on `vars` variables.
    pub fn identity(vars: usize) -> Self {
        assert!(vars <= MAX_CANON_VARS);
        let mut perm = [0u8; MAX_CANON_VARS];
        for (i, p) in perm.iter_mut().enumerate() {
            *p = i as u8;
        }
        NpnTransform {
            vars: vars as u8,
            perm,
            input_flips: 0,
            output_flip: false,
        }
    }
}

/// Applies a recorded N/P/N transform to a packed table.
pub fn apply_npn_u64(table: u64, t: &NpnTransform) -> u64 {
    let vars = t.vars as usize;
    let mask = table_mask(vars);
    let perm: Vec<usize> = t.perm[..vars].iter().map(|&p| p as usize).collect();
    let mut cur = apply_perm(table & mask, &perm);
    for i in 0..vars {
        if t.input_flips & (1 << i) != 0 {
            cur = flip_input(cur, i);
        }
    }
    if t.output_flip {
        !cur & mask
    } else {
        cur & mask
    }
}

/// Like [`canonical_npn_u64`], but also returns the transform that maps
/// `table` onto the canonical form (useful for replaying cached
/// decisions and for observability; the canonical value itself is what
/// cache keys use).
///
/// # Panics
///
/// Panics if `vars > MAX_CANON_VARS`.
pub fn canonical_npn_with_transform(table: u64, vars: usize) -> (u64, NpnTransform) {
    assert!(
        vars <= MAX_CANON_VARS,
        "NPN canonicalization supports at most {MAX_CANON_VARS} variables"
    );
    let mask = table_mask(vars);
    let table = table & mask;
    let mut best = u64::MAX;
    let mut best_t = NpnTransform::identity(vars);
    for perm in permutations(vars) {
        let p = apply_perm(table, &perm);
        let mut perm_u8 = [0u8; MAX_CANON_VARS];
        for (i, &v) in perm.iter().enumerate() {
            perm_u8[i] = v as u8;
        }
        let mut cur = p;
        let mut gray_prev = 0u32;
        for g in 0..(1u32 << vars) {
            let gray = g ^ (g >> 1);
            let diff = gray ^ gray_prev;
            if diff != 0 {
                cur = flip_input(cur, diff.trailing_zeros() as usize);
            }
            gray_prev = gray;
            let a = cur & mask;
            let b = !cur & mask;
            if a < best {
                best = a;
                best_t = NpnTransform {
                    vars: vars as u8,
                    perm: perm_u8,
                    input_flips: gray as u8,
                    output_flip: false,
                };
            }
            if b < best {
                best = b;
                best_t = NpnTransform {
                    vars: vars as u8,
                    perm: perm_u8,
                    input_flips: gray as u8,
                    output_flip: true,
                };
            }
        }
    }
    (best, best_t)
}

/// The NPN canonical form of a [`TruthTable`] (must have at most
/// [`MAX_CANON_VARS`] variables).
///
/// # Panics
///
/// Panics if the table has more than [`MAX_CANON_VARS`] variables.
pub fn canonical_npn(table: &TruthTable) -> u64 {
    canonical_npn_u64(table.words()[0], table.num_vars())
}

/// Counts the NPN classes among an iterator of packed tables.
pub fn count_npn_classes<I: IntoIterator<Item = u64>>(tables: I, vars: usize) -> usize {
    let mut set = std::collections::HashSet::new();
    for t in tables {
        set.insert(canonical_npn_u64(t, vars));
    }
    set.len()
}

/// Counts the classes of `vars`-variable functions under input
/// permutation only — the paper's library-size metric ("10 unique
/// functions out of a possible 16" for K=2, "78 out of 256" for K=3,
/// constants excluded).
pub fn count_p_classes_nonconstant(vars: usize) -> usize {
    assert!(vars <= 4, "P-class counting is exhaustive; keep vars small");
    let mask = table_mask(vars);
    let mut set = std::collections::HashSet::new();
    let perms = permutations(vars);
    for t in 0..=mask {
        if t == 0 || t == mask {
            continue;
        }
        let canon = perms
            .iter()
            .map(|p| apply_perm(t, p) & mask)
            .min()
            .expect("at least one permutation");
        set.insert(canon);
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_input_matches_truth_table_semantics() {
        // f = a AND b; flipping a gives !a AND b.
        let f = 0b1000u64;
        let flipped = flip_input(f, 0) & table_mask(2);
        assert_eq!(flipped, 0b0100);
    }

    #[test]
    fn swap_matches_permutation() {
        // f = a AND !b: minterm a=1,b=0 → index 0b01 → bit 1.
        let f = 0b0010u64;
        // After swapping a,b: !a AND b → index 0b10 → bit 2.
        assert_eq!(swap_adjacent(f, 0) & table_mask(2), 0b0100);
    }

    #[test]
    fn canonical_is_invariant_under_group_action() {
        let f = 0b0110_1001_1100_0011u64; // arbitrary 4-var function
        let c = canonical_npn_u64(f, 4);
        assert_eq!(canonical_npn_u64(!f & table_mask(4), 4), c);
        assert_eq!(canonical_npn_u64(flip_input(f, 2), 4), c);
        assert_eq!(canonical_npn_u64(apply_perm(f, &[3, 0, 2, 1]), 4), c);
    }

    #[test]
    fn npn_class_counts_match_known_values() {
        // Known NPN class counts including constants: 1 var: 2, 2 vars: 4,
        // 3 vars: 14.
        assert_eq!(count_npn_classes(0u64..4, 1), 2);
        assert_eq!(count_npn_classes(0u64..16, 2), 4);
        assert_eq!(count_npn_classes(0u64..256, 3), 14);
    }

    #[test]
    fn p_class_counts_match_paper() {
        // Paper Section 4.1: 10 unique nonconstant functions for K=2 and
        // 78 for K=3 under input permutation.
        assert_eq!(count_p_classes_nonconstant(2), 10);
        assert_eq!(count_p_classes_nonconstant(3), 78);
    }

    #[test]
    fn distinct_functions_distinct_classes() {
        // XOR3, MAJ3, AND3 are pairwise NPN-inequivalent.
        let xor3 = 0b1001_0110u64;
        let and3 = 0b1000_0000u64;
        let maj3 = 0b1110_1000u64;
        let cs: std::collections::HashSet<u64> = [xor3, and3, maj3]
            .iter()
            .map(|&t| canonical_npn_u64(t, 3))
            .collect();
        assert_eq!(cs.len(), 3);
    }

    /// SplitMix64 — deterministic, dependency-free PRNG for the
    /// property tests below.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn random_transform(rng: &mut Rng, vars: usize) -> NpnTransform {
        let mut perm = [0u8; MAX_CANON_VARS];
        for (i, p) in perm.iter_mut().enumerate() {
            *p = i as u8;
        }
        // Fisher–Yates over the first `vars` slots.
        for i in (1..vars).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        NpnTransform {
            vars: vars as u8,
            perm,
            input_flips: (rng.next() & ((1 << vars) - 1)) as u8,
            output_flip: rng.next() & 1 == 1,
        }
    }

    #[test]
    fn canonical_is_invariant_under_random_npn_transforms() {
        let mut rng = Rng(0xC0FF_EE00_D15E_A5E1);
        for vars in 1..=4usize {
            let mask = table_mask(vars);
            for _ in 0..200 {
                let table = rng.next() & mask;
                let canon = canonical_npn_u64(table, vars);
                let t = random_transform(&mut rng, vars);
                let image = apply_npn_u64(table, &t);
                assert_eq!(
                    canonical_npn_u64(image, vars),
                    canon,
                    "canonical form changed under {t:?} for table {table:#x} ({vars} vars)"
                );
                // The canonical form is itself canonical (idempotence).
                assert_eq!(canonical_npn_u64(canon, vars), canon);
            }
        }
    }

    #[test]
    fn canonical_is_true_lexicographic_minimum_exhaustive() {
        // At ≤3 vars the whole group and the whole function space are
        // small enough to enumerate: 2^(2^3) tables × 3!·2^3·2 images.
        for vars in 0..=3usize {
            let mask = table_mask(vars);
            let perms = permutations(vars);
            for table in 0..=mask {
                let mut min = u64::MAX;
                for perm in &perms {
                    let p = apply_perm(table, perm);
                    for flips in 0..(1u64 << vars) {
                        let mut cur = p;
                        for i in 0..vars {
                            if flips & (1 << i) != 0 {
                                cur = flip_input(cur, i);
                            }
                        }
                        min = min.min(cur & mask).min(!cur & mask);
                    }
                }
                assert_eq!(
                    canonical_npn_u64(table, vars),
                    min,
                    "not the lexicographic minimum for table {table:#x} ({vars} vars)"
                );
            }
        }
    }

    #[test]
    fn recorded_transform_reproduces_the_canonical_form() {
        let mut rng = Rng(0x5EED_0F00_BA5E_BA11);
        for vars in 0..=4usize {
            let mask = table_mask(vars);
            for _ in 0..100 {
                let table = rng.next() & mask;
                let (canon, t) = canonical_npn_with_transform(table, vars);
                assert_eq!(canon, canonical_npn_u64(table, vars));
                assert_eq!(
                    apply_npn_u64(table, &t),
                    canon,
                    "transform {t:?} does not carry {table:#x} onto its canonical form"
                );
                assert_eq!(t.vars as usize, vars);
            }
        }
    }

    #[test]
    fn identity_transform_is_a_no_op() {
        let t = NpnTransform::identity(3);
        assert_eq!(apply_npn_u64(0b1001_0110, &t), 0b1001_0110);
    }

    #[test]
    fn five_var_canonicalization_is_consistent() {
        let f = 0x0123_4567_89AB_CDEFu64 & table_mask(5);
        let c = canonical_npn_u64(f, 5);
        assert_eq!(canonical_npn_u64(apply_perm(f, &[4, 3, 2, 1, 0]), 5), c);
        assert_eq!(canonical_npn_u64(!f & table_mask(5), 5), c);
    }
}
