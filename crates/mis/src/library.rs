//! MIS library construction (Section 4.1 of the paper).
//!
//! A K-input lookup table can realize any K-input function, so a *complete*
//! MIS library must contain one cell per function class. The paper uses
//! complete libraries for K = 2 and 3 (10 and 78 unique nonconstant
//! functions under permutation) and notes that K = 4 would need 9014 —
//! "too large to represent in a MIS library". Its partial K ≥ 4 libraries
//! are built from:
//!
//! * all level-0 kernels with K or fewer literals, and their duals,
//! * level-n kernels that cannot be synthesized by level-0 kernels,
//! * common circuit elements (ANDs, AOIs, XORs).
//!
//! We realize that construction as: every *read-once* AND/OR function of
//! up to K distinct variables (level-0 kernels are the two-level read-once
//! functions, their duals and compositions are the multi-level ones) plus
//! the XOR2/XOR3 classes. Inverters are free (the paper does not count
//! them), so membership is decided on NPN canonical forms.

use std::collections::{HashMap, HashSet};

use chortle_netlist::TruthTable;

use crate::canon::{canonical_npn, canonical_npn_u64, MAX_CANON_VARS};

/// A technology library for the MIS-style mapper.
///
/// # Examples
///
/// ```
/// use chortle_mis::Library;
/// use chortle_netlist::TruthTable;
///
/// let lib = Library::for_paper(4);
/// let and4 = TruthTable::from_fn(4, |b| b == 0b1111);
/// assert!(lib.contains(&and4));
/// let xor4 = TruthTable::from_fn(4, |b| b.count_ones() % 2 == 1);
/// assert!(!lib.contains(&xor4)); // not in the paper's partial library
/// ```
#[derive(Clone, Debug)]
pub struct Library {
    k: usize,
    complete: bool,
    /// Canonical classes, keyed by support size.
    classes: HashMap<usize, HashSet<u64>>,
}

impl Library {
    /// The complete library of all functions of up to `k` inputs (used by
    /// the paper for K = 2 and 3).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > MAX_CANON_VARS`.
    pub fn complete(k: usize) -> Self {
        assert!((2..=MAX_CANON_VARS).contains(&k));
        Library {
            k,
            complete: true,
            classes: HashMap::new(),
        }
    }

    /// The paper's partial library for `k ≥ 4`: read-once AND/OR cells of
    /// up to `k` literals (level-0 kernels, duals and their compositions)
    /// plus XOR2 and XOR3.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > MAX_CANON_VARS`.
    pub fn partial(k: usize) -> Self {
        assert!((2..=MAX_CANON_VARS).contains(&k));
        let mut classes: HashMap<usize, HashSet<u64>> = HashMap::new();
        // Everything of up to three inputs: the paper built the K ≥ 4
        // libraries "by inspection of the library elements used by the
        // K=3 results", and those came from the complete K=3 library.
        for m in 2..=3usize {
            let span = 1u64 << (1u64 << m);
            for table in 1..span - 1 {
                classes
                    .entry(m)
                    .or_default()
                    .insert(canonical_npn_u64(table, m));
            }
        }
        // Wider cells: read-once AND/OR functions — the level-0 kernels
        // with up to K literals, their duals, and their compositions
        // ("level-n kernels").
        for m in 4..=k {
            for table in read_once_tables(m) {
                classes
                    .entry(m)
                    .or_default()
                    .insert(canonical_npn_u64(table, m));
            }
        }
        Library {
            k,
            complete: false,
            classes,
        }
    }

    /// Builds a library from explicit NPN classes keyed by support size
    /// (used for non-LUT architectures like the ACT1 module, whose
    /// function set comes from enumeration rather than completeness).
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `2..=MAX_CANON_VARS`.
    pub fn from_classes(k: usize, classes: HashMap<usize, HashSet<u64>>) -> Self {
        assert!((2..=MAX_CANON_VARS).contains(&k));
        Library {
            k,
            complete: false,
            classes,
        }
    }

    /// The library the paper pairs with each K: complete for K = 2 and 3,
    /// partial for K ≥ 4.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > MAX_CANON_VARS`.
    pub fn for_paper(k: usize) -> Self {
        if k <= 3 {
            Library::complete(k)
        } else {
            Library::partial(k)
        }
    }

    /// The LUT input limit the library targets.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether this is a complete library.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Number of distinct NPN classes with exactly `support` variables
    /// (partial libraries only; complete libraries report 0).
    pub fn class_count(&self, support: usize) -> usize {
        self.classes.get(&support).map_or(0, HashSet::len)
    }

    /// Whether a cone function can be realized by one library cell.
    ///
    /// The function is shrunk to its true support first; constants and
    /// single-variable functions (wires/inverters) are always realizable.
    ///
    /// # Panics
    ///
    /// Panics if the shrunk support exceeds [`MAX_CANON_VARS`].
    pub fn contains(&self, function: &TruthTable) -> bool {
        let (shrunk, vars) = function.shrunk();
        let s = vars.len();
        if s > self.k {
            return false;
        }
        if s <= 1 {
            return true;
        }
        if self.complete {
            return true;
        }
        self.classes
            .get(&s)
            .is_some_and(|set| set.contains(&canonical_npn(&shrunk)))
    }
}

/// All read-once AND/OR truth tables over exactly `m` positive variables
/// (one table per structural tree; duplicates are fine, callers
/// canonicalize).
fn read_once_tables(m: usize) -> Vec<u64> {
    fn mask(vars: usize) -> u64 {
        if vars >= 6 {
            u64::MAX
        } else {
            (1u64 << (1usize << vars)) - 1
        }
    }
    /// Builds tables of read-once trees over the variable set `vars`
    /// rooted at `and_root` (true = AND), over `total` total variables.
    fn build(vars: &[usize], and_root: bool, total: usize) -> Vec<u64> {
        if vars.len() == 1 {
            // A single variable: its projection table.
            let mut t = 0u64;
            for idx in 0..(1u64 << total) {
                if (idx >> vars[0]) & 1 == 1 {
                    t |= 1 << idx;
                }
            }
            return vec![t];
        }
        // Partition `vars` into at least two blocks; each block is a leaf
        // or a subtree with the dual root operation.
        let mut out = Vec::new();
        for partition in set_partitions(vars) {
            if partition.len() < 2 {
                continue;
            }
            // Cartesian product of block tables.
            let mut combos: Vec<u64> = vec![if and_root { mask(total) } else { 0 }];
            for block in &partition {
                let block_tables = build(block, !and_root, total);
                let mut next = Vec::with_capacity(combos.len() * block_tables.len());
                for &c in &combos {
                    for &b in &block_tables {
                        next.push(if and_root { c & b } else { c | b });
                    }
                }
                combos = next;
            }
            out.extend(combos);
        }
        out
    }
    fn set_partitions(atoms: &[usize]) -> Vec<Vec<Vec<usize>>> {
        if atoms.is_empty() {
            return vec![Vec::new()];
        }
        let first = atoms[0];
        let rest = &atoms[1..];
        let mut out = Vec::new();
        for sub in set_partitions(rest) {
            let mut own = sub.clone();
            own.push(vec![first]);
            out.push(own);
            for gi in 0..sub.len() {
                let mut ext = sub.clone();
                ext[gi].push(first);
                out.push(ext);
            }
        }
        out
    }
    let vars: Vec<usize> = (0..m).collect();
    if m == 1 {
        return build(&vars, true, 1);
    }
    let mut tables = build(&vars, true, m);
    tables.extend(build(&vars, false, m));
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tt(vars: usize, f: impl Fn(u32) -> bool) -> TruthTable {
        TruthTable::from_fn(vars, f)
    }

    #[test]
    fn complete_library_accepts_everything_in_arity() {
        let lib = Library::complete(3);
        assert!(lib.contains(&tt(3, |b| b.count_ones() % 2 == 1))); // XOR3
        assert!(lib.contains(&tt(3, |b| b.count_ones() >= 2))); // MAJ3
        assert!(!lib.contains(&tt(4, |b| b.count_ones() % 2 == 1))); // 4 vars
    }

    #[test]
    fn complete_library_rejects_oversupport_only() {
        let lib = Library::complete(2);
        // A 4-var table whose true support is 2 is accepted.
        let f = tt(4, |b| (b & 1 == 1) && (b & 4 == 4));
        assert!(lib.contains(&f));
    }

    #[test]
    fn partial_library_has_read_once_cells() {
        let lib = Library::partial(4);
        assert!(lib.contains(&tt(4, |b| b == 0b1111))); // AND4
        assert!(lib.contains(&tt(4, |b| b != 0))); // OR4
                                                   // ab + cd (level-0 kernel with 4 literals)
        assert!(lib.contains(&tt(4, |b| (b & 3) == 3 || (b & 12) == 12)));
        // (a+b)(c+d) (its dual)
        assert!(lib.contains(&tt(4, |b| (b & 3) != 0 && (b & 12) != 0)));
        // a(b + cd) (multi-level kernel composition)
        assert!(lib.contains(&tt(4, |b| (b & 1) == 1 && ((b & 2) == 2 || (b & 12) == 12))));
        // XOR2 / XOR3 as common elements.
        assert!(lib.contains(&tt(2, |b| b.count_ones() % 2 == 1)));
        assert!(lib.contains(&tt(3, |b| b.count_ones() % 2 == 1)));
    }

    #[test]
    fn partial_library_misses_non_kernel_functions() {
        let lib = Library::partial(4);
        assert!(!lib.contains(&tt(4, |b| b.count_ones() % 2 == 1))); // XOR4
        assert!(!lib.contains(&tt(4, |b| b.count_ones() >= 3))); // MAJ-ish
                                                                 // 4-input mux-like ab + !a·cd is not read-once.
        assert!(!lib.contains(&tt(4, |b| {
            if b & 1 == 1 {
                b & 2 == 2
            } else {
                b & 12 == 12
            }
        })));
    }

    #[test]
    fn partial_library_keeps_the_k3_cells() {
        // The K >= 4 libraries inherit the complete 3-input library the
        // paper's selection was inspected from.
        let lib = Library::partial(4);
        assert!(lib.contains(&tt(3, |b| b.count_ones() >= 2))); // MAJ3
        assert!(lib.contains(&tt(3, |b| b.count_ones() % 2 == 1))); // XOR3
        assert!(lib.contains(&tt(2, |b| b.count_ones() % 2 == 1))); // XOR2
    }

    #[test]
    fn partial_library_is_smaller_than_complete_space() {
        let lib = Library::partial(4);
        // Read-once + XOR classes with support exactly 4 are a small
        // fraction of the 208 four-variable NPN classes.
        let four = lib.class_count(4);
        assert!(four >= 5, "expected several 4-input cells, got {four}");
        assert!(four <= 30, "partial library unexpectedly rich: {four}");
    }

    #[test]
    fn inverter_freedom_is_respected() {
        // !(ab) must be accepted wherever ab is (inverters are free).
        let lib = Library::partial(5);
        assert!(lib.contains(&tt(2, |b| b != 0b11)));
        assert!(lib.contains(&tt(2, |b| (b & 1 == 0) && (b & 2 == 2))));
    }

    #[test]
    fn k5_partial_contains_5_input_kernels() {
        let lib = Library::partial(5);
        // ab + cde (5-literal level-0 kernel)
        assert!(lib.contains(&tt(5, |b| (b & 3) == 3 || (b & 0b11100) == 0b11100)));
        // abc+d+e's dual (a+b+c)de
        assert!(lib.contains(&tt(5, |b| (b & 0b111) != 0 && (b & 0b11000) == 0b11000)));
    }
}
