//! Property-style tests for the MIS baseline: NPN canonicalization
//! invariance, library semantics, decomposition correctness and mapper
//! equivalence on random networks.
//!
//! Random cases come from the in-repo [`SplitMix64`] generator (no
//! external property-testing dependency), so the suite runs fully offline
//! and reproduces bit-for-bit.

use chortle_mis::{binary_decompose, canonical_npn_u64, map_network, Library, MisOptions};
use chortle_netlist::{check_equivalence, Network, NodeOp, Signal, SplitMix64, TruthTable};

fn random_network(seed: u64, inputs: usize, gates: usize) -> Network {
    let mut rng = SplitMix64::new(seed);
    let mut net = Network::new();
    let mut signals: Vec<Signal> = (0..inputs)
        .map(|i| Signal::new(net.add_input(format!("i{i}"))))
        .collect();
    for g in 0..gates {
        let arity = rng.next_range(2, 5);
        let mut fanins: Vec<Signal> = Vec::new();
        let mut used = std::collections::HashSet::new();
        let mut guard = 0;
        while fanins.len() < arity && guard < 60 {
            guard += 1;
            let s = signals[rng.choose_index(&signals)];
            if used.insert(s.node()) {
                fanins.push(if rng.next_bool(1, 3) { !s } else { s });
            }
        }
        if fanins.len() < 2 {
            continue;
        }
        let op = if g % 2 == 0 { NodeOp::And } else { NodeOp::Or };
        signals.push(Signal::new(net.add_gate(op, fanins)));
    }
    for o in 0..rng.next_range(1, 4) {
        let s = signals[rng.choose_index(&signals)];
        net.add_output(format!("o{o}"), if rng.next_bool(1, 4) { !s } else { s });
    }
    net
}

fn table_mask(vars: usize) -> u64 {
    if vars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << vars)) - 1
    }
}

/// Applies a random NPN transformation to a packed table.
fn random_npn_transform(table: u64, vars: usize, seed: u64) -> u64 {
    let mut rng = SplitMix64::new(seed);
    let t = TruthTable::from_words(vars, &[table]);
    // Random permutation.
    let mut perm: Vec<usize> = (0..vars).collect();
    rng.shuffle(&mut perm);
    let mut t = t.permuted(&perm);
    // Random input flips via cofactor recombination.
    for v in 0..vars {
        if rng.next_bool(1, 2) {
            let pos = t.cofactor(v, true);
            let neg = t.cofactor(v, false);
            let x = TruthTable::var(vars, v);
            t = x.and(&neg).or(&x.not().and(&pos));
        }
    }
    if rng.next_bool(1, 2) {
        t = t.not();
    }
    t.words()[0]
}

#[test]
fn canonical_form_is_npn_invariant() {
    let mut rng = SplitMix64::new(0x415_0001);
    for _ in 0..96 {
        let vars = rng.next_range(1, 6);
        let t = rng.next_u64() & table_mask(vars);
        let transformed = random_npn_transform(t, vars, rng.next_u64());
        assert_eq!(
            canonical_npn_u64(t, vars),
            canonical_npn_u64(transformed, vars),
            "NPN transform changed the canonical form (vars={vars})"
        );
    }
}

#[test]
fn canonical_form_is_idempotent() {
    let mut rng = SplitMix64::new(0x415_0002);
    for _ in 0..96 {
        let vars = rng.next_range(1, 6);
        let table = rng.next_u64() & table_mask(vars);
        let c = canonical_npn_u64(table, vars);
        assert_eq!(canonical_npn_u64(c, vars), c);
        assert!(c <= table, "canonical form must be minimal");
    }
}

#[test]
fn complete_library_membership_is_support_bound() {
    let mut rng = SplitMix64::new(0x415_0003);
    for _ in 0..96 {
        let vars = rng.next_range(1, 5);
        let k = rng.next_range(2, 6);
        let t = TruthTable::from_words(vars, &[rng.next_u64() & table_mask(vars)]);
        let lib = Library::complete(k);
        assert_eq!(lib.contains(&t), t.support_size() <= k);
    }
}

#[test]
fn partial_library_closed_under_npn() {
    let mut rng = SplitMix64::new(0x415_0004);
    for _ in 0..96 {
        let vars = rng.next_range(2, 5);
        let table = rng.next_u64() & table_mask(vars);
        let lib = Library::partial(5);
        let t1 = TruthTable::from_words(vars, &[table]);
        let t2 = TruthTable::from_words(vars, &[random_npn_transform(table, vars, rng.next_u64())]);
        assert_eq!(lib.contains(&t1), lib.contains(&t2));
    }
}

#[test]
fn binary_decomposition_preserves_functions() {
    let mut rng = SplitMix64::new(0x415_0005);
    for _ in 0..96 {
        let net = random_network(rng.next_u64(), 6, 12).simplified();
        let bin = binary_decompose(&net);
        bin.validate().unwrap();
        assert!(bin.nodes().all(|(_, n)| n.fanin_count() <= 2));
        chortle_netlist::check_networks(&net, &bin).unwrap();
    }
}

#[test]
fn mis_mapping_is_always_equivalent() {
    let mut rng = SplitMix64::new(0x415_0006);
    for _ in 0..96 {
        let net = random_network(rng.next_u64(), 7, 12);
        let k = rng.next_range(2, 6);
        let lib = Library::for_paper(k);
        let mapped = map_network(&net, &lib, &MisOptions::new(k)).unwrap();
        check_equivalence(&net, &mapped.circuit).unwrap();
        assert!(mapped.circuit.luts().iter().all(|l| l.utilization() <= k));
    }
}

#[test]
fn duplication_mode_is_also_equivalent() {
    let mut rng = SplitMix64::new(0x415_0007);
    for _ in 0..96 {
        let net = random_network(rng.next_u64(), 6, 10);
        let lib = Library::for_paper(4);
        let mapped =
            map_network(&net, &lib, &MisOptions::new(4).with_fanout_duplication()).unwrap();
        check_equivalence(&net, &mapped.circuit).unwrap();
    }
}

#[test]
fn complete_library_never_loses_to_partial() {
    let mut rng = SplitMix64::new(0x415_0008);
    for _ in 0..96 {
        let net = random_network(rng.next_u64(), 6, 10);
        let k = rng.next_range(4, 6);
        let complete = map_network(&net, &Library::complete(k), &MisOptions::new(k)).unwrap();
        let partial = map_network(&net, &Library::partial(k), &MisOptions::new(k)).unwrap();
        assert!(complete.report.luts <= partial.report.luts);
    }
}
