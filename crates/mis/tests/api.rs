//! Public-API surface tests for the MIS baseline crate.

use chortle_mis::{
    act1_library, count_npn_classes, map_network, Library, MisError, MisOptions, ACT1_MAX_VARS,
    MAX_CANON_VARS,
};
use chortle_netlist::{Network, NodeOp, TruthTable};

#[test]
fn options_accessors() {
    let o = MisOptions::new(4);
    assert_eq!(o.k, 4);
    assert!(!o.duplicate_fanout);
    assert_eq!(o.max_cuts, 64);
    let d = o.with_fanout_duplication();
    assert!(d.duplicate_fanout);
}

#[test]
#[should_panic(expected = "MIS mapping supports K in 2..=6")]
fn k_out_of_range_panics() {
    let _ = MisOptions::new(7);
}

#[test]
fn library_accessors() {
    let complete = Library::complete(3);
    assert_eq!(complete.k(), 3);
    assert!(complete.is_complete());
    assert_eq!(complete.class_count(3), 0); // complete stores no classes
    let partial = Library::partial(4);
    assert!(!partial.is_complete());
    assert!(partial.class_count(2) >= 3);
    assert!(partial.class_count(3) >= 10);
}

#[test]
fn for_paper_dispatch() {
    assert!(Library::for_paper(2).is_complete());
    assert!(Library::for_paper(3).is_complete());
    assert!(!Library::for_paper(4).is_complete());
    assert!(!Library::for_paper(5).is_complete());
}

#[test]
fn act1_bounds() {
    const { assert!(ACT1_MAX_VARS <= MAX_CANON_VARS) };
    let lib = act1_library();
    assert_eq!(lib.k(), ACT1_MAX_VARS);
    // Single-variable cones are always realizable (wires/inverters).
    assert!(lib.contains(&TruthTable::var(1, 0)));
}

#[test]
fn npn_class_count_helper() {
    // All 2-variable functions form 4 NPN classes.
    assert_eq!(count_npn_classes(0u64..16, 2), 4);
}

#[test]
fn report_fields_populate() {
    let mut net = Network::new();
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let g = net.add_gate(NodeOp::And, vec![a.into(), b.into(), c.into()]);
    net.add_output("z", g.into());
    let lib = Library::for_paper(3);
    let mapped = map_network(&net, &lib, &MisOptions::new(3)).expect("maps");
    assert_eq!(mapped.report.luts, 1);
    assert!(mapped.report.subject_gates >= 2); // binary decomposition
    assert!(mapped.report.cuts_enumerated >= 2);
}

#[test]
fn error_display() {
    let e = MisError::NoMatch { node: "n3".into() };
    assert!(e.to_string().contains("n3"));
    let e = MisError::from(chortle_netlist::LutError::TooManyInputs { inputs: 9, k: 4 });
    assert!(e.to_string().contains("circuit construction failed"));
    assert!(std::error::Error::source(&e).is_some());
}
