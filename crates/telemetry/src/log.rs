//! Leveled structured logging as JSON Lines.
//!
//! The logger is process-global and **off by default**: every
//! [`event`] call is a single relaxed atomic load until [`init`] raises
//! the level, so instrumented code (the daemon's admission path, the
//! scheduler's panic recovery, the cache tiers) pays nothing in the
//! offline pipeline and telemetry reports stay bit-identical whether or
//! not the logging code is compiled in. That invariant is what lets
//! logging be *always wired* without threatening the determinism rails.
//!
//! One event renders as one JSON object on one line with a fixed key
//! prefix — `seq`, `t_ns`, `level`, `target`, `msg` — followed by the
//! caller's fields in caller order. `seq` is a process-global sequence
//! number (total order even when `t_ns` ties); `t_ns` is monotonic
//! nanoseconds since the logger was first touched, never wall time.
//! The rendered line is what every sink sees, so the golden test in
//! this module pins the byte shape once for all of them.
//!
//! Sinks: stderr (default), a file (`--log-file`), or an in-memory
//! [`TestSink`] for deterministic assertions. Independently of the
//! sink, the last [`RING_CAPACITY`] rendered lines are kept in a
//! bounded ring ([`ring_snapshot`]) so a panic hook can dump recent
//! context, and an optional [`Telemetry`] handle
//! ([`set_counter_sink`]) receives the closed `log.*` counter
//! namespace (see [`crate::schema::LOG_COUNTERS`]).
//!
//! # Examples
//!
//! ```
//! use chortle_telemetry::log::{render_event, FieldValue, Level};
//!
//! let line = render_event(
//!     0,
//!     42,
//!     Level::Warn,
//!     "serve.admission",
//!     "shed",
//!     &[("cid", FieldValue::U64(3)), ("reason", FieldValue::Str("queue_full"))],
//! );
//! assert_eq!(
//!     line,
//!     r#"{"seq":0,"t_ns":42,"level":"warn","target":"serve.admission","msg":"shed","cid":3,"reason":"queue_full"}"#
//! );
//! ```

use std::collections::VecDeque;
use std::fs::File;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json;
use crate::Telemetry;

/// Environment variable consulted for the level when no `--log-level`
/// flag is given (`off`, `error`, `warn`, `info`, `debug`, `trace`).
pub const ENV_LEVEL: &str = "CHORTLE_LOG";

/// Environment variable consulted for the sink file when no
/// `--log-file` flag is given.
pub const ENV_FILE: &str = "CHORTLE_LOG_FILE";

/// Events retained in the in-process ring for crash context.
pub const RING_CAPACITY: usize = 256;

/// Severity of one log event, most severe first.
///
/// The numeric value is the gate: an event is emitted when its level is
/// `<=` the configured maximum (0 means logging is off entirely).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-losing conditions (worker panics).
    Error = 1,
    /// Degraded service (admission sheds, deadline drops).
    Warn = 2,
    /// Lifecycle landmarks (startup, shutdown drain, cache flush).
    Info = 3,
    /// Per-request decisions (cache-tier attribution, completions).
    Debug = 4,
    /// Everything else.
    Trace = 5,
}

impl Level {
    /// The lowercase name embedded in rendered events.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Parses a level name; `"off"` is `None` (logging disabled).
///
/// # Errors
///
/// Names the accepted spellings on anything unrecognised.
pub fn parse_level(name: &str) -> Result<Option<Level>, String> {
    match name {
        "off" => Ok(None),
        "error" => Ok(Some(Level::Error)),
        "warn" => Ok(Some(Level::Warn)),
        "info" => Ok(Some(Level::Info)),
        "debug" => Ok(Some(Level::Debug)),
        "trace" => Ok(Some(Level::Trace)),
        other => Err(format!(
            "unknown log level {other:?} (expected off, error, warn, info, debug, or trace)"
        )),
    }
}

/// One typed field value of a log event.
#[derive(Clone, Copy, Debug)]
pub enum FieldValue<'a> {
    /// A string (JSON-escaped on render).
    Str(&'a str),
    /// A non-negative integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (rendered like report JSON floats).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

enum Sink {
    Stderr,
    File(File),
    Test(Arc<Mutex<Vec<String>>>),
}

struct LoggerState {
    sink: Sink,
    ring: VecDeque<String>,
    ring_evicted: u64,
    counters: Option<Telemetry>,
}

impl Default for LoggerState {
    fn default() -> Self {
        LoggerState {
            sink: Sink::Stderr,
            ring: VecDeque::new(),
            ring_evicted: 0,
            counters: None,
        }
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);
static STATE: Mutex<Option<LoggerState>> = Mutex::new(None);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whether events at `level` currently pass the gate. Instrumented code
/// may use this to skip assembling expensive fields.
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Configures the global logger: `level` `None` turns logging off,
/// `file` `None` writes to stderr. Reconfiguring is allowed (tests and
/// the daemon both call this); the ring and sequence numbers persist.
///
/// # Errors
///
/// Reports a `file` that cannot be created or appended to.
pub fn init(level: Option<Level>, file: Option<&str>) -> Result<(), String> {
    let sink = match file {
        None => Sink::Stderr,
        Some(path) => Sink::File(
            File::options()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("cannot open log file {path}: {e}"))?,
        ),
    };
    let mut state = STATE.lock().expect("logger state poisoned");
    state.get_or_insert_with(LoggerState::default).sink = sink;
    drop(state);
    epoch();
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
    Ok(())
}

/// Resolves flag-or-environment logging configuration and installs it:
/// the `--log-level` / `--log-file` flag values win over [`ENV_LEVEL`]
/// / [`ENV_FILE`], which win over the defaults (off, stderr).
///
/// # Errors
///
/// Reports an unparseable level or an unopenable file.
pub fn init_from(level_flag: Option<&str>, file_flag: Option<&str>) -> Result<(), String> {
    let env_level = std::env::var(ENV_LEVEL).ok();
    let level = match level_flag.or(env_level.as_deref()) {
        Some(name) => parse_level(name)?,
        None => None,
    };
    let env_file = std::env::var(ENV_FILE).ok();
    let file = file_flag.or(env_file.as_deref());
    init(level, file)
}

/// Routes events into an in-memory buffer and raises the level to
/// `trace`; returns a handle to the captured lines. For tests.
pub fn init_test_sink() -> TestSink {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let mut state = STATE.lock().expect("logger state poisoned");
    let s = state.get_or_insert_with(LoggerState::default);
    s.sink = Sink::Test(Arc::clone(&lines));
    drop(state);
    epoch();
    MAX_LEVEL.store(Level::Trace as u8, Ordering::Relaxed);
    TestSink { lines }
}

/// Turns logging back off (the default state). The ring is kept.
pub fn disable() {
    MAX_LEVEL.store(0, Ordering::Relaxed);
}

/// Mirrors the closed `log.*` counter namespace into `telemetry` from
/// now on: `log.events`, per-severity counts, and ring evictions. The
/// daemon installs its shared handle here so `op:"stats"` reports and
/// `/metrics` exposition include logging volume.
pub fn set_counter_sink(telemetry: Telemetry) {
    let mut state = STATE.lock().expect("logger state poisoned");
    state.get_or_insert_with(LoggerState::default).counters = Some(telemetry);
}

/// The last [`RING_CAPACITY`] rendered event lines, oldest first —
/// crash context for panic hooks, independent of the active sink.
pub fn ring_snapshot() -> Vec<String> {
    let state = STATE.lock().expect("logger state poisoned");
    state
        .as_ref()
        .map(|s| s.ring.iter().cloned().collect())
        .unwrap_or_default()
}

/// Renders one event line (no trailing newline): the fixed prefix
/// `seq`, `t_ns`, `level`, `target`, `msg`, then `fields` in order.
/// Pure — the golden schema test pins this byte shape.
pub fn render_event(
    seq: u64,
    t_ns: u64,
    level: Level,
    target: &str,
    msg: &str,
    fields: &[(&str, FieldValue<'_>)],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(96);
    let _ = write!(out, "{{\"seq\":{seq},\"t_ns\":{t_ns},\"level\":");
    json::write_string(&mut out, level.as_str());
    out.push_str(",\"target\":");
    json::write_string(&mut out, target);
    out.push_str(",\"msg\":");
    json::write_string(&mut out, msg);
    for (key, value) in fields {
        out.push(',');
        json::write_string(&mut out, key);
        out.push(':');
        match value {
            FieldValue::Str(s) => json::write_string(&mut out, s),
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => json::write_f64(&mut out, *v),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
    out.push('}');
    out
}

/// Emits one structured event if `level` passes the gate. Safe from any
/// thread; ordering across threads is resolved by the `seq` stamp.
pub fn event(level: Level, target: &str, msg: &str, fields: &[(&str, FieldValue<'_>)]) {
    if !enabled(level) {
        return;
    }
    let t_ns = u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let line = render_event(seq, t_ns, level, target, msg, fields);
    let mut state = STATE.lock().expect("logger state poisoned");
    let s = state.get_or_insert_with(LoggerState::default);
    if s.ring.len() == RING_CAPACITY {
        s.ring.pop_front();
        s.ring_evicted += 1;
    }
    s.ring.push_back(line.clone());
    if let Some(t) = &s.counters {
        t.add_counter("log.events", 1);
        match level {
            Level::Error => t.add_counter("log.errors", 1),
            Level::Warn => t.add_counter("log.warnings", 1),
            _ => {}
        }
        if s.ring_evicted > 0 {
            // Idempotent re-assert would double-count; report the delta.
            let evicted = s.ring_evicted;
            s.ring_evicted = 0;
            t.add_counter("log.ring_evicted", evicted);
        }
    }
    match &mut s.sink {
        Sink::Stderr => {
            let mut err = std::io::stderr().lock();
            let _ = err.write_all(line.as_bytes());
            let _ = err.write_all(b"\n");
        }
        Sink::File(f) => {
            let _ = f.write_all(line.as_bytes());
            let _ = f.write_all(b"\n");
        }
        Sink::Test(lines) => lines.lock().expect("test sink poisoned").push(line),
    }
}

/// Captured lines of a logger routed to [`init_test_sink`].
#[derive(Clone)]
pub struct TestSink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl TestSink {
    /// The rendered event lines captured so far, in emission order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("test sink poisoned").clone()
    }
}

impl std::fmt::Debug for TestSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestSink")
            .field("lines", &self.lines().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global logger is process state; tests that touch it run
    /// under one lock so parallel test threads cannot interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn golden_jsonl_event_shape() {
        // One event per line, fixed key order: seq, t_ns, level,
        // target, msg, then caller fields in caller order. Consumers
        // parse this; the bytes are the contract.
        let line = render_event(
            7,
            1_000,
            Level::Error,
            "sched.pool",
            "worker panicked",
            &[
                ("worker", FieldValue::U64(2)),
                ("detail", FieldValue::Str("index out of bounds: \"x\"")),
                ("recovered", FieldValue::Bool(true)),
                ("skew", FieldValue::F64(0.5)),
                ("delta", FieldValue::I64(-3)),
            ],
        );
        assert_eq!(
            line,
            "{\"seq\":7,\"t_ns\":1000,\"level\":\"error\",\"target\":\"sched.pool\",\
             \"msg\":\"worker panicked\",\"worker\":2,\
             \"detail\":\"index out of bounds: \\\"x\\\"\",\"recovered\":true,\
             \"skew\":0.5,\"delta\":-3}"
        );
        assert_eq!(line.lines().count(), 1);
        crate::json::parse(&line).expect("every event line is valid JSON");
    }

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(parse_level("off").unwrap(), None);
        assert_eq!(parse_level("warn").unwrap(), Some(Level::Warn));
        assert!(parse_level("loud").is_err());
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::Debug.as_str(), "debug");
    }

    #[test]
    fn off_by_default_and_gated_by_level() {
        let _serial = serial();
        disable();
        assert!(!enabled(Level::Error));
        event(Level::Error, "t", "dropped", &[]);
        init(Some(Level::Warn), None).expect("init");
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        disable();
    }

    #[test]
    fn test_sink_captures_lines_and_ring_mirrors_them() {
        let _serial = serial();
        let sink = init_test_sink();
        let before = sink.lines().len();
        event(
            Level::Info,
            "serve.lifecycle",
            "drain",
            &[("outstanding", FieldValue::U64(4))],
        );
        let lines = sink.lines();
        assert_eq!(lines.len(), before + 1);
        let last = lines.last().expect("captured");
        assert!(last.contains("\"target\":\"serve.lifecycle\""), "{last}");
        assert!(last.contains("\"outstanding\":4"), "{last}");
        let ring = ring_snapshot();
        assert_eq!(ring.last(), Some(last));
        disable();
    }

    #[test]
    fn counter_sink_receives_closed_namespace() {
        let _serial = serial();
        let _sink = init_test_sink();
        let t = Telemetry::enabled();
        set_counter_sink(t.clone());
        event(Level::Error, "t", "boom", &[]);
        event(Level::Warn, "t", "shed", &[]);
        event(Level::Info, "t", "note", &[]);
        let report = t.snapshot();
        assert_eq!(report.counter("log.events"), Some(3));
        assert_eq!(report.counter("log.errors"), Some(1));
        assert_eq!(report.counter("log.warnings"), Some(1));
        crate::schema::validate_report(&report.to_json()).expect("log.* namespace validates");
        // Detach the shared telemetry before other tests reuse the
        // global logger.
        set_counter_sink(Telemetry::enabled());
        disable();
    }

    #[test]
    fn ring_is_bounded() {
        let _serial = serial();
        let _sink = init_test_sink();
        for i in 0..(RING_CAPACITY + 10) {
            event(
                Level::Trace,
                "ring",
                "fill",
                &[("i", FieldValue::U64(i as u64))],
            );
        }
        let ring = ring_snapshot();
        assert_eq!(ring.len(), RING_CAPACITY);
        let last = ring.last().expect("nonempty");
        assert!(
            last.contains(&format!("\"i\":{}", RING_CAPACITY + 9)),
            "{last}"
        );
        disable();
    }
}
