//! Exact log-bucketed histograms (HDR-style, powers-of-√2).
//!
//! A [`Histogram`] counts `u64` samples (nanoseconds by convention) into
//! [`BUCKETS`] buckets whose boundaries are the powers of √2: bucket `i`
//! covers `[√2ⁱ, √2ⁱ⁺¹)`, so two buckets per octave and a worst-case
//! relative error of √2 ≈ 41% on any quantile estimate. Bucketing is
//! exact integer math (no floating point), so the bucket a sample lands
//! in is a pure function of its value — identical on every platform and
//! every run. [`Histogram::merge`] adds bucket counts element-wise,
//! which makes merging **associative, commutative, and
//! partition-invariant**: splitting a sample stream across any number of
//! workers and merging the partial histograms in any order yields
//! bit-identical bucket counts.
//!
//! # Examples
//!
//! ```
//! use chortle_telemetry::hist::Histogram;
//!
//! let mut h = Histogram::new();
//! h.record(900);
//! h.record(1_100);
//! assert_eq!(h.count(), 2);
//! assert_eq!(h.total(), 2_000);
//! // Quantiles report the lower bound of the sample's bucket.
//! assert_eq!(h.quantile(0.5), 725); // ⌈√2¹⁹⌉ ≤ 900 < √2²⁰
//! ```

use std::time::Duration;

use crate::json::{self, Value};

/// Number of buckets: two per octave over the full `u64` range
/// (`2 · 64 = 128`), so every sample has a bucket and none saturate.
pub const BUCKETS: usize = 128;

/// An exact, mergeable, log-bucketed histogram of `u64` samples.
///
/// See the [module docs](self) for the bucketing scheme and merge
/// guarantees. Equality compares bucket counts, sample count, and total
/// — two histograms of the same sample multiset are always equal.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            total: 0,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("total", &self.total)
            .field("nonzero", &self.nonzero().collect::<Vec<_>>())
            .finish()
    }
}

/// The bucket a sample lands in: `i` such that `√2ⁱ ≤ value < √2ⁱ⁺¹`
/// (with 0 in bucket 0). Exact — the √2 comparison is done as an
/// integer square compare in `u128`, never floating point.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        return 0;
    }
    let floor_log2 = 63 - value.leading_zeros() as usize;
    let base = 2 * floor_log2;
    // value ≥ √2 · 2^l  ⇔  value² ≥ 2^(2l+1)
    if u128::from(value) * u128::from(value) >= 1u128 << (2 * floor_log2 + 1) {
        base + 1
    } else {
        base
    }
}

/// The smallest sample value that lands in bucket `index` — the
/// bucket's inclusive lower bound, computed exactly.
pub fn bucket_lower_bound(index: usize) -> u64 {
    assert!(index < BUCKETS, "bucket index out of range");
    let l = index / 2;
    if index.is_multiple_of(2) {
        1u64 << l
    } else {
        // Smallest v with v² ≥ 2^(2l+1): ceil(2^l · √2) via integer sqrt.
        let target = 1u128 << (2 * l + 1);
        let mut v = isqrt(target);
        if v * v < target {
            v += 1;
        }
        v as u64
    }
}

/// Integer square root (largest `r` with `r² ≤ n`).
fn isqrt(n: u128) -> u128 {
    if n < 2 {
        return n;
    }
    let mut r = 1u128 << (n.ilog2() / 2 + 1);
    loop {
        let next = (r + n / r) / 2;
        if next >= r {
            return r;
        }
        r = next;
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(value);
    }

    /// Records one duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Adds `other`'s bucket counts element-wise. Associative,
    /// commutative, and partition-invariant (see the module docs).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
    }

    /// The element-wise difference `self − earlier`, for computing the
    /// histogram of samples recorded *between* two snapshots of one
    /// growing histogram. Each bucket (and the count and total)
    /// subtracts saturating at zero, so a mismatched pair degrades to
    /// an undercount instead of wrapping. When `earlier` really is an
    /// earlier snapshot of `self`, `earlier.merge(&diff)` reproduces
    /// `self` exactly.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (i, (mine, theirs)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            out.buckets[i] = mine.saturating_sub(*theirs);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.total = self.total.saturating_sub(earlier.total);
        out
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded sample values (saturating).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact count in one bucket.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// The nonzero buckets, in ascending index order.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Nearest-rank quantile estimate: the lower bound of the bucket
    /// holding the sample of rank `⌈q·count⌉`. Zero on an empty
    /// histogram. Exact integer math, so reproducible run-to-run for
    /// the same bucket counts.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.nonzero() {
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(i);
            }
        }
        bucket_lower_bound(BUCKETS - 1)
    }

    /// Mean sample value (0 on an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.total as f64 / self.count as f64
            }
        }
    }

    /// Writes the histogram's JSON body: `{"count":…,"total_ns":…,`
    /// `"buckets":[{"index":…,"count":…},…]}` with only nonzero buckets
    /// listed, ascending. This fragment is what reports and bench JSONs
    /// embed, so the two always agree on layout.
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        self.write_json_fields(out);
        out.push('}');
    }

    /// The object body of [`write_json`](Histogram::write_json), without
    /// the surrounding braces (so callers can prepend sibling keys).
    pub(crate) fn write_json_fields(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "\"count\":{},\"total_ns\":{},\"buckets\":[",
            self.count, self.total
        );
        for (n, (i, c)) in self.nonzero().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"index\":{i},\"count\":{c}}}");
        }
        out.push(']');
    }

    /// Parses a histogram from a JSON value shaped like
    /// [`write_json`](Histogram::write_json)'s output (extra sibling
    /// keys, e.g. `name`, are ignored).
    ///
    /// # Errors
    ///
    /// Describes the first missing key, wrong kind, or out-of-range
    /// bucket index.
    pub fn from_value(value: &Value) -> Result<Histogram, String> {
        let mut h = Histogram::new();
        h.count = value
            .get("count")
            .and_then(Value::as_u64)
            .ok_or("histogram.count must be a non-negative integer")?;
        h.total = value
            .get("total_ns")
            .and_then(Value::as_u64)
            .ok_or("histogram.total_ns must be a non-negative integer")?;
        let buckets = value
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or("histogram.buckets must be an array")?;
        for b in buckets {
            let index = b
                .get("index")
                .and_then(Value::as_u64)
                .ok_or("bucket.index must be a non-negative integer")?;
            let count = b
                .get("count")
                .and_then(Value::as_u64)
                .ok_or("bucket.count must be a non-negative integer")?;
            let index = usize::try_from(index)
                .ok()
                .filter(|&i| i < BUCKETS)
                .ok_or_else(|| format!("bucket.index {index} out of range"))?;
            h.buckets[index] += count;
        }
        Ok(h)
    }

    /// Parses a histogram from JSON text (see
    /// [`from_value`](Histogram::from_value)).
    ///
    /// # Errors
    ///
    /// Parse errors or the deviations `from_value` reports.
    pub fn from_json(input: &str) -> Result<Histogram, String> {
        let value = json::parse(input).map_err(|e| format!("not valid JSON: {e}"))?;
        Histogram::from_value(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 3);
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(5), 4);
        assert_eq!(bucket_index(6), 5);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every bucket's lower bound lands in that bucket, and the value
        // just below it lands strictly lower.
        for i in 0..BUCKETS {
            let lo = bucket_lower_bound(i);
            if i >= 2 {
                assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
                assert!(bucket_index(lo - 1) < i, "below bucket {i}");
            }
        }
    }

    #[test]
    fn bucketing_matches_the_float_definition() {
        // Spot-check against the real-number definition √2ⁱ ≤ v < √2ⁱ⁺¹
        // away from boundary rounding.
        for v in [10u64, 100, 1_000, 12_345, 1 << 40] {
            let i = bucket_index(v);
            let lo = 2f64.powf(i as f64 / 2.0);
            let hi = 2f64.powf((i as f64 + 1.0) / 2.0);
            assert!(lo <= v as f64 * 1.000_001 && (v as f64) < hi * 1.000_001);
        }
    }

    #[test]
    fn merge_is_associative_and_partition_invariant() {
        let samples: Vec<u64> = (0..1_000).map(|i| (i * 7919) % 100_000).collect();
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        // Any partition of the stream merges back to the same histogram,
        // in any association order.
        for parts in [2, 3, 7] {
            let mut partials: Vec<Histogram> = vec![Histogram::new(); parts];
            for (i, &s) in samples.iter().enumerate() {
                partials[i % parts].record(s);
            }
            let mut left = Histogram::new();
            for p in &partials {
                left.merge(p);
            }
            let mut right = Histogram::new();
            for p in partials.iter().rev() {
                right.merge(p);
            }
            assert_eq!(left, whole, "{parts} partitions, left fold");
            assert_eq!(right, whole, "{parts} partitions, reverse fold");
        }
    }

    #[test]
    fn quantiles_walk_bucket_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 1, 1_000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.8), bucket_lower_bound(bucket_index(1_000)));
        assert_eq!(h.quantile(1.0), bucket_lower_bound(bucket_index(1_000_000)));
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn diff_inverts_merge_for_snapshots() {
        let mut earlier = Histogram::new();
        for v in [1u64, 900, 1_100] {
            earlier.record(v);
        }
        let mut later = earlier.clone();
        for v in [2u64, 5_000] {
            later.record(v);
        }
        let delta = later.diff(&earlier);
        assert_eq!(delta.count(), 2);
        let mut rebuilt = earlier.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, later);
        // Degenerate pair saturates instead of wrapping.
        let empty = Histogram::new().diff(&later);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.total(), 0);
    }

    #[test]
    fn json_roundtrip_preserves_buckets() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 900, 1_100, u64::MAX] {
            h.record(v);
        }
        let mut out = String::new();
        h.write_json(&mut out);
        let back = Histogram::from_json(&out).expect("parses");
        assert_eq!(back, h);
        assert!(Histogram::from_json("{}").is_err());
    }
}
