//! A minimal JSON reader/writer — just enough to emit and validate
//! telemetry reports offline, with no external crates.
//!
//! The parser accepts the full JSON grammar (RFC 8259): objects, arrays,
//! strings with escapes, numbers (including exponents), booleans and
//! null. Object keys keep their source order, which the schema checker
//! relies on for stable shape listings.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, keys in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` for other kinds or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// A short name of the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Serializes the value back to compact JSON. Object keys keep
    /// their source order, so `parse` → `to_json` is deterministic.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_f64(out, *n),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_to(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write_to(out);
                }
                out.push('}');
            }
        }
    }
}

/// Error produced by [`parse`], with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending character.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns [`ParseError`] on any deviation from the JSON grammar.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Bulk-copy the whole run up to the next delimiter
                    // instead of one scalar at a time — a run only ends
                    // at an ASCII byte (quote, backslash, control), which
                    // never occurs inside a multi-byte UTF-8 sequence, so
                    // the chunk is valid UTF-8 on its own. Per-character
                    // copying re-validated the entire remaining buffer
                    // each step, turning large embedded strings (inline
                    // BLIF in serve requests) quadratic.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk =
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("input was a str");
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` to `out` as a JSON number (non-finite values
/// are clamped to `0`, which JSON cannot represent).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        use std::fmt::Write as _;
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_json_round_trips() {
        let src = r#"{"z":[1,2.5,null,true],"a":"x\n\"q\"","b":{"nested":false}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_json(), src, "compact re-serialization is stable");
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#" {"a": [1, {"b": null}], "c": "x\n\u0041"} "#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x\nA"));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b"), Some(&Value::Null));
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        let keys: Vec<_> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"\\x\"",
            "\"\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = parse("[1, oops]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn string_writer_escapes() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\n\u{1}");
        assert_eq!(out, r#""a\"b\\c\n\u0001""#);
        assert_eq!(parse(&out).unwrap().as_str(), Some("a\"b\\c\n\u{1}"));
    }

    #[test]
    fn f64_writer_is_parseable() {
        for v in [0.0, 1.5, 0.000001, 12345.678, f64::NAN] {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert!(parse(&out).is_ok(), "{out} must parse");
        }
    }
}
