//! Std-only observability for the Chortle mapping pipeline.
//!
//! The pipeline (`logic-opt → forest → wavefront → subset-DP`) reports
//! into a single [`Telemetry`] handle:
//!
//! * **spans** — wall-time of named pipeline stages ([`Telemetry::span`]),
//! * **counters** — monotonically accumulated event counts
//!   ([`Telemetry::add_counter`]); producers define counts so that the
//!   totals are *scheduling-independent* (identical for any worker
//!   count),
//! * **wavefront events** — per-wavefront worker occupancy of the
//!   parallel forest mapper ([`Telemetry::record_wavefront`]).
//!
//! A handle is either **enabled** (shared, thread-safe recorder behind an
//! `Arc`) or **disabled** (the default). Disabled handles are a single
//! `Option` check per call and never touch a clock or a lock, so
//! instrumented code pays nothing when nobody is listening.
//!
//! [`Telemetry::snapshot`] freezes everything recorded so far into a
//! [`Report`], which renders as machine-readable JSON
//! ([`Report::to_json`], validated by [`schema::validate_report`]) or a
//! human summary ([`Report::to_text`]).
//!
//! Since schema v1.3 a handle also carries:
//!
//! * **histograms** — exact log-bucketed duration distributions
//!   ([`Telemetry::record_value`], [`Telemetry::merge_histogram`]; see
//!   [`hist`]) that merge associatively across workers,
//! * **structured traces** — typed begin/end/instant events with a
//!   deterministic merge order ([`Telemetry::traced`],
//!   [`Telemetry::trace_snapshot`]; see [`trace`]), exportable as
//!   Chrome trace-event JSON. A handle only pays for tracing when
//!   created with [`Telemetry::traced`].
//!
//! Schema v1.7 adds the live observability plane: a process-global
//! structured logger ([`log`]) whose closed `log.*` counter namespace
//! can mirror into a handle, and Prometheus text exposition of any
//! report ([`prom`]).
//!
//! # Examples
//!
//! ```
//! use chortle_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::enabled();
//! {
//!     let _guard = telemetry.span("demo.stage");
//!     telemetry.add_counter("demo.events", 3);
//! }
//! let report = telemetry.snapshot();
//! assert_eq!(report.counter("demo.events"), Some(3));
//! assert_eq!(report.stages[0].name, "demo.stage");
//! chortle_telemetry::schema::validate_report(&report.to_json()).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hist;
pub mod json;
pub mod log;
pub mod prom;
pub mod schema;
pub mod trace;

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub use hist::Histogram;
pub use trace::{
    validate_chrome_trace, IdentityEvent, Trace, TraceBuffer, TraceEvent, TraceKind, TraceScope,
};

/// Identifier of the report layout, embedded in every JSON report and
/// checked by [`schema::validate_report`].
pub const SCHEMA: &str = "chortle-telemetry/v1.7";

/// Default capacity (in events) of a traced handle's event store.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

#[derive(Default)]
struct StageAgg {
    name: &'static str,
    calls: u64,
    seconds: f64,
}

#[derive(Default)]
struct Inner {
    /// Stage aggregates in first-seen order (pipeline order reads best).
    stages: Mutex<Vec<StageAgg>>,
    /// Counters, name-sorted for deterministic reports.
    counters: Mutex<BTreeMap<&'static str, u64>>,
    /// Histograms, name-sorted for deterministic reports.
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    /// Wavefront events in recording order.
    wavefronts: Mutex<Vec<WavefrontStat>>,
    /// Trace recorder; present only on handles built with
    /// [`Telemetry::traced`].
    trace: Option<TraceShared>,
}

/// The trace side of an [`Inner`]: a capacity-bounded event store plus
/// the epoch all timestamps are measured from.
struct TraceShared {
    epoch: Instant,
    capacity: usize,
    /// Allocator for `Stage`-scope span indices (driver-side spans are
    /// created in a deterministic program order, so this sequence is
    /// schedule-independent).
    stage_seq: AtomicU64,
    state: Mutex<TraceState>,
}

#[derive(Default)]
struct TraceState {
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl TraceShared {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push(&self, event: TraceEvent) {
        let mut state = self.state.lock().expect("telemetry lock");
        if state.events.len() < self.capacity {
            state.events.push(event);
        } else {
            state.dropped += 1;
        }
    }
}

/// A cloneable handle the pipeline reports into.
///
/// Clones share one recorder; a disabled handle (the [`Default`]) makes
/// every recording call a no-op. All methods take `&self` and are safe to
/// call from concurrent mapper workers.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A recording handle.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A no-op handle (what [`Default`] returns): recording calls do
    /// nothing and [`snapshot`](Telemetry::snapshot) is empty.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A recording handle that additionally captures structured trace
    /// events (capacity [`DEFAULT_TRACE_CAPACITY`]).
    pub fn traced() -> Self {
        Telemetry::traced_with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A recording, tracing handle holding at most `capacity` events;
    /// further events are counted as dropped, never buffered.
    pub fn traced_with_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                trace: Some(TraceShared {
                    epoch: Instant::now(),
                    capacity,
                    stage_seq: AtomicU64::new(0),
                    state: Mutex::new(TraceState::default()),
                }),
                ..Inner::default()
            })),
        }
    }

    /// Whether this handle records anything. Instrumented code may use
    /// this to skip preparing data that only feeds telemetry.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether this handle captures trace events.
    pub fn is_tracing(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.trace.is_some())
    }

    /// Starts timing the named stage; the elapsed wall time is recorded
    /// when the returned guard drops. Repeated spans of the same name
    /// accumulate (`calls` counts them). Disabled handles never read the
    /// clock. On a tracing handle the span also emits `Stage`-scope
    /// begin/end trace events.
    #[must_use = "the span records on drop; binding it to _ drops immediately"]
    pub fn span(&self, name: &'static str) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                rec: None,
                trace_index: None,
            };
        };
        let trace_index = inner.trace.as_ref().map(|tr| {
            let index = tr.stage_seq.fetch_add(1, Ordering::Relaxed);
            tr.push(TraceEvent {
                scope: TraceScope::Stage,
                index,
                step: trace::STEP_BEGIN,
                name,
                kind: TraceKind::Begin,
                worker: 0,
                arg: 0,
                t_ns: tr.now_ns(),
            });
            index
        });
        Span {
            rec: Some((Arc::clone(inner), name, Instant::now())),
            trace_index,
        }
    }

    /// Records one completed call of the named stage directly (for
    /// durations measured by the caller).
    pub fn record_stage(&self, name: &'static str, seconds: f64) {
        if let Some(inner) = &self.inner {
            inner.add_stage(name, seconds);
        }
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn add_counter(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut counters = inner.counters.lock().expect("telemetry lock");
            *counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Records one sample into the named histogram (created empty on
    /// first use). Values are nanoseconds by convention.
    pub fn record_value(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            let mut hists = inner.histograms.lock().expect("telemetry lock");
            hists.entry(name).or_default().record(value);
        }
    }

    /// Records one duration into the named histogram, as nanoseconds.
    pub fn record_duration(&self, name: &'static str, d: Duration) {
        self.record_value(name, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merges a worker-local histogram into the named histogram — one
    /// lock acquisition for any number of samples. Merging is
    /// associative and partition-invariant (see [`hist`]).
    pub fn merge_histogram(&self, name: &'static str, h: &Histogram) {
        if let Some(inner) = &self.inner {
            let mut hists = inner.histograms.lock().expect("telemetry lock");
            hists.entry(name).or_default().merge(h);
        }
    }

    /// Records one wavefront of the parallel forest mapper.
    pub fn record_wavefront(&self, stat: WavefrontStat) {
        if let Some(inner) = &self.inner {
            inner.wavefronts.lock().expect("telemetry lock").push(stat);
        }
    }

    /// A per-worker trace buffer bound to this handle's epoch; inert
    /// (records nothing) unless the handle is tracing.
    pub fn trace_buffer(&self, worker: u32) -> TraceBuffer {
        TraceBuffer {
            worker,
            epoch: self
                .inner
                .as_ref()
                .and_then(|i| i.trace.as_ref())
                .map(|tr| tr.epoch),
            events: Vec::new(),
        }
    }

    /// Moves a buffer's events into the handle's bounded event store
    /// (one lock acquisition); the buffer is left empty and reusable.
    pub fn trace_flush(&self, buf: &mut TraceBuffer) {
        let Some(tr) = self.inner.as_ref().and_then(|i| i.trace.as_ref()) else {
            buf.events.clear();
            return;
        };
        let mut state = tr.state.lock().expect("telemetry lock");
        for event in buf.events.drain(..) {
            if state.events.len() < tr.capacity {
                state.events.push(event);
            } else {
                state.dropped += 1;
            }
        }
    }

    /// Records one already-built trace event directly (drivers use this
    /// for post-hoc instants; hot paths should batch via
    /// [`trace_buffer`](Telemetry::trace_buffer)).
    pub fn trace_event(&self, event: TraceEvent) {
        if let Some(tr) = self.inner.as_ref().and_then(|i| i.trace.as_ref()) {
            tr.push(event);
        }
    }

    /// Monotonic nanoseconds since the handle's trace epoch (0 when not
    /// tracing).
    pub fn trace_now_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| i.trace.as_ref())
            .map_or(0, TraceShared::now_ns)
    }

    /// Freezes the recorded trace events into a [`Trace`], merged into
    /// the deterministic key order (see [`trace`]). Empty when the
    /// handle is not tracing.
    pub fn trace_snapshot(&self) -> Trace {
        let Some(tr) = self.inner.as_ref().and_then(|i| i.trace.as_ref()) else {
            return Trace::default();
        };
        let state = tr.state.lock().expect("telemetry lock");
        let mut events = state.events.clone();
        let dropped = state.dropped;
        drop(state);
        events.sort_by_key(TraceEvent::key);
        Trace { events, dropped }
    }

    /// Freezes everything recorded so far into a [`Report`]. The handle
    /// keeps recording afterwards; snapshots are cheap and repeatable.
    pub fn snapshot(&self) -> Report {
        let Some(inner) = &self.inner else {
            return Report::default();
        };
        let stages = inner
            .stages
            .lock()
            .expect("telemetry lock")
            .iter()
            .map(|s| StageStat {
                name: s.name.to_owned(),
                calls: s.calls,
                seconds: s.seconds,
            })
            .collect();
        let mut counters: BTreeMap<&'static str, u64> = inner
            .counters
            .lock()
            .expect("telemetry lock")
            .iter()
            .map(|(&name, &value)| (name, value))
            .collect();
        if let Some(tr) = &inner.trace {
            // Observation echoes, not workload counters: how much trace
            // data this handle captured (schedule-dependent — scheduler
            // events vary with the worker count).
            let state = tr.state.lock().expect("telemetry lock");
            counters.insert("trace.events", state.events.len() as u64);
            counters.insert("trace.dropped", state.dropped);
        }
        let counters = counters
            .into_iter()
            .map(|(name, value)| CounterStat {
                name: name.to_owned(),
                value,
            })
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("telemetry lock")
            .iter()
            .map(|(&name, hist)| HistogramStat {
                name: name.to_owned(),
                hist: hist.clone(),
            })
            .collect();
        let wavefronts = inner.wavefronts.lock().expect("telemetry lock").clone();
        Report {
            enabled: true,
            stages,
            counters,
            histograms,
            wavefronts,
        }
    }
}

impl Inner {
    fn add_stage(&self, name: &'static str, seconds: f64) {
        let mut stages = self.stages.lock().expect("telemetry lock");
        if let Some(s) = stages.iter_mut().find(|s| s.name == name) {
            s.calls += 1;
            s.seconds += seconds;
        } else {
            stages.push(StageAgg {
                name,
                calls: 1,
                seconds,
            });
        }
    }
}

/// Guard returned by [`Telemetry::span`]; records the elapsed stage time
/// (and, on tracing handles, the closing trace event) when dropped.
#[derive(Debug)]
pub struct Span {
    rec: Option<(Arc<Inner>, &'static str, Instant)>,
    /// The `Stage`-scope trace index this span opened, if tracing.
    trace_index: Option<u64>,
}

impl fmt::Debug for Inner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inner").finish_non_exhaustive()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, name, start)) = self.rec.take() {
            inner.add_stage(name, start.elapsed().as_secs_f64());
            if let (Some(index), Some(tr)) = (self.trace_index, &inner.trace) {
                tr.push(TraceEvent {
                    scope: TraceScope::Stage,
                    index,
                    step: trace::STEP_END,
                    name,
                    kind: TraceKind::End,
                    worker: 0,
                    arg: 0,
                    t_ns: tr.now_ns(),
                });
            }
        }
    }
}

/// Wall time of one named pipeline stage.
#[derive(Clone, Debug, PartialEq)]
pub struct StageStat {
    /// Stage name (e.g. `flow.optimize`, `map.dp`).
    pub name: String,
    /// Completed spans recorded under this name.
    pub calls: u64,
    /// Total wall seconds across all calls.
    pub seconds: f64,
}

/// Final value of one counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterStat {
    /// Counter name (e.g. `dp.divisions`).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Final state of one named histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramStat {
    /// Histogram name (e.g. `map.tree_ns`).
    pub name: String,
    /// The bucket counts (see [`hist::Histogram`]).
    pub hist: Histogram,
}

/// Worker occupancy of one wavefront of the parallel forest mapper.
///
/// `claimed[w]` and `busy_s[w]` describe worker `w`: how many trees it
/// pulled off the shared cursor and how long its mapping loop ran. These
/// depend on OS scheduling and are *not* required to be identical across
/// runs or worker counts — unlike [`Report::counters`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WavefrontStat {
    /// Wavefront index (0 = trees fed only by primary inputs).
    pub index: usize,
    /// Trees in this wavefront.
    pub trees: usize,
    /// Workers that mapped it.
    pub workers: usize,
    /// Wall time of the whole wavefront, in seconds.
    pub seconds: f64,
    /// Trees claimed per worker (`len() == workers`).
    pub claimed: Vec<u64>,
    /// Busy seconds per worker (`len() == workers`).
    pub busy_s: Vec<f64>,
}

impl WavefrontStat {
    /// Fraction of the wavefront's worker-seconds actually spent mapping:
    /// `sum(busy_s) / (workers · seconds)`, clamped to `0..=1`. Zero when
    /// the wavefront was too fast to measure.
    pub fn occupancy(&self) -> f64 {
        let capacity = self.seconds * self.workers as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            (self.busy_s.iter().sum::<f64>() / capacity).clamp(0.0, 1.0)
        }
    }
}

/// An immutable snapshot of a [`Telemetry`] handle.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Whether the handle was recording (a disabled handle snapshots to
    /// an all-empty report with `enabled == false`).
    pub enabled: bool,
    /// Stage wall times, in first-recorded order.
    pub stages: Vec<StageStat>,
    /// Counters, sorted by name. Producers guarantee these are
    /// scheduling-independent: the same workload yields bit-identical
    /// values for any `jobs` setting (`cache.shards` and `trace.*` are
    /// the documented configuration/observation-echo exceptions).
    pub counters: Vec<CounterStat>,
    /// Histograms, sorted by name. Bucket *boundaries* are exact, so
    /// histograms of deterministic quantities (e.g. per-tree DP work)
    /// are bit-identical across worker counts; wall-time histograms
    /// vary with the run but always merge consistently.
    pub histograms: Vec<HistogramStat>,
    /// Wavefront occupancy events, in wavefront order per mapping call.
    pub wavefronts: Vec<WavefrontStat>,
}

impl Report {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.hist)
    }

    /// Looks up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageStat> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Renders the report as a self-describing JSON object (layout
    /// [`SCHEMA`]; see [`schema::validate_report`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":");
        json::write_string(&mut out, SCHEMA);
        out.push_str(",\"enabled\":");
        out.push_str(if self.enabled { "true" } else { "false" });
        out.push_str(",\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_string(&mut out, &s.name);
            out.push_str(",\"calls\":");
            out.push_str(&s.calls.to_string());
            out.push_str(",\"seconds\":");
            json::write_f64(&mut out, s.seconds);
            out.push('}');
        }
        out.push_str("],\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_string(&mut out, &c.name);
            out.push_str(",\"value\":");
            out.push_str(&c.value.to_string());
            out.push('}');
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_string(&mut out, &h.name);
            out.push(',');
            h.hist.write_json_fields(&mut out);
            out.push('}');
        }
        out.push_str("],\"wavefronts\":[");
        for (i, w) in self.wavefronts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "{{\"index\":{},\"trees\":{},\"workers\":{},\"seconds\":",
                    w.index, w.trees, w.workers
                ),
            );
            json::write_f64(&mut out, w.seconds);
            out.push_str(",\"occupancy\":");
            json::write_f64(&mut out, w.occupancy());
            out.push_str(",\"claimed\":[");
            for (j, c) in w.claimed.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str("],\"busy_s\":[");
            for (j, b) in w.busy_s.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::write_f64(&mut out, *b);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Renders a human-readable summary (stages, counters, occupancy).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.enabled {
            let _ = writeln!(out, "telemetry: disabled (no data recorded)");
            return out;
        }
        let _ = writeln!(out, "stages:");
        let width = self
            .stages
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(0)
            .max(5);
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {:<width$}  {:>10.6}s  x{}",
                s.name, s.seconds, s.calls
            );
        }
        let _ = writeln!(out, "counters:");
        let cwidth = self
            .counters
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(0)
            .max(5);
        for c in &self.counters {
            let _ = writeln!(out, "  {:<cwidth$}  {:>12}", c.name, c.value);
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            let hwidth = self
                .histograms
                .iter()
                .map(|h| h.name.len())
                .max()
                .unwrap_or(0)
                .max(5);
            for h in &self.histograms {
                let ms = 1e-6;
                let _ = writeln!(
                    out,
                    "  {:<hwidth$}  n={:<8} mean={:>10.4}ms  p50={:>10.4}ms  p95={:>10.4}ms  p99={:>10.4}ms",
                    h.name,
                    h.hist.count(),
                    h.hist.mean() * ms,
                    h.hist.quantile(0.5) as f64 * ms,
                    h.hist.quantile(0.95) as f64 * ms,
                    h.hist.quantile(0.99) as f64 * ms,
                );
            }
        }
        if !self.wavefronts.is_empty() {
            let _ = writeln!(out, "wavefronts:");
            for w in &self.wavefronts {
                let _ = writeln!(
                    out,
                    "  wave {:>3}: {:>5} trees, {} worker(s), {:>9.6}s, occupancy {:>5.1}%",
                    w.index,
                    w.trees,
                    w.workers,
                    w.seconds,
                    w.occupancy() * 100.0
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.add_counter("x", 5);
        t.record_stage("s", 1.0);
        t.record_wavefront(WavefrontStat::default());
        drop(t.span("s"));
        let report = t.snapshot();
        assert_eq!(report, Report::default());
        assert!(!report.enabled);
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let t = Telemetry::enabled();
        t.add_counter("b", 2);
        t.add_counter("a", 1);
        t.add_counter("b", 3);
        let report = t.snapshot();
        assert_eq!(report.counter("a"), Some(1));
        assert_eq!(report.counter("b"), Some(5));
        assert_eq!(report.counters[0].name, "a");
        assert_eq!(report.counters[1].name, "b");
    }

    #[test]
    fn spans_aggregate_by_name_in_first_seen_order() {
        let t = Telemetry::enabled();
        t.record_stage("late", 0.25);
        t.record_stage("early", 0.5);
        t.record_stage("late", 0.75);
        let report = t.snapshot();
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].name, "late");
        assert_eq!(report.stages[0].calls, 2);
        assert!((report.stages[0].seconds - 1.0).abs() < 1e-12);
        assert_eq!(report.stages[1].name, "early");
    }

    #[test]
    fn span_guard_records_on_drop() {
        let t = Telemetry::enabled();
        {
            let _guard = t.span("guarded");
        }
        let report = t.snapshot();
        let s = report.stage("guarded").expect("recorded");
        assert_eq!(s.calls, 1);
        assert!(s.seconds >= 0.0);
    }

    #[test]
    fn clones_share_the_recorder() {
        let t = Telemetry::enabled();
        let clone = t.clone();
        clone.add_counter("shared", 7);
        assert_eq!(t.snapshot().counter("shared"), Some(7));
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let t = Telemetry::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        t.add_counter("hits", 1);
                        t.record_stage("work", 0.001);
                    }
                });
            }
        });
        let report = t.snapshot();
        assert_eq!(report.counter("hits"), Some(400));
        assert_eq!(report.stage("work").expect("stage").calls, 400);
    }

    #[test]
    fn occupancy_math() {
        let w = WavefrontStat {
            index: 0,
            trees: 4,
            workers: 2,
            seconds: 1.0,
            claimed: vec![2, 2],
            busy_s: vec![0.5, 0.5],
        };
        assert!((w.occupancy() - 0.5).abs() < 1e-12);
        assert_eq!(WavefrontStat::default().occupancy(), 0.0);
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let t = Telemetry::enabled();
        t.add_counter("dp.divisions", 42);
        t.record_stage("map.dp", 0.125);
        t.record_wavefront(WavefrontStat {
            index: 0,
            trees: 3,
            workers: 2,
            seconds: 0.5,
            claimed: vec![2, 1],
            busy_s: vec![0.25, 0.125],
        });
        let json = t.snapshot().to_json();
        let value = json::parse(&json).expect("valid JSON");
        assert_eq!(
            value.get("schema").and_then(json::Value::as_str),
            Some(SCHEMA)
        );
        schema::validate_report(&json).expect("schema-valid");
    }

    #[test]
    fn text_report_mentions_everything() {
        let t = Telemetry::enabled();
        t.add_counter("dp.divisions", 42);
        t.record_stage("map.dp", 0.125);
        t.record_wavefront(WavefrontStat {
            index: 1,
            trees: 3,
            workers: 2,
            seconds: 0.5,
            claimed: vec![2, 1],
            busy_s: vec![0.25, 0.125],
        });
        let text = t.snapshot().to_text();
        assert!(text.contains("map.dp"));
        assert!(text.contains("dp.divisions"));
        assert!(text.contains("wave   1"));
        assert!(Telemetry::disabled()
            .snapshot()
            .to_text()
            .contains("disabled"));
    }
}
