//! Prometheus text exposition: rendering and validation.
//!
//! [`render_exposition`] turns a [`Report`] (plus caller-supplied
//! gauges) into the Prometheus text format, version 0.0.4: every
//! counter becomes a `counter` family, every histogram a `summary`
//! family with `quantile` labels, and each family carries a `# HELP` /
//! `# TYPE` pair. Metric names are derived mechanically from telemetry
//! names by [`metric_name`] (`serve.run_ns` → `chortle_serve_run_ns`),
//! so the closed counter namespaces of [`crate::schema`] map onto a
//! closed, valid metric set — a property test pins that.
//!
//! [`validate_exposition`] is the consumer-side check `report-check
//! --prom` runs against a live `/metrics` scrape: metric and label
//! name charsets, HELP/TYPE pairing and placement, label-value and
//! docstring escaping, and parseable sample values. It accepts any
//! conformant exposition, not just ours.
//!
//! # Examples
//!
//! ```
//! use chortle_telemetry::{prom, Telemetry};
//!
//! let t = Telemetry::enabled();
//! t.add_counter("serve.completed", 6);
//! let text = prom::render_exposition(&t.snapshot(), &[]);
//! assert!(text.contains("chortle_serve_completed 6"));
//! prom::validate_exposition(&text).unwrap();
//! ```

use std::collections::BTreeMap;

use crate::json;
use crate::Report;

/// Prefix of every metric this crate renders.
pub const METRIC_PREFIX: &str = "chortle_";

/// One gauge sample for [`render_exposition`]: `(name, help, value)`
/// with `name` already a raw telemetry-style name (dots allowed).
pub type Gauge<'a> = (&'a str, &'a str, f64);

/// Derives the Prometheus metric name for a telemetry counter or
/// histogram name: [`METRIC_PREFIX`] plus the name with every
/// character outside `[a-zA-Z0-9_:]` replaced by `_`.
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(METRIC_PREFIX.len() + raw.len());
    out.push_str(METRIC_PREFIX);
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn escape_help(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

fn push_family(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    escape_help(out, help);
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Renders `report` (counters and histograms) and `gauges` as a
/// Prometheus text exposition. Counters render as `counter` families,
/// histograms as `summary` families (p50/p95/p99 `quantile` samples
/// plus `_sum`/`_count`), gauges as `gauge` families, in that order;
/// within each section, report order (name-sorted) then caller order.
pub fn render_exposition(report: &Report, gauges: &[Gauge<'_>]) -> String {
    let mut out = String::with_capacity(1024);
    for c in &report.counters {
        let name = metric_name(&c.name);
        push_family(
            &mut out,
            &name,
            &format!("Chortle counter {}.", c.name),
            "counter",
        );
        out.push_str(&name);
        out.push(' ');
        out.push_str(&c.value.to_string());
        out.push('\n');
    }
    for h in &report.histograms {
        let name = metric_name(&h.name);
        push_family(
            &mut out,
            &name,
            &format!("Chortle histogram {} (nanoseconds).", h.name),
            "summary",
        );
        for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            out.push_str(&name);
            out.push_str("{quantile=\"");
            out.push_str(label);
            out.push_str("\"} ");
            out.push_str(&h.hist.quantile(q).to_string());
            out.push('\n');
        }
        out.push_str(&name);
        out.push_str("_sum ");
        out.push_str(&h.hist.total().to_string());
        out.push('\n');
        out.push_str(&name);
        out.push_str("_count ");
        out.push_str(&h.hist.count().to_string());
        out.push('\n');
    }
    for (raw, help, value) in gauges {
        let name = metric_name(raw);
        push_family(&mut out, &name, help, "gauge");
        out.push_str(&name);
        out.push(' ');
        json::write_f64(&mut out, *value);
        out.push('\n');
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[derive(Default)]
struct Family {
    help: bool,
    kind: Option<String>,
    samples: u64,
}

/// Parses `{name="value",…}` starting after `{`; returns the rest of
/// the line after the closing brace.
fn parse_labels(rest: &str, line_no: usize) -> Result<&str, String> {
    let mut rest = rest;
    loop {
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix('}') {
            return Ok(after);
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let label = rest[..eq].trim();
        if !valid_label_name(label) {
            return Err(format!("line {line_no}: invalid label name {label:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        rest = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("line {line_no}: label value must be quoted"))?;
        // Walk the escaped value: only \\, \", \n escapes are legal.
        let mut chars = rest.char_indices();
        let end = loop {
            match chars.next() {
                None => return Err(format!("line {line_no}: unterminated label value")),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '\\' | '"' | 'n')) => {}
                    other => {
                        return Err(format!(
                            "line {line_no}: invalid escape {:?} in label value",
                            other.map(|(_, c)| c)
                        ))
                    }
                },
                Some((i, '"')) => break i,
                Some(_) => {}
            }
        };
        rest = &rest[end + 1..];
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after;
        } else if !rest.starts_with('}') {
            return Err(format!(
                "line {line_no}: expected ',' or '}}' after label value"
            ));
        }
    }
}

fn valid_sample_value(text: &str) -> bool {
    matches!(text, "NaN" | "+Inf" | "-Inf") || text.parse::<f64>().is_ok()
}

/// The family a sample belongs to: its own name, or — for summary /
/// histogram synthetic series — the name with `_sum`, `_count`, or
/// `_bucket` stripped when that base family is declared.
fn family_of<'a>(name: &'a str, families: &BTreeMap<String, Family>) -> &'a str {
    if families.contains_key(name) {
        return name;
    }
    for suffix in ["_sum", "_count", "_bucket"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if families
                .get(base)
                .is_some_and(|f| matches!(f.kind.as_deref(), Some("summary" | "histogram")))
            {
                return base;
            }
        }
    }
    name
}

/// Validates a Prometheus text exposition (version 0.0.4): name
/// charsets, HELP/TYPE pairing before any sample of the family,
/// escaping, and parseable sample values.
///
/// # Errors
///
/// Describes the first deviation, with its 1-based line number.
pub fn validate_exposition(input: &str) -> Result<(), String> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for (i, line) in input.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            let (keyword, rest) = match comment.split_once(' ') {
                Some(pair) => pair,
                None => continue, // bare comment
            };
            if keyword != "HELP" && keyword != "TYPE" {
                continue; // free-form comment
            }
            let (name, payload) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {line_no}: # {keyword} needs a name and a body"))?;
            if !valid_metric_name(name) {
                return Err(format!(
                    "line {line_no}: invalid metric name {name:?} in # {keyword}"
                ));
            }
            let family = families.entry(name.to_owned()).or_default();
            if family.samples > 0 {
                return Err(format!(
                    "line {line_no}: # {keyword} for {name} after its samples"
                ));
            }
            if keyword == "HELP" {
                if family.help {
                    return Err(format!("line {line_no}: duplicate # HELP for {name}"));
                }
                // Docstring escaping: backslash may only introduce \\ or \n.
                let mut chars = payload.chars();
                while let Some(c) = chars.next() {
                    if c == '\\' && !matches!(chars.next(), Some('\\' | 'n')) {
                        return Err(format!(
                            "line {line_no}: invalid escape in # HELP for {name}"
                        ));
                    }
                }
                family.help = true;
            } else {
                if family.kind.is_some() {
                    return Err(format!("line {line_no}: duplicate # TYPE for {name}"));
                }
                if !matches!(
                    payload,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!(
                        "line {line_no}: unknown type {payload:?} for {name}"
                    ));
                }
                family.kind = Some(payload.to_owned());
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .find(|c: char| c == '{' || c.is_ascii_whitespace())
            .unwrap_or(line.len());
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!(
                "line {line_no}: invalid metric name {name:?} in sample"
            ));
        }
        let mut rest = &line[name_end..];
        if let Some(after_brace) = rest.strip_prefix('{') {
            rest = parse_labels(after_brace, line_no)?;
        }
        let mut parts = rest.split_ascii_whitespace();
        let value = parts
            .next()
            .ok_or_else(|| format!("line {line_no}: sample {name} has no value"))?;
        if !valid_sample_value(value) {
            return Err(format!(
                "line {line_no}: sample {name} has unparseable value {value:?}"
            ));
        }
        if let Some(ts) = parts.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!(
                    "line {line_no}: sample {name} has invalid timestamp {ts:?}"
                ));
            }
        }
        if parts.next().is_some() {
            return Err(format!("line {line_no}: trailing tokens after sample"));
        }
        let base = family_of(name, &families).to_owned();
        let family = families.entry(base.clone()).or_default();
        family.samples += 1;
        if !family.help || family.kind.is_none() {
            return Err(format!(
                "line {line_no}: sample {name} before # HELP and # TYPE of {base}"
            ));
        }
    }
    for (name, family) in &families {
        if family.samples == 0 {
            return Err(format!("metric {name} declared but never sampled"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn seeded_report() -> Report {
        let t = Telemetry::enabled();
        t.add_counter("serve.completed", 6);
        t.add_counter("serve.admission.shed_queue_full", 2);
        t.record_value("serve.run_ns", 900);
        t.record_value("serve.run_ns", 1_100);
        t.snapshot()
    }

    #[test]
    fn renders_validating_exposition() {
        let text = render_exposition(
            &seeded_report(),
            &[
                ("serve.queue_depth", "Requests admitted and waiting.", 3.0),
                ("serve.window.qps", "Completed requests per second.", 1.5),
            ],
        );
        validate_exposition(&text).expect("self-rendered exposition validates");
        assert!(text.contains("# TYPE chortle_serve_completed counter"));
        assert!(text.contains("chortle_serve_completed 6"));
        assert!(text.contains("# TYPE chortle_serve_run_ns summary"));
        assert!(text.contains("chortle_serve_run_ns{quantile=\"0.5\"} "));
        assert!(text.contains("chortle_serve_run_ns_count 2"));
        assert!(text.contains("chortle_serve_window_qps 1.5"));
    }

    #[test]
    fn metric_names_are_mechanical() {
        assert_eq!(metric_name("serve.run_ns"), "chortle_serve_run_ns");
        assert_eq!(
            metric_name("serve.admission.shed_over_quota"),
            "chortle_serve_admission_shed_over_quota"
        );
        assert!(valid_metric_name(&metric_name("design.cloud-work")));
    }

    #[test]
    fn every_closed_namespace_counter_renders_a_valid_name() {
        // Property: the schema's closed namespaces map onto valid
        // Prometheus names, each rendering a validating family.
        let t = Telemetry::enabled();
        let all = crate::schema::SERVE_COUNTERS
            .iter()
            .chain(crate::schema::TRACE_COUNTERS)
            .chain(crate::schema::CACHE_COUNTERS)
            .chain(crate::schema::DESIGN_COUNTERS)
            .chain(crate::schema::BLIF_COUNTERS)
            .chain(crate::schema::LOG_COUNTERS);
        for name in all {
            assert!(
                valid_metric_name(&metric_name(name)),
                "{name} renders an invalid metric name"
            );
            t.add_counter(name, 1);
        }
        let text = render_exposition(&t.snapshot(), &[]);
        validate_exposition(&text).expect("all closed-namespace counters validate");
    }

    #[test]
    fn validator_rejects_charset_violations() {
        let bad_metric = "# HELP bad-name x\n# TYPE bad-name counter\nbad-name 1\n";
        assert!(validate_exposition(bad_metric).is_err());
        let bad_label = "# HELP m x\n# TYPE m counter\nm{bad-label=\"v\"} 1\n";
        assert!(validate_exposition(bad_label).is_err());
    }

    #[test]
    fn validator_enforces_help_type_pairing() {
        let no_type = "# HELP m x\nm 1\n";
        let err = validate_exposition(no_type).unwrap_err();
        assert!(err.contains("# TYPE"), "{err}");
        let late_help = "# TYPE m counter\n# HELP m x\nm 1\n";
        validate_exposition(late_help).expect("order within the preamble is free");
        let help_after_sample = "# HELP m x\n# TYPE m counter\nm 1\n# HELP m again\n";
        assert!(validate_exposition(help_after_sample).is_err());
        let dup_type = "# HELP m x\n# TYPE m counter\n# TYPE m counter\nm 1\n";
        assert!(validate_exposition(dup_type).is_err());
    }

    #[test]
    fn validator_checks_escapes_and_values() {
        let bad_escape = "# HELP m bad \\q escape\n# TYPE m counter\nm 1\n";
        assert!(validate_exposition(bad_escape).is_err());
        let bad_label_escape = "# HELP m x\n# TYPE m counter\nm{l=\"a\\q\"} 1\n";
        assert!(validate_exposition(bad_label_escape).is_err());
        let good_escape = "# HELP m a\\\\b\\nc\n# TYPE m counter\nm{l=\"x\\\"y\\nz\"} 1\n";
        validate_exposition(good_escape).expect("documented escapes pass");
        let bad_value = "# HELP m x\n# TYPE m counter\nm one\n";
        assert!(validate_exposition(bad_value).is_err());
        let special_values = "# HELP m x\n# TYPE m gauge\nm NaN\n";
        validate_exposition(special_values).expect("NaN is a legal sample value");
    }

    #[test]
    fn summary_series_attach_to_their_family() {
        let text = "# HELP s x\n# TYPE s summary\ns{quantile=\"0.5\"} 1\ns_sum 2\ns_count 1\n";
        validate_exposition(text).expect("summary synthetic series validate");
        // _sum of an undeclared family is its own (undeclared) family.
        let orphan = "orphan_sum 2\n";
        assert!(validate_exposition(orphan).is_err());
    }
}
