//! Structural validation of JSON telemetry reports.
//!
//! [`validate_report`] checks a report against the [`crate::SCHEMA`]
//! layout — key set, kinds, and internal consistency (per-worker arrays
//! sized to the worker count). [`shape`] renders the *shape* of any JSON
//! document (every key path with its kind, values elided), which the
//! golden-file schema test pins so the report layout cannot drift
//! silently.

use crate::json::{self, Value};

/// The documented counters of the reserved `serve.` namespace — the
/// aggregate report the `chortle-serve` daemon emits at shutdown (and on
/// `stats` requests). Closed since schema v1.2: [`validate_report`]
/// rejects any other `serve.*` name.
pub const SERVE_COUNTERS: &[&str] = &[
    "serve.connections",
    "serve.accepted",
    "serve.completed",
    "serve.rejected_queue_full",
    "serve.rejected_deadline",
    "serve.rejected_bad_request",
    "serve.rejected_shutdown",
    "serve.drained",
    "serve.flushes",
    "serve.stats_requests",
    "serve.trace_requests",
    // Schema v1.4: the event-driven serving core (protocol v2).
    "serve.hello_requests",
    "serve.batch_frames",
    "serve.batch_requests",
    "serve.coalesced_frames",
    "serve.admission.admitted",
    "serve.admission.shed_over_quota",
    "serve.admission.shed_queue_full",
    "serve.admission.hinted",
    // Schema v1.7: the live observability plane.
    "serve.metrics_requests",
];

/// The documented counters of the reserved `trace.` namespace —
/// observation echoes a tracing handle adds to its own report. Closed
/// since schema v1.3: [`validate_report`] rejects any other `trace.*`
/// name.
pub const TRACE_COUNTERS: &[&str] = &["trace.events", "trace.dropped"];

/// The documented counters of the reserved `cache.` namespace — the
/// mapper's DP-result cache statistics. Closed since schema v1.5,
/// which added the functional (`cache.fn_*`) tier: [`validate_report`]
/// rejects any other `cache.*` name, so a mistyped or undocumented
/// cache counter fails validation instead of shipping silently.
pub const CACHE_COUNTERS: &[&str] = &[
    "cache.hits",
    "cache.misses",
    "cache.shards",
    "cache.replayed_luts",
    // Schema v1.5: the NPN-canonical functional tier (CacheMode::Fn).
    "cache.fn_hits",
    "cache.fn_misses",
    "cache.fn_replayed_luts",
];

/// The documented counters of the reserved `design.` namespace — the
/// sequential-design mapping pipeline (register-bounded combinational
/// clouds). Closed since schema v1.6: [`validate_report`] rejects any
/// other `design.*` counter name (the `design.cloud_work` histogram
/// lives in the histogram section, not here).
pub const DESIGN_COUNTERS: &[&str] = &[
    "design.clouds",
    "design.latches",
    "design.passthroughs",
    "design.cloud_luts",
];

/// The documented counters of the reserved `blif.` namespace — the
/// streaming BLIF reader's input statistics. Closed since schema v1.6:
/// [`validate_report`] rejects any other `blif.*` name.
pub const BLIF_COUNTERS: &[&str] = &[
    "blif.logical_lines",
    "blif.models",
    "blif.subckts",
    "blif.latches",
    "blif.exdc_blocks",
];

/// The documented counters of the reserved `log.` namespace — volume
/// echoes the structured logger ([`crate::log`]) mirrors into a
/// telemetry handle via [`crate::log::set_counter_sink`]. Closed since
/// schema v1.7: [`validate_report`] rejects any other `log.*` name.
/// Like `trace.*`, these are observation echoes, exempt from the
/// scheduling-independence guarantee.
pub const LOG_COUNTERS: &[&str] = &[
    "log.events",
    "log.errors",
    "log.warnings",
    "log.ring_evicted",
];

/// Validates that `input` is a schema-conformant telemetry report.
///
/// # Errors
///
/// Returns a human-readable description of the first deviation: parse
/// errors, missing/unknown keys, wrong kinds, a wrong `schema` tag, or
/// worker arrays that do not match the worker count.
pub fn validate_report(input: &str) -> Result<(), String> {
    let value = json::parse(input).map_err(|e| format!("not valid JSON: {e}"))?;
    let root = expect_keys(
        &value,
        "$",
        &[
            "schema",
            "enabled",
            "stages",
            "counters",
            "histograms",
            "wavefronts",
        ],
    )?;

    let tag = root[0]
        .1
        .as_str()
        .ok_or_else(|| "$.schema must be a string".to_owned())?;
    if tag != crate::SCHEMA {
        return Err(format!("$.schema is {tag:?}, expected {:?}", crate::SCHEMA));
    }
    if !matches!(root[1].1, Value::Bool(_)) {
        return Err("$.enabled must be a boolean".to_owned());
    }

    for (i, stage) in expect_array(&value, "stages")?.iter().enumerate() {
        let path = format!("$.stages[{i}]");
        let members = expect_keys(stage, &path, &["name", "calls", "seconds"])?;
        expect_string(&members[0].1, &format!("{path}.name"))?;
        expect_u64(&members[1].1, &format!("{path}.calls"))?;
        expect_number(&members[2].1, &format!("{path}.seconds"))?;
    }

    for (i, counter) in expect_array(&value, "counters")?.iter().enumerate() {
        let path = format!("$.counters[{i}]");
        let members = expect_keys(counter, &path, &["name", "value"])?;
        let name = expect_string(&members[0].1, &format!("{path}.name"))?;
        expect_u64(&members[1].1, &format!("{path}.value"))?;
        // Schema v1.2: `serve.` is a *closed* namespace — the aggregate
        // report of the `chortle-serve` daemon may only use the
        // documented counter set, so a typo'd server counter fails
        // validation instead of shipping silently. v1.3 closes the
        // `trace.` observation-echo namespace the same way.
        if name.starts_with("serve.") && !SERVE_COUNTERS.contains(&name) {
            return Err(format!(
                "{path}.name {name:?} is not a documented serve.* counter \
                 (expected one of {SERVE_COUNTERS:?})"
            ));
        }
        if name.starts_with("trace.") && !TRACE_COUNTERS.contains(&name) {
            return Err(format!(
                "{path}.name {name:?} is not a documented trace.* counter \
                 (expected one of {TRACE_COUNTERS:?})"
            ));
        }
        // Schema v1.5 closes the mapper's `cache.` namespace too: the
        // counter set doubles as the compatibility contract between
        // the two cache tiers and every report consumer.
        if name.starts_with("cache.") && !CACHE_COUNTERS.contains(&name) {
            return Err(format!(
                "{path}.name {name:?} is not a documented cache.* counter \
                 (expected one of {CACHE_COUNTERS:?})"
            ));
        }
        // Schema v1.6 closes the sequential-design pipeline's `design.`
        // namespace and the streaming reader's `blif.` namespace: both
        // are cross-surface contracts (CLI, daemon, loadgen) and must
        // not grow undocumented names.
        if name.starts_with("design.") && !DESIGN_COUNTERS.contains(&name) {
            return Err(format!(
                "{path}.name {name:?} is not a documented design.* counter \
                 (expected one of {DESIGN_COUNTERS:?})"
            ));
        }
        if name.starts_with("blif.") && !BLIF_COUNTERS.contains(&name) {
            return Err(format!(
                "{path}.name {name:?} is not a documented blif.* counter \
                 (expected one of {BLIF_COUNTERS:?})"
            ));
        }
        // Schema v1.7 closes the structured logger's `log.` namespace:
        // logging volume rides every daemon report, so its counter set
        // is part of the cross-surface contract too.
        if name.starts_with("log.") && !LOG_COUNTERS.contains(&name) {
            return Err(format!(
                "{path}.name {name:?} is not a documented log.* counter \
                 (expected one of {LOG_COUNTERS:?})"
            ));
        }
    }

    for (i, hist) in expect_array(&value, "histograms")?.iter().enumerate() {
        let path = format!("$.histograms[{i}]");
        let members = expect_keys(hist, &path, &["name", "count", "total_ns", "buckets"])?;
        expect_string(&members[0].1, &format!("{path}.name"))?;
        let count = expect_u64(&members[1].1, &format!("{path}.count"))?;
        expect_u64(&members[2].1, &format!("{path}.total_ns"))?;
        let buckets = members[3]
            .1
            .as_array()
            .ok_or_else(|| format!("{path}.buckets must be an array"))?;
        let mut sum = 0u64;
        let mut last_index: Option<u64> = None;
        for (j, bucket) in buckets.iter().enumerate() {
            let bpath = format!("{path}.buckets[{j}]");
            let fields = expect_keys(bucket, &bpath, &["index", "count"])?;
            let index = expect_u64(&fields[0].1, &format!("{bpath}.index"))?;
            let c = expect_u64(&fields[1].1, &format!("{bpath}.count"))?;
            if index >= crate::hist::BUCKETS as u64 {
                return Err(format!("{bpath}.index is {index}, expected < 128"));
            }
            if last_index.is_some_and(|prev| index <= prev) {
                return Err(format!("{bpath}.index {index} is not strictly ascending"));
            }
            if c == 0 {
                return Err(format!("{bpath}.count is 0; zero buckets must be elided"));
            }
            last_index = Some(index);
            sum += c;
        }
        if sum != count {
            return Err(format!(
                "{path}.count is {count} but the bucket counts sum to {sum}"
            ));
        }
    }

    for (i, wave) in expect_array(&value, "wavefronts")?.iter().enumerate() {
        let path = format!("$.wavefronts[{i}]");
        let members = expect_keys(
            wave,
            &path,
            &[
                "index",
                "trees",
                "workers",
                "seconds",
                "occupancy",
                "claimed",
                "busy_s",
            ],
        )?;
        expect_u64(&members[0].1, &format!("{path}.index"))?;
        expect_u64(&members[1].1, &format!("{path}.trees"))?;
        let workers = expect_u64(&members[2].1, &format!("{path}.workers"))?;
        expect_number(&members[3].1, &format!("{path}.seconds"))?;
        let occupancy = expect_number(&members[4].1, &format!("{path}.occupancy"))?;
        if !(0.0..=1.0).contains(&occupancy) {
            return Err(format!("{path}.occupancy is {occupancy}, expected 0..=1"));
        }
        for (key, idx) in [("claimed", 5), ("busy_s", 6)] {
            let arr = members[idx]
                .1
                .as_array()
                .ok_or_else(|| format!("{path}.{key} must be an array"))?;
            if arr.len() as u64 != workers {
                return Err(format!(
                    "{path}.{key} has {} entries for {workers} workers",
                    arr.len()
                ));
            }
            for (j, v) in arr.iter().enumerate() {
                expect_number(v, &format!("{path}.{key}[{j}]"))?;
            }
        }
    }
    Ok(())
}

/// Validates the *windowed-metrics fragment* — the body the daemon's
/// v2 `op:"metrics"` response and loadgen's bench snapshots embed
/// (schema v1.7). `value` must already be parsed; pass the object
/// holding the fragment keys (`window_s` … `cumulative`).
///
/// # Errors
///
/// Returns the first deviation: wrong key set/order, wrong kinds,
/// rates outside `0..=1`, or window totals exceeding cumulative ones.
pub fn validate_metrics_fragment(value: &Value) -> Result<(), String> {
    let members = expect_keys(
        value,
        "$metrics",
        &[
            "window_s",
            "seconds",
            "qps",
            "shed_rate",
            "cache_hit_rate",
            "fn_cache_hit_rate",
            "p50_ns",
            "p95_ns",
            "p99_ns",
            "window",
            "cumulative",
        ],
    )?;
    expect_u64(&members[0].1, "$metrics.window_s")?;
    expect_u64(&members[1].1, "$metrics.seconds")?;
    let qps = expect_number(&members[2].1, "$metrics.qps")?;
    if qps < 0.0 {
        return Err(format!("$metrics.qps is {qps}, expected >= 0"));
    }
    for (idx, key) in [
        (3, "shed_rate"),
        (4, "cache_hit_rate"),
        (5, "fn_cache_hit_rate"),
    ] {
        let rate = expect_number(&members[idx].1, &format!("$metrics.{key}"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("$metrics.{key} is {rate}, expected 0..=1"));
        }
    }
    for (idx, key) in [(6, "p50_ns"), (7, "p95_ns"), (8, "p99_ns")] {
        expect_u64(&members[idx].1, &format!("$metrics.{key}"))?;
    }
    let mut totals = [[0u64; 3]; 2];
    for (slot, (idx, section)) in [(9usize, "window"), (10, "cumulative")].iter().enumerate() {
        let path = format!("$metrics.{section}");
        let fields = expect_keys(&members[*idx].1, &path, &["accepted", "completed", "shed"])?;
        for (j, (key, v)) in fields.iter().enumerate() {
            totals[slot][j] = expect_u64(v, &format!("{path}.{key}"))?;
        }
    }
    for (j, key) in ["accepted", "completed", "shed"].iter().enumerate() {
        if totals[0][j] > totals[1][j] {
            return Err(format!(
                "$metrics.window.{key} ({}) exceeds $metrics.cumulative.{key} ({})",
                totals[0][j], totals[1][j]
            ));
        }
    }
    Ok(())
}

/// Renders the shape of a JSON document: one line per key path, with the
/// value kind, array elements collapsed to `[]` (described by their first
/// element). Stable across runs as long as the layout is stable, so it
/// can be pinned in a golden file.
///
/// # Errors
///
/// Returns the parse error text if `input` is not valid JSON.
pub fn shape(input: &str) -> Result<String, String> {
    let value = json::parse(input).map_err(|e| format!("not valid JSON: {e}"))?;
    let mut out = String::new();
    describe(&value, "$", &mut out);
    Ok(out)
}

fn describe(value: &Value, path: &str, out: &mut String) {
    out.push_str(path);
    out.push(' ');
    out.push_str(value.kind());
    out.push('\n');
    match value {
        Value::Object(members) => {
            for (key, v) in members {
                describe(v, &format!("{path}.{key}"), out);
            }
        }
        Value::Array(items) => {
            if let Some(first) = items.first() {
                describe(first, &format!("{path}[]"), out);
            }
        }
        _ => {}
    }
}

/// Returns the members of `value` if it is an object with exactly `keys`
/// in exactly that order (reports are machine-written, so order is part
/// of the format).
fn expect_keys<'v>(
    value: &'v Value,
    path: &str,
    keys: &[&str],
) -> Result<&'v [(String, Value)], String> {
    let members = value
        .as_object()
        .ok_or_else(|| format!("{path} must be an object, found {}", value.kind()))?;
    let found: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
    if found != keys {
        return Err(format!("{path} has keys {found:?}, expected {keys:?}"));
    }
    Ok(members)
}

fn expect_array<'v>(report: &'v Value, key: &str) -> Result<&'v [Value], String> {
    report
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("$.{key} must be an array"))
}

fn expect_string<'v>(value: &'v Value, path: &str) -> Result<&'v str, String> {
    value
        .as_str()
        .ok_or_else(|| format!("{path} must be a string, found {}", value.kind()))
}

fn expect_u64(value: &Value, path: &str) -> Result<u64, String> {
    value.as_u64().ok_or_else(|| {
        format!(
            "{path} must be a non-negative integer, found {}",
            value.kind()
        )
    })
}

fn expect_number(value: &Value, path: &str) -> Result<f64, String> {
    value
        .as_f64()
        .ok_or_else(|| format!("{path} must be a number, found {}", value.kind()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Telemetry, WavefrontStat};

    fn sample_report() -> String {
        let t = Telemetry::enabled();
        t.record_stage("map.dp", 0.25);
        t.add_counter("dp.divisions", 10);
        t.record_value("map.tree_ns", 900);
        t.record_value("map.tree_ns", 1_100);
        t.record_wavefront(WavefrontStat {
            index: 0,
            trees: 2,
            workers: 2,
            seconds: 0.5,
            claimed: vec![1, 1],
            busy_s: vec![0.2, 0.2],
        });
        t.snapshot().to_json()
    }

    #[test]
    fn accepts_real_reports() {
        validate_report(&sample_report()).expect("valid");
        validate_report(&Telemetry::enabled().snapshot().to_json()).expect("empty but valid");
    }

    #[test]
    fn rejects_wrong_schema_tag() {
        let json = sample_report().replace("chortle-telemetry/v1.7", "bogus/v0");
        let err = validate_report(&json).unwrap_err();
        assert!(err.contains("$.schema"), "{err}");
    }

    #[test]
    fn rejects_missing_and_extra_keys() {
        let err =
            validate_report(r#"{"schema":"chortle-telemetry/v1.7","enabled":true}"#).unwrap_err();
        assert!(err.contains("expected"), "{err}");
        let json = sample_report().replace("\"counters\":", "\"extras\":");
        assert!(validate_report(&json).is_err());
    }

    #[test]
    fn validates_histogram_sections() {
        // Bucket counts must sum to the sample count …
        let json = sample_report().replace(
            "\"count\":2,\"total_ns\":2000",
            "\"count\":3,\"total_ns\":2000",
        );
        let err = validate_report(&json).unwrap_err();
        assert!(err.contains("sum"), "{err}");
        // … indices must be strictly ascending and in range …
        let t = Telemetry::enabled();
        t.record_value("h", 1);
        let json = t
            .snapshot()
            .to_json()
            .replace("{\"index\":0,\"count\":1}", "{\"index\":200,\"count\":1}");
        let err = validate_report(&json).unwrap_err();
        assert!(err.contains("expected < 128"), "{err}");
        // … and zero-count buckets must be elided.
        let json = t
            .snapshot()
            .to_json()
            .replace("{\"index\":0,\"count\":1}", "{\"index\":0,\"count\":0}");
        let err = validate_report(&json).unwrap_err();
        assert!(err.contains("elided") || err.contains("sum"), "{err}");
    }

    #[test]
    fn trace_namespace_is_closed() {
        // The counters a tracing handle emits about itself validate …
        let t = Telemetry::traced();
        drop(t.span("s"));
        validate_report(&t.snapshot().to_json()).expect("trace echo counters validate");
        // … while any other trace.* name is rejected.
        let t = Telemetry::enabled();
        t.add_counter("trace.evnets", 1);
        let err = validate_report(&t.snapshot().to_json()).unwrap_err();
        assert!(err.contains("trace.evnets"), "{err}");
    }

    #[test]
    fn rejects_mis_sized_worker_arrays() {
        let json = sample_report().replace("\"claimed\":[1,1]", "\"claimed\":[1]");
        let err = validate_report(&json).unwrap_err();
        assert!(err.contains("claimed"), "{err}");
    }

    #[test]
    fn rejects_wrong_kinds() {
        let json = sample_report().replace("\"value\":10", "\"value\":\"10\"");
        let err = validate_report(&json).unwrap_err();
        assert!(err.contains("value"), "{err}");
    }

    #[test]
    fn serve_namespace_is_closed() {
        // Every documented serve.* counter passes …
        let t = Telemetry::enabled();
        for name in SERVE_COUNTERS {
            t.add_counter(name, 1);
        }
        validate_report(&t.snapshot().to_json()).expect("documented serve counters validate");
        // … while an undocumented one (e.g. a typo) is rejected by name.
        let t = Telemetry::enabled();
        t.add_counter("serve.rejected_deadlin", 1);
        let err = validate_report(&t.snapshot().to_json()).unwrap_err();
        assert!(err.contains("serve.rejected_deadlin"), "{err}");
        // Other namespaces remain open (mapper counters come and go).
        let t = Telemetry::enabled();
        t.add_counter("dp.some_future_counter", 1);
        validate_report(&t.snapshot().to_json()).expect("non-serve namespaces stay open");
    }

    #[test]
    fn cache_namespace_is_closed() {
        // Every documented cache.* counter passes …
        let t = Telemetry::enabled();
        for name in CACHE_COUNTERS {
            t.add_counter(name, 1);
        }
        validate_report(&t.snapshot().to_json()).expect("documented cache counters validate");
        // … while an undocumented one (e.g. a typo) is rejected by name.
        let t = Telemetry::enabled();
        t.add_counter("cache.fn_hit", 1);
        let err = validate_report(&t.snapshot().to_json()).unwrap_err();
        assert!(err.contains("cache.fn_hit"), "{err}");
        // pack.* remains open alongside the closed namespaces.
        let t = Telemetry::enabled();
        t.add_counter("pack.dropped_inputs", 1);
        validate_report(&t.snapshot().to_json()).expect("pack namespace stays open");
    }

    #[test]
    fn design_namespace_is_closed() {
        // Every documented design.* counter passes, and the
        // design.cloud_work histogram rides the histogram section.
        let t = Telemetry::enabled();
        for name in DESIGN_COUNTERS {
            t.add_counter(name, 1);
        }
        t.record_value("design.cloud_work", 3);
        validate_report(&t.snapshot().to_json()).expect("documented design counters validate");
        // … while an undocumented one (e.g. a typo) is rejected by name.
        let t = Telemetry::enabled();
        t.add_counter("design.cloud", 1);
        let err = validate_report(&t.snapshot().to_json()).unwrap_err();
        assert!(err.contains("design.cloud"), "{err}");
    }

    #[test]
    fn blif_namespace_is_closed() {
        let t = Telemetry::enabled();
        for name in BLIF_COUNTERS {
            t.add_counter(name, 1);
        }
        validate_report(&t.snapshot().to_json()).expect("documented blif counters validate");
        let t = Telemetry::enabled();
        t.add_counter("blif.lines", 1);
        let err = validate_report(&t.snapshot().to_json()).unwrap_err();
        assert!(err.contains("blif.lines"), "{err}");
    }

    #[test]
    fn log_namespace_is_closed() {
        let t = Telemetry::enabled();
        for name in LOG_COUNTERS {
            t.add_counter(name, 1);
        }
        validate_report(&t.snapshot().to_json()).expect("documented log counters validate");
        let t = Telemetry::enabled();
        t.add_counter("log.evnets", 1);
        let err = validate_report(&t.snapshot().to_json()).unwrap_err();
        assert!(err.contains("log.evnets"), "{err}");
    }

    #[test]
    fn metrics_fragment_validates_shape_and_arithmetic() {
        let good = r#"{"window_s":60,"seconds":2,"qps":3.0,"shed_rate":0.25,
            "cache_hit_rate":0.5,"fn_cache_hit_rate":0.0,
            "p50_ns":725,"p95_ns":1024,"p99_ns":1024,
            "window":{"accepted":6,"completed":6,"shed":2},
            "cumulative":{"accepted":6,"completed":6,"shed":2}}"#;
        let value = json::parse(good).expect("parses");
        validate_metrics_fragment(&value).expect("valid fragment");
        // A window total larger than its cumulative counter is
        // arithmetic corruption, not a rendering choice.
        let bad = good.replace(r#""window":{"accepted":6"#, r#""window":{"accepted":9"#);
        let err = validate_metrics_fragment(&json::parse(&bad).unwrap()).unwrap_err();
        assert!(err.contains("window.accepted"), "{err}");
        let bad_rate = good.replace("\"shed_rate\":0.25", "\"shed_rate\":1.5");
        let err = validate_metrics_fragment(&json::parse(&bad_rate).unwrap()).unwrap_err();
        assert!(err.contains("shed_rate"), "{err}");
    }

    #[test]
    fn shape_is_stable_and_value_free() {
        let s = shape(&sample_report()).expect("shapes");
        assert!(s.contains("$.stages[] object"));
        assert!(s.contains("$.stages[].seconds number"));
        assert!(s.contains("$.wavefronts[].claimed array"));
        assert!(!s.contains("0.25"), "values must be elided:\n{s}");
    }
}
