//! Structured trace events with a deterministic merge order.
//!
//! Instrumented code records typed [`TraceEvent`]s — begin/end spans and
//! instants, tagged with a scope, a sequence index, a worker id, and a
//! monotonic timestamp — into per-worker [`TraceBuffer`]s that are
//! flushed wholesale into the owning [`crate::Telemetry`] handle (one
//! lock acquisition per flush, not per event). A snapshot merges every
//! buffer into a [`Trace`] sorted by the **deterministic key**
//! `(scope, index, step, worker)`, so the merged order never depends on
//! flush timing.
//!
//! # Determinism contract
//!
//! [`Trace::identity`] projects the merged events down to what the
//! mapper guarantees is a pure function of the input: it drops
//! [`TraceScope::Sched`] events (worker claims are decided by OS
//! scheduling), worker ids, and timestamps. For the same network and
//! options, that projection is **bit-identical for any `--jobs` and any
//! `--cache` mode** — the property tests in `crates/chortle` pin this.
//! Everything else (timestamps, scheduler events) is observational and
//! varies run to run.
//!
//! # Chrome trace export
//!
//! [`Trace::to_chrome_json`] renders the classic Chrome trace-event
//! JSON (`{"traceEvents":[…]}`) that `chrome://tracing` and Perfetto
//! load: begins as `"ph":"B"`, ends as `"ph":"E"`, instants as
//! `"ph":"i"`, with the worker id as `tid` and timestamps in
//! microseconds. [`validate_chrome_trace`] checks well-formedness
//! (used by `report-check --chrome-trace` in CI).

use crate::json::{self, Value};

/// Which sequence namespace a trace event's `index` counts in.
///
/// The variant order is the merge order: all driver stage events sort
/// before tree events, which sort before scheduler events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceScope {
    /// Driver-side pipeline stages (spans recorded on one thread);
    /// `index` is the span allocation order.
    Stage,
    /// Per-tree mapping events; `index` is the tree's forest index.
    Tree,
    /// Wavefront scheduler events (claim/busy windows); `index` is the
    /// wavefront. Schedule-dependent — excluded from
    /// [`Trace::identity`].
    Sched,
    /// Daemon per-request lifecycle; `index` is the admission ordinal.
    Request,
}

impl TraceScope {
    /// Chrome trace category name.
    pub fn category(self) -> &'static str {
        match self {
            TraceScope::Stage => "stage",
            TraceScope::Tree => "tree",
            TraceScope::Sched => "sched",
            TraceScope::Request => "request",
        }
    }
}

/// What kind of mark a trace event is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceKind {
    /// Opens a span; matched by an [`End`](TraceKind::End) or a
    /// [`Cancelled`](TraceKind::Cancelled) with the same scope/index.
    Begin,
    /// Closes a span normally.
    End,
    /// A point event.
    Instant,
    /// Closes a span that did not run to completion (cancellation or a
    /// mid-tree error) — renders as an end with `"cancelled":true`.
    Cancelled,
}

/// One structured trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sequence namespace of `index`.
    pub scope: TraceScope,
    /// Position in the scope's deterministic sequence.
    pub index: u64,
    /// Sub-position within one `index` (begin 0 < instants 1 < end 2),
    /// so a span's events sort in emission order under the key.
    pub step: u32,
    /// Event name, e.g. `map.tree` or `dp.solve`.
    pub name: &'static str,
    /// Begin / end / instant / cancelled.
    pub kind: TraceKind,
    /// Worker that recorded the event (0 = the driver thread).
    pub worker: u32,
    /// One event-specific payload value (tree size, LUT count, …).
    pub arg: u64,
    /// Monotonic nanoseconds since the handle's trace epoch.
    pub t_ns: u64,
}

impl TraceEvent {
    /// The deterministic merge key.
    pub fn key(&self) -> (TraceScope, u64, u32, u32) {
        (self.scope, self.index, self.step, self.worker)
    }
}

/// `step` of a span-opening event.
pub const STEP_BEGIN: u32 = 0;
/// `step` of instants emitted within a span.
pub const STEP_INSTANT: u32 = 1;
/// `step` of a span-closing event (end or cancelled).
pub const STEP_END: u32 = 2;

/// A per-worker event buffer: events are pushed lock-free (the buffer
/// is worker-local) and flushed wholesale via
/// [`crate::Telemetry::trace_flush`]. A buffer obtained from a handle
/// that is not tracing records nothing, so hot paths pay one branch.
#[derive(Debug)]
pub struct TraceBuffer {
    pub(crate) worker: u32,
    pub(crate) epoch: Option<std::time::Instant>,
    pub(crate) events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// A buffer that records nothing (for handles that are not tracing).
    pub fn disabled() -> Self {
        TraceBuffer {
            worker: 0,
            epoch: None,
            events: Vec::new(),
        }
    }

    /// Whether this buffer actually records.
    pub fn is_enabled(&self) -> bool {
        self.epoch.is_some()
    }

    fn now_ns(epoch: std::time::Instant) -> u64 {
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push(
        &mut self,
        kind: TraceKind,
        step: u32,
        scope: TraceScope,
        index: u64,
        name: &'static str,
        arg: u64,
    ) {
        if let Some(epoch) = self.epoch {
            self.events.push(TraceEvent {
                scope,
                index,
                step,
                name,
                kind,
                worker: self.worker,
                arg,
                t_ns: Self::now_ns(epoch),
            });
        }
    }

    /// Opens a span (`step` [`STEP_BEGIN`]).
    pub fn begin(&mut self, scope: TraceScope, index: u64, name: &'static str, arg: u64) {
        self.push(TraceKind::Begin, STEP_BEGIN, scope, index, name, arg);
    }

    /// Closes a span normally (`step` [`STEP_END`]).
    pub fn end(&mut self, scope: TraceScope, index: u64, name: &'static str, arg: u64) {
        self.push(TraceKind::End, STEP_END, scope, index, name, arg);
    }

    /// Marks a point event (`step` [`STEP_INSTANT`]).
    pub fn instant(&mut self, scope: TraceScope, index: u64, name: &'static str, arg: u64) {
        self.push(TraceKind::Instant, STEP_INSTANT, scope, index, name, arg);
    }

    /// Closes a span that was cut short (`step` [`STEP_END`]).
    pub fn cancelled(&mut self, scope: TraceScope, index: u64, name: &'static str, arg: u64) {
        self.push(TraceKind::Cancelled, STEP_END, scope, index, name, arg);
    }
}

/// The deterministic projection of one event (see [`Trace::identity`]):
/// no worker, no timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IdentityEvent {
    /// Sequence namespace.
    pub scope: TraceScope,
    /// Deterministic sequence index.
    pub index: u64,
    /// Sub-position within the index.
    pub step: u32,
    /// Event name.
    pub name: &'static str,
    /// Begin / end / instant / cancelled.
    pub kind: TraceKind,
    /// Event payload.
    pub arg: u64,
}

/// A merged, deterministically ordered snapshot of all recorded trace
/// events.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Every event, sorted by [`TraceEvent::key`].
    pub events: Vec<TraceEvent>,
    /// Events discarded because the handle's capacity was reached.
    pub dropped: u64,
}

impl Trace {
    /// The schedule-independent projection: every non-`Sched` event,
    /// in merge order, without worker ids or timestamps. For one
    /// mapping run this is bit-identical across `--jobs` and `--cache`
    /// settings (property-tested in `crates/chortle`).
    pub fn identity(&self) -> Vec<IdentityEvent> {
        self.events
            .iter()
            .filter(|e| e.scope != TraceScope::Sched)
            .map(|e| IdentityEvent {
                scope: e.scope,
                index: e.index,
                step: e.step,
                name: e.name,
                kind: e.kind,
                arg: e.arg,
            })
            .collect()
    }

    /// Renders Chrome trace-event JSON (loadable in `chrome://tracing`
    /// and Perfetto). Events are ordered by timestamp; at equal
    /// timestamps inner spans close before outer ones open so `B`/`E`
    /// pairs stay balanced per thread.
    pub fn to_chrome_json(&self) -> String {
        use std::fmt::Write as _;
        // Rank for timestamp ties: close inner scopes (Tree ⊂ Sched ⊂
        // Stage) before opening the next span at the same instant.
        fn tie_rank(e: &TraceEvent) -> u8 {
            match (e.kind, e.scope) {
                (TraceKind::End | TraceKind::Cancelled, TraceScope::Tree | TraceScope::Request) => {
                    0
                }
                (TraceKind::End | TraceKind::Cancelled, TraceScope::Sched) => 1,
                (TraceKind::End | TraceKind::Cancelled, TraceScope::Stage) => 2,
                (TraceKind::Begin, TraceScope::Stage) => 3,
                (TraceKind::Begin, TraceScope::Sched) => 4,
                (TraceKind::Begin, TraceScope::Tree | TraceScope::Request) => 5,
                (TraceKind::Instant, _) => 6,
            }
        }
        let mut ordered: Vec<&TraceEvent> = self.events.iter().collect();
        ordered.sort_by_key(|e| (e.t_ns, tie_rank(e)));
        let mut out = String::with_capacity(64 + 96 * ordered.len());
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in ordered.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_string(&mut out, e.name);
            let _ = write!(out, ",\"cat\":\"{}\"", e.scope.category());
            let ph = match e.kind {
                TraceKind::Begin => "B",
                TraceKind::End | TraceKind::Cancelled => "E",
                TraceKind::Instant => "i",
            };
            let _ = write!(out, ",\"ph\":\"{ph}\",\"ts\":");
            json::write_f64(&mut out, e.t_ns as f64 / 1_000.0);
            if e.kind == TraceKind::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            let _ = write!(
                out,
                ",\"pid\":1,\"tid\":{},\"args\":{{\"index\":{},\"arg\":{}",
                e.worker, e.index, e.arg
            );
            if e.kind == TraceKind::Cancelled {
                out.push_str(",\"cancelled\":true");
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// Checks that `input` is well-formed Chrome trace-event JSON: the
/// layout [`Trace::to_chrome_json`] writes, with every event carrying
/// `name`/`cat`/`ph`/`ts`/`pid`/`tid` of the right kinds and `B`/`E`
/// events balanced per `tid`.
///
/// # Errors
///
/// A human-readable description of the first deviation.
pub fn validate_chrome_trace(input: &str) -> Result<(), String> {
    let value = json::parse(input).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = value
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("$.traceEvents must be an array")?;
    let mut depth: std::collections::BTreeMap<u64, i64> = std::collections::BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let path = format!("$.traceEvents[{i}]");
        e.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}.name must be a string"))?;
        e.get("cat")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}.cat must be a string"))?;
        e.get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}.ts must be a number"))?;
        e.get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{path}.pid must be an integer"))?;
        let tid = e
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{path}.tid must be an integer"))?;
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}.ph must be a string"))?;
        match ph {
            "B" => *depth.entry(tid).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    return Err(format!("{path}: unmatched \"E\" on tid {tid}"));
                }
            }
            "i" => {}
            other => return Err(format!("{path}.ph is {other:?}, expected B, E or i")),
        }
    }
    for (tid, d) in depth {
        if d != 0 {
            return Err(format!("tid {tid} has {d} unclosed \"B\" event(s)"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn buffers_record_only_when_tracing() {
        let plain = Telemetry::enabled();
        let mut buf = plain.trace_buffer(3);
        buf.begin(TraceScope::Tree, 0, "map.tree", 1);
        assert!(!buf.is_enabled());
        plain.trace_flush(&mut buf);
        assert!(plain.trace_snapshot().events.is_empty());

        let traced = Telemetry::traced();
        assert!(traced.is_tracing());
        let mut buf = traced.trace_buffer(3);
        buf.begin(TraceScope::Tree, 0, "map.tree", 1);
        buf.end(TraceScope::Tree, 0, "map.tree", 2);
        traced.trace_flush(&mut buf);
        let trace = traced.trace_snapshot();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].kind, TraceKind::Begin);
        assert_eq!(trace.events[0].worker, 3);
        assert!(trace.events[1].t_ns >= trace.events[0].t_ns);
    }

    #[test]
    fn merge_order_is_the_key_order_not_flush_order() {
        let t = Telemetry::traced();
        let mut late = t.trace_buffer(2);
        late.begin(TraceScope::Tree, 5, "map.tree", 0);
        late.end(TraceScope::Tree, 5, "map.tree", 0);
        let mut early = t.trace_buffer(1);
        early.begin(TraceScope::Tree, 1, "map.tree", 0);
        early.end(TraceScope::Tree, 1, "map.tree", 0);
        // Flush in the "wrong" order: the snapshot must not care.
        t.trace_flush(&mut late);
        t.trace_flush(&mut early);
        let keys: Vec<_> = t
            .trace_snapshot()
            .events
            .iter()
            .map(TraceEvent::key)
            .collect();
        assert_eq!(
            keys,
            vec![
                (TraceScope::Tree, 1, STEP_BEGIN, 1),
                (TraceScope::Tree, 1, STEP_END, 1),
                (TraceScope::Tree, 5, STEP_BEGIN, 2),
                (TraceScope::Tree, 5, STEP_END, 2),
            ]
        );
    }

    #[test]
    fn identity_drops_sched_workers_and_time() {
        let t = Telemetry::traced();
        let mut buf = t.trace_buffer(7);
        buf.begin(TraceScope::Sched, 0, "sched.worker", 9);
        buf.begin(TraceScope::Tree, 0, "map.tree", 4);
        buf.cancelled(TraceScope::Tree, 0, "map.tree", 0);
        buf.end(TraceScope::Sched, 0, "sched.worker", 9);
        t.trace_flush(&mut buf);
        let identity = t.trace_snapshot().identity();
        assert_eq!(identity.len(), 2, "sched events projected away");
        assert_eq!(identity[0].kind, TraceKind::Begin);
        assert_eq!(identity[1].kind, TraceKind::Cancelled);
    }

    #[test]
    fn capacity_bounds_memory_and_counts_drops() {
        let t = Telemetry::traced_with_capacity(3);
        let mut buf = t.trace_buffer(0);
        for i in 0..5 {
            buf.instant(TraceScope::Tree, i, "dp.solve", 0);
        }
        t.trace_flush(&mut buf);
        let trace = t.trace_snapshot();
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.dropped, 2);
    }

    #[test]
    fn chrome_json_is_wellformed_and_balanced() {
        let t = Telemetry::traced();
        {
            let _outer = t.span("flow.map");
            let mut buf = t.trace_buffer(1);
            buf.begin(TraceScope::Sched, 0, "sched.worker", 0);
            buf.begin(TraceScope::Tree, 0, "map.tree", 3);
            buf.instant(TraceScope::Tree, 0, "dp.solve", 1);
            buf.end(TraceScope::Tree, 0, "map.tree", 2);
            buf.end(TraceScope::Sched, 0, "sched.worker", 1);
            t.trace_flush(&mut buf);
        }
        let chrome = t.trace_snapshot().to_chrome_json();
        validate_chrome_trace(&chrome).expect("balanced, well-formed");
        assert!(chrome.contains("\"ph\":\"B\""));
        assert!(chrome.contains("\"s\":\"t\""));

        validate_chrome_trace("{}").unwrap_err();
        validate_chrome_trace(r#"{"traceEvents":[{"name":"x"}]}"#).unwrap_err();
        let unbalanced = r#"{"traceEvents":[
            {"name":"x","cat":"c","ph":"E","ts":0,"pid":1,"tid":0}]}"#;
        let err = validate_chrome_trace(unbalanced).unwrap_err();
        assert!(err.contains("unmatched"), "{err}");
    }

    #[test]
    fn cancelled_renders_as_a_closing_event() {
        let t = Telemetry::traced();
        let mut buf = t.trace_buffer(0);
        buf.begin(TraceScope::Tree, 0, "map.tree", 0);
        buf.cancelled(TraceScope::Tree, 0, "map.tree", 0);
        t.trace_flush(&mut buf);
        let chrome = t.trace_snapshot().to_chrome_json();
        validate_chrome_trace(&chrome).expect("cancelled still balances");
        assert!(chrome.contains("\"cancelled\":true"));
    }
}
