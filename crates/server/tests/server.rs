//! Integration tests for the `chortle-serve` runtime: byte-identity
//! with the offline pipeline (v1, v2, and batched), deadlines, fair
//! admission with retry hints, the warm cache, and graceful shutdown —
//! all against a real in-process TCP server.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;

use chortle::{CacheMode, Objective};
use chortle_circuits::{alu, benchmark};
use chortle_netlist::write_blif;
use chortle_server::{
    parse_response, proto, Client, FlushReply, HelloReply, MapReply, MapRequest, Mapped,
    MetricsReply, ProtocolVersion, Response, ServeOptions, Server, ServerSummary, ShutdownReply,
    StatsReply, TraceReply,
};

/// Starts a server on an ephemeral port; returns its address and the
/// thread that will yield the final summary after shutdown.
fn start(options: ServeOptions) -> (String, thread::JoinHandle<ServerSummary>) {
    let server = Server::bind(&options).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let run = thread::spawn(move || server.run());
    (addr, run)
}

fn request(blif: &str) -> MapRequest {
    MapRequest {
        blif: blif.to_owned(),
        jobs: 1,
        ..MapRequest::default()
    }
}

/// The offline ground truth: the same parse → optimize → map → render
/// pipeline the CLI runs, at `jobs: 1` with the cache off.
fn offline(blif: &str, k: usize, objective: Objective, optimize: bool) -> String {
    let parsed = chortle_netlist::parse_blif(blif).expect("test circuit parses");
    let network = if optimize {
        chortle_logic_opt::optimize(&parsed).expect("optimizes").0
    } else {
        parsed
    };
    let options = chortle::MapOptions::builder(k)
        .objective(objective)
        .cache(CacheMode::Off)
        .build()
        .expect("valid options");
    let mapping = chortle::map_network(&network, &options).expect("maps");
    chortle_netlist::write_lut_blif(&network, &mapping.circuit, "mapped")
}

fn expect_mapped(reply: MapReply) -> Mapped {
    match reply {
        MapReply::Mapped(mapped) => mapped,
        other => panic!("expected Mapped, got {other:?}"),
    }
}

fn shut_down(addr: &str, run: thread::JoinHandle<ServerSummary>) -> ServerSummary {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    match client.shutdown("bye").expect("shutdown acked") {
        ShutdownReply::Draining => {}
        other => panic!("expected Draining, got {other:?}"),
    }
    run.join().expect("server thread exits cleanly")
}

/// Writes `frames` as one pipelined burst (a single `write` call, so the
/// server sees them together) and reads exactly `expect` response lines,
/// parsed and indexed by id.
fn burst(stream: &TcpStream, frames: &[String], expect: usize) -> BTreeMap<String, Response> {
    let mut writer = stream.try_clone().expect("clone stream");
    let mut bytes = String::new();
    for frame in frames {
        bytes.push_str(frame);
        bytes.push('\n');
    }
    writer.write_all(bytes.as_bytes()).expect("write burst");
    writer.flush().expect("flush burst");
    let mut responses = BTreeMap::new();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    for _ in 0..expect {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed before answering every frame");
        let response = parse_response(line.trim_end()).expect("well-formed response");
        let id = match &response {
            Response::MapOk { id, .. }
            | Response::BatchOk { id, .. }
            | Response::HelloOk { id, .. }
            | Response::FlushOk { id, .. }
            | Response::StatsOk { id, .. }
            | Response::TraceOk { id, .. }
            | Response::ShutdownOk { id }
            | Response::Rejected { id, .. } => id.clone(),
            other => panic!("unknown response shape {other:?}"),
        };
        let prior = responses.insert(id.clone(), (line, response));
        assert!(prior.is_none(), "id {id:?} answered more than once");
    }
    responses
        .into_iter()
        .map(|(id, (_, response))| (id, response))
        .collect()
}

#[test]
fn responses_are_byte_identical_to_the_offline_pipeline() {
    let circuits: Vec<(&str, String)> = vec![
        ("count", write_blif(&benchmark("count").unwrap(), "count")),
        ("frg1", write_blif(&benchmark("frg1").unwrap(), "frg1")),
        ("alu8", write_blif(&alu(8), "alu8")),
    ];
    let (addr, run) = start(ServeOptions::default());
    let mut client = Client::connect(&addr).expect("connect");

    for (name, blif) in &circuits {
        // The identity property: every (jobs, cache) combination — and a
        // warm-cache repeat — produces the same bytes as the offline
        // jobs=1/cache-off pipeline.
        let baseline = offline(blif, 4, Objective::Area, true);
        let mut sent = 0;
        for jobs in [1, 4] {
            for cache in [CacheMode::Off, CacheMode::Tree, CacheMode::Shared] {
                let mut req = request(blif);
                req.jobs = jobs;
                req.cache = cache;
                let id = format!("{name}-j{jobs}-{cache:?}");
                let mapped = expect_mapped(client.map(&id, &req).expect("roundtrip"));
                assert_eq!(
                    mapped.netlist, baseline,
                    "{id} diverged from the offline pipeline"
                );
                sent += 1;
            }
        }
        assert_eq!(sent, 6);

        // Warm repeat (shared cache already populated by the loop above).
        let mapped = expect_mapped(
            client
                .map(&format!("{name}-warm"), &request(blif))
                .expect("roundtrip"),
        );
        assert_eq!(mapped.netlist, baseline, "{name}: warm-cache run diverged");

        // A different option mix, to show identity is not k=4-specific.
        let variant = offline(blif, 5, Objective::Depth, false);
        let mut req = request(blif);
        req.k = 5;
        req.objective = Objective::Depth;
        req.optimize = false;
        let mapped = expect_mapped(client.map(&format!("{name}-k5"), &req).expect("roundtrip"));
        assert_eq!(
            mapped.netlist, variant,
            "{name}: k=5/depth/no-optimize diverged"
        );
        assert!(mapped.luts > 0 && mapped.depth > 0);
    }

    let summary = shut_down(&addr, run);
    assert_eq!(summary.report.counter("serve.completed"), Some(24));
    assert_eq!(summary.report.counter("serve.accepted"), Some(24));
    assert_eq!(summary.report.counter("serve.admission.admitted"), Some(24));
}

#[test]
fn mixed_v1_and_v2_sessions_share_one_connection_and_identical_bytes() {
    let blif = write_blif(&benchmark("count").unwrap(), "count");
    let baseline = offline(&blif, 4, Objective::Area, true);
    let (addr, run) = start(ServeOptions::default());

    // One connection, one pipelined write, five frames across both
    // protocol versions: the server answers each in the version it was
    // asked in, and every netlist matches the offline pipeline.
    let stream = TcpStream::connect(&addr).expect("connect");
    let frames = vec![
        proto::render_map_request(ProtocolVersion::V1, "old-map", &request(&blif)),
        proto::render_map_request(ProtocolVersion::V2, "new-map", &request(&blif)),
        proto::render_batch_request("batch", &[request(&blif), request(&blif)]),
        proto::render_admin_request(ProtocolVersion::V2, "hi", &proto::Op::Hello),
        proto::render_admin_request(ProtocolVersion::V1, "old-stats", &proto::Op::Stats),
    ];
    let responses = burst(&stream, &frames, 5);

    match &responses["old-map"] {
        Response::MapOk { netlist, .. } => assert_eq!(netlist, &baseline, "v1 map diverged"),
        other => panic!("expected MapOk, got {other:?}"),
    }
    match &responses["new-map"] {
        Response::MapOk { netlist, .. } => assert_eq!(netlist, &baseline, "v2 map diverged"),
        other => panic!("expected MapOk, got {other:?}"),
    }
    match &responses["batch"] {
        Response::BatchOk { results, .. } => {
            assert_eq!(results.len(), 2);
            for (i, result) in results.iter().enumerate() {
                match result {
                    MapReply::Mapped(m) => {
                        assert_eq!(m.netlist, baseline, "batch entry {i} diverged");
                    }
                    other => panic!("expected Mapped for entry {i}, got {other:?}"),
                }
            }
        }
        other => panic!("expected BatchOk, got {other:?}"),
    }
    match &responses["hi"] {
        Response::HelloOk {
            versions,
            quota,
            queue_depth,
            batch_limit,
            ..
        } => {
            assert_eq!(versions, &["chortle-serve/v1", "chortle-serve/v2"]);
            assert_eq!((*quota, *queue_depth, *batch_limit), (8, 64, 64));
        }
        other => panic!("expected HelloOk, got {other:?}"),
    }
    match &responses["old-stats"] {
        Response::StatsOk { report_json, .. } => {
            chortle_telemetry::schema::validate_report(report_json).expect("schema-valid");
        }
        other => panic!("expected StatsOk, got {other:?}"),
    }

    let summary = shut_down(&addr, run);
    assert_eq!(summary.report.counter("serve.completed"), Some(4));
    assert_eq!(summary.report.counter("serve.batch_frames"), Some(1));
    assert_eq!(summary.report.counter("serve.batch_requests"), Some(2));
    assert_eq!(summary.report.counter("serve.hello_requests"), Some(1));
}

#[test]
fn mixed_session_responses_carry_the_request_version_on_the_wire() {
    let blif = write_blif(&benchmark("count").unwrap(), "count");
    let (addr, run) = start(ServeOptions::default());
    let stream = TcpStream::connect(&addr).expect("connect");
    let frames = vec![
        proto::render_map_request(ProtocolVersion::V1, "v1", &request(&blif)),
        proto::render_map_request(ProtocolVersion::V2, "v2", &request(&blif)),
    ];

    // Read raw lines (not parsed) to pin the wire-level `proto` tag.
    let mut writer = stream.try_clone().expect("clone");
    let mut bytes = String::new();
    for frame in &frames {
        bytes.push_str(frame);
        bytes.push('\n');
    }
    writer.write_all(bytes.as_bytes()).expect("write");
    let mut reader = BufReader::new(stream);
    for _ in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        if line.contains("\"id\":\"v1\"") {
            assert!(
                line.contains("\"proto\":\"chortle-serve/v1\""),
                "v1 request answered in the wrong version: {line}"
            );
        } else {
            assert!(
                line.contains("\"proto\":\"chortle-serve/v2\""),
                "v2 request answered in the wrong version: {line}"
            );
        }
    }

    shut_down(&addr, run);
}

#[test]
fn zero_deadline_is_rejected_with_work_discarded() {
    let (addr, run) = start(ServeOptions::default());
    let mut client = Client::connect(&addr).expect("connect");
    let blif = write_blif(&alu(64), "alu64");
    let mut req = request(&blif);
    req.deadline_ms = Some(0);
    match client.map("late", &req).expect("roundtrip") {
        MapReply::Rejected(rejection) => {
            assert_eq!(rejection.reason, "deadline_exceeded");
            assert!(
                rejection.detail.contains("deadline expired"),
                "{rejection:?}"
            );
        }
        other => panic!("expected deadline rejection, got {other:?}"),
    }
    // An unexpired deadline on the same connection still completes —
    // the token is per-request, not per-connection.
    let mut req = request(&write_blif(&benchmark("count").unwrap(), "count"));
    req.deadline_ms = Some(60_000);
    expect_mapped(client.map("fine", &req).expect("roundtrip"));

    let summary = shut_down(&addr, run);
    assert_eq!(summary.report.counter("serve.rejected_deadline"), Some(1));
    assert_eq!(summary.report.counter("serve.completed"), Some(1));
}

#[test]
fn overload_yields_typed_queue_full_rejections_and_no_drops() {
    // One worker, queue capacity 1, roomy quota: pipelining several slow
    // requests on one v1 connection must overflow the global queue.
    let (addr, run) = start(
        ServeOptions::builder()
            .workers(1)
            .queue_depth(1)
            .client_quota(32)
            .build(),
    );
    let blif = write_blif(&alu(96), "alu96");
    let total = 6;
    let frames: Vec<String> = (0..total)
        .map(|i| proto::render_map_request(ProtocolVersion::V1, &format!("r{i}"), &request(&blif)))
        .collect();
    let stream = TcpStream::connect(&addr).expect("connect");
    let responses = burst(&stream, &frames, total);

    let mut ok = 0usize;
    let mut queue_full = 0usize;
    for (id, response) in &responses {
        match response {
            Response::MapOk { .. } => ok += 1,
            Response::Rejected { rejection, .. } => {
                assert_eq!(
                    rejection.reason, "queue_full",
                    "only overload rejections expected for {id}"
                );
                assert_eq!(
                    rejection.retry_after_ms, None,
                    "v1 rejections never carry hints"
                );
                queue_full += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(
        responses.len(),
        total,
        "every request answered exactly once"
    );
    assert_eq!(ok + queue_full, total);
    // How many slip in before the worker drains depends on scheduling;
    // the guarantees are "admitted implies completed" (ok ≥ 1 since the
    // first push always lands in the empty queue) and "overflow is a
    // typed rejection, not a hang or a drop".
    assert!(ok >= 1, "the admitted requests complete");
    assert!(queue_full >= 1, "overload must surface as queue_full");

    let summary = shut_down(&addr, run);
    assert_eq!(
        summary.report.counter("serve.rejected_queue_full"),
        Some(queue_full as u64)
    );
    assert_eq!(
        summary.report.counter("serve.admission.shed_queue_full"),
        Some(queue_full as u64)
    );
    assert_eq!(
        summary.report.counter("serve.admission.hinted"),
        None,
        "v1 sheds are never hinted"
    );
    assert_eq!(summary.report.counter("serve.completed"), Some(ok as u64));
}

#[test]
fn quota_sheds_carry_retry_hints_on_v2_but_not_v1() {
    // Quota 1: the second of two pipelined maps is over_quota while the
    // first is still queued or in flight.
    let (addr, run) = start(ServeOptions::builder().workers(1).client_quota(1).build());
    let blif = write_blif(&alu(32), "alu32");

    let v2 = TcpStream::connect(&addr).expect("connect v2");
    let frames: Vec<String> = (0..2)
        .map(|i| proto::render_map_request(ProtocolVersion::V2, &format!("a{i}"), &request(&blif)))
        .collect();
    let responses = burst(&v2, &frames, 2);
    let mut hinted = 0;
    let mut mapped = 0;
    for response in responses.values() {
        match response {
            Response::MapOk { .. } => mapped += 1,
            Response::Rejected { rejection, .. } => {
                assert_eq!(rejection.reason, "over_quota");
                assert!(
                    rejection.detail.contains("quota of 1"),
                    "detail names the quota: {rejection:?}"
                );
                let wait = rejection.retry_after_ms.expect("v2 shed carries a hint");
                assert!((1..=10_000).contains(&wait), "hint {wait}ms out of range");
                assert!(rejection.client_queue_depth.expect("depth hint") >= 1);
                hinted += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!((mapped, hinted), (1, 1));

    // The same burst over v1: the shed downgrades to the frozen v1
    // vocabulary — reason "queue_full", no hint fields.
    let v1 = TcpStream::connect(&addr).expect("connect v1");
    let frames: Vec<String> = (0..2)
        .map(|i| proto::render_map_request(ProtocolVersion::V1, &format!("b{i}"), &request(&blif)))
        .collect();
    let responses = burst(&v1, &frames, 2);
    let rejected: Vec<_> = responses
        .values()
        .filter_map(|r| match r {
            Response::Rejected { rejection, .. } => Some(rejection.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(rejected.len(), 1);
    assert_eq!(rejected[0].reason, "queue_full");
    assert_eq!(rejected[0].retry_after_ms, None);
    assert_eq!(rejected[0].client_queue_depth, None);

    let summary = shut_down(&addr, run);
    assert_eq!(
        summary.report.counter("serve.admission.shed_over_quota"),
        Some(2)
    );
    assert_eq!(summary.report.counter("serve.admission.hinted"), Some(1));
    assert_eq!(summary.report.counter("serve.rejected_queue_full"), Some(2));
}

#[test]
fn admission_is_fair_across_bursting_clients() {
    const CLIENTS: usize = 4;
    const BURST: usize = 8;
    const QUOTA: usize = 3;
    let (addr, run) = start(
        ServeOptions::builder()
            .workers(1)
            .queue_depth(64)
            .client_quota(QUOTA)
            .build(),
    );

    // Plug the single worker with a slow request so the bursts below
    // race admission, not completion.
    let plug = TcpStream::connect(&addr).expect("connect plug");
    let slow = write_blif(&alu(96), "alu96");
    {
        let mut writer = plug.try_clone().expect("clone plug");
        let mut frame = proto::render_map_request(ProtocolVersion::V2, "plug", &request(&slow));
        frame.push('\n');
        writer.write_all(frame.as_bytes()).expect("write plug");
    }
    // Wait until the worker picked the plug up (queue drained to 0).
    let mut admin = Client::connect(&addr).expect("connect admin");
    loop {
        match admin.stats("poll").expect("stats") {
            StatsReply::Stats { queue_depth: 0, .. } => break,
            StatsReply::Stats { .. } => thread::sleep(std::time::Duration::from_millis(1)),
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    // Saturating burst from every client while the worker is busy.
    let blif = write_blif(&benchmark("count").unwrap(), "count");
    let streams: Vec<TcpStream> = (0..CLIENTS)
        .map(|_| TcpStream::connect(&addr).expect("connect client"))
        .collect();
    let mut completed = Vec::new();
    for (c, stream) in streams.iter().enumerate() {
        let frames: Vec<String> = (0..BURST)
            .map(|i| {
                proto::render_map_request(
                    ProtocolVersion::V2,
                    &format!("c{c}-{i}"),
                    &request(&blif),
                )
            })
            .collect();
        let responses = burst(stream, &frames, BURST);
        assert_eq!(responses.len(), BURST, "zero loss: every id answered once");
        let mut ok = 0usize;
        let mut shed = 0usize;
        for (id, response) in &responses {
            match response {
                Response::MapOk { .. } => ok += 1,
                Response::Rejected { rejection, .. } => {
                    assert!(
                        rejection.reason == "over_quota" || rejection.reason == "queue_full",
                        "{id}: unexpected shed {rejection:?}"
                    );
                    assert!(
                        rejection.retry_after_ms.is_some(),
                        "{id}: v2 shed must carry a retry hint"
                    );
                    shed += 1;
                }
                other => panic!("{id}: unexpected response {other:?}"),
            }
        }
        assert_eq!(ok + shed, BURST, "client {c}: zero-loss invariant");
        assert!(ok >= 1, "client {c}: at least the quota head is admitted");
        completed.push(ok);
    }

    // Fairness: no client outruns another by more than the quota.
    let most = *completed.iter().max().expect("clients");
    let least = *completed.iter().min().expect("clients");
    assert!(
        most - least <= QUOTA,
        "per-client completions {completed:?} spread wider than the quota {QUOTA}"
    );

    let summary = shut_down(&addr, run);
    let total: usize = completed.iter().sum();
    // +1 for the plug request.
    assert_eq!(
        summary.report.counter("serve.completed"),
        Some(total as u64 + 1)
    );
    assert!(
        summary
            .report
            .counter("serve.coalesced_frames")
            .unwrap_or(0)
            >= 1,
        "burst rejections coalesce into shared writes"
    );
    let depth_hist = summary
        .report
        .histogram("serve.admission.client_depth")
        .expect("client-depth histogram present");
    assert_eq!(depth_hist.count() as usize, total + 1);
}

#[test]
fn flush_bumps_the_generation_and_empties_the_warm_cache() {
    let (addr, run) = start(ServeOptions::default());
    let mut client = Client::connect(&addr).expect("connect");
    let blif = write_blif(&benchmark("frg1").unwrap(), "frg1");

    let first = expect_mapped(client.map("m0", &request(&blif)).expect("roundtrip"));
    let flushed = match client.flush("f0").expect("roundtrip") {
        FlushReply::Flushed { cache_generation } => cache_generation,
        other => panic!("expected Flushed, got {other:?}"),
    };
    assert_eq!(
        flushed,
        first.cache_generation + 1,
        "flush bumps the generation"
    );
    let second = expect_mapped(client.map("m1", &request(&blif)).expect("roundtrip"));
    assert_eq!(
        second.cache_generation, flushed,
        "post-flush requests see the new generation"
    );
    assert_eq!(
        first.netlist, second.netlist,
        "flushing never changes mapping results"
    );

    let summary = shut_down(&addr, run);
    assert_eq!(summary.report.counter("serve.flushes"), Some(1));
    assert_eq!(summary.cache_generation, flushed);
}

#[test]
fn fn_cache_requests_reuse_the_functional_tier_across_requests() {
    let (addr, run) = start(ServeOptions::default());
    let mut client = Client::connect(&addr).expect("connect");
    let blif = write_blif(&benchmark("frg1").unwrap(), "frg1");

    let shared = expect_mapped(client.map("m0", &request(&blif)).expect("roundtrip"));
    let req = MapRequest {
        cache: CacheMode::Fn,
        ..request(&blif)
    };
    let first = expect_mapped(client.map("m1", &req).expect("roundtrip"));
    assert_eq!(
        first.netlist, shared.netlist,
        "the functional tier never changes the mapping"
    );
    let second = expect_mapped(client.map("m2", &req).expect("roundtrip"));
    assert_eq!(second.netlist, shared.netlist);

    match client.stats("s").expect("roundtrip") {
        StatsReply::Stats { warm, .. } => {
            assert!(warm.shapes > 0, "structural tier populated: {warm:?}");
            assert!(warm.fn_entries > 0, "functional tier populated: {warm:?}");
            assert!(
                warm.fn_hits > 0,
                "repeat fn requests replay warm functional entries: {warm:?}"
            );
            assert!(warm.hit_rate() > 0.0);
            assert!(warm.fn_hit_rate() > 0.0);
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    shut_down(&addr, run);
}

#[test]
fn stats_and_trace_expose_live_introspection() {
    let (addr, run) = start(ServeOptions::builder().trace_capacity(2).build());
    let mut client = Client::connect(&addr).expect("connect");
    let blif = write_blif(&benchmark("count").unwrap(), "count");

    // Rebuild the server's run-time histogram client-side from the
    // `run_ns` echoed in each response: because both sides use the same
    // bucketing, the reconstruction must match bucket-for-bucket.
    let mut run_hist = chortle_telemetry::Histogram::new();
    for i in 0..3 {
        let mapped = expect_mapped(
            client
                .map(&format!("m{i}"), &request(&blif))
                .expect("roundtrip"),
        );
        run_hist.record(mapped.run_ns);
    }

    match client.stats("s").expect("roundtrip") {
        StatsReply::Stats {
            queue_depth,
            report_json,
            ..
        } => {
            assert_eq!(queue_depth, 0, "nothing queued between round trips");
            chortle_telemetry::schema::validate_report(&report_json).expect("schema-valid");
            for needle in [
                "\"serve.queue_ns\"",
                "\"serve.run_ns\"",
                "\"serve.admission.client_depth\"",
                "serve.stats_requests",
                "serve.admission.admitted",
            ] {
                assert!(report_json.contains(needle), "stats report lost {needle}");
            }
        }
        other => panic!("expected Stats, got {other:?}"),
    }

    // The ring holds `trace_capacity` entries: the oldest request has
    // been evicted, the survivors arrive oldest first.
    match client.trace("t").expect("roundtrip") {
        TraceReply::Trace { capacity, requests } => {
            assert_eq!(capacity, 2);
            let ids: Vec<&str> = requests.iter().map(|r| r.id.as_str()).collect();
            assert_eq!(ids, ["m1", "m2"], "bounded ring evicts oldest first");
            for r in &requests {
                assert_eq!(r.outcome, "ok");
                assert!(r.luts > 0 && r.depth > 0);
            }
        }
        other => panic!("expected Trace, got {other:?}"),
    }

    let summary = shut_down(&addr, run);
    assert_eq!(summary.report.counter("serve.stats_requests"), Some(1));
    assert_eq!(summary.report.counter("serve.trace_requests"), Some(1));
    assert_eq!(
        summary.report.histogram("serve.run_ns"),
        Some(&run_hist),
        "echoed run_ns values rebuild the server histogram exactly"
    );
    let queue_hist = summary
        .report
        .histogram("serve.queue_ns")
        .expect("queue-wait histogram present");
    assert_eq!(queue_hist.count(), 3, "one queue-wait sample per map");
}

#[test]
fn batches_resolve_entries_independently_and_respect_the_limit() {
    let (addr, run) = start(ServeOptions::builder().batch_limit(3).build());
    let mut client = Client::connect(&addr).expect("connect");
    let count = write_blif(&benchmark("count").unwrap(), "count");
    let frg1 = write_blif(&benchmark("frg1").unwrap(), "frg1");
    let count_baseline = offline(&count, 4, Objective::Area, true);
    let frg1_baseline = offline(&frg1, 4, Objective::Area, true);

    match client.hello("hi").expect("roundtrip") {
        HelloReply::Hello { batch_limit, .. } => assert_eq!(batch_limit, 3),
        other => panic!("expected Hello, got {other:?}"),
    }

    // One good, one broken, one good: the frame succeeds as a whole and
    // the bad entry is a per-entry rejection in its slot.
    let requests = vec![
        request(&count),
        request(".model m\n.inputs a\n.outputs y\n.names\n.end\n"),
        request(&frg1),
    ];
    match client.map_batch("mixed", &requests).expect("roundtrip") {
        chortle_server::BatchReply::Results(results) => {
            assert_eq!(results.len(), 3);
            match &results[0] {
                MapReply::Mapped(m) => assert_eq!(m.netlist, count_baseline),
                other => panic!("entry 0: expected Mapped, got {other:?}"),
            }
            match &results[1] {
                MapReply::Rejected(r) => {
                    assert_eq!(r.reason, "bad_request");
                    assert!(r.detail.contains("cannot parse input"), "{r:?}");
                }
                other => panic!("entry 1: expected Rejected, got {other:?}"),
            }
            match &results[2] {
                MapReply::Mapped(m) => assert_eq!(m.netlist, frg1_baseline),
                other => panic!("entry 2: expected Mapped, got {other:?}"),
            }
        }
        other => panic!("expected Results, got {other:?}"),
    }

    // Over the limit: the whole frame is rejected before admission.
    let oversized = vec![request(&count); 4];
    match client.map_batch("big", &oversized).expect("roundtrip") {
        chortle_server::BatchReply::Rejected(rejection) => {
            assert_eq!(rejection.reason, "bad_request");
            assert!(rejection.detail.contains("batch_limit"), "{rejection:?}");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    let summary = shut_down(&addr, run);
    assert_eq!(summary.report.counter("serve.batch_frames"), Some(2));
    assert_eq!(summary.report.counter("serve.batch_requests"), Some(7));
    assert_eq!(summary.report.counter("serve.completed"), Some(2));
    assert_eq!(summary.report.counter("serve.hello_requests"), Some(1));
}

#[test]
fn malformed_requests_are_rejected_as_bad_request() {
    let (addr, run) = start(ServeOptions::default());
    let mut client = Client::connect(&addr).expect("connect");

    // Protocol-level garbage, v1 and v2 violations alike.
    for raw in [
        "this is not json",
        r#"{"proto":"chortle-serve/v1","id":"x","zap":true}"#,
        r#"{"proto":"chortle-serve/v1","id":"x","op":"hello"}"#,
        r#"{"proto":"chortle-serve/v1","id":"x","op":"map","blif":".end\n","priority":3}"#,
    ] {
        match client.send_raw(raw).expect("roundtrip") {
            Response::Rejected { rejection, .. } => {
                assert_eq!(rejection.reason, "bad_request", "{raw}");
            }
            other => panic!("expected bad_request for {raw}, got {other:?}"),
        }
    }
    // BLIF that does not parse (truncated .names) and an out-of-range k
    // both map to bad_request, with the parser's own diagnostic.
    let truncated = request(".model m\n.inputs a\n.outputs y\n.names\n.end\n");
    match client.map("t", &truncated).expect("roundtrip") {
        MapReply::Rejected(rejection) => {
            assert_eq!(rejection.reason, "bad_request");
            assert!(
                rejection.detail.contains("cannot parse input"),
                "{rejection:?}"
            );
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
    let mut bad_k = request(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n");
    bad_k.k = 20;
    match client.map("k", &bad_k).expect("roundtrip") {
        MapReply::Rejected(rejection) => assert_eq!(rejection.reason, "bad_request"),
        other => panic!("expected bad_request, got {other:?}"),
    }

    let summary = shut_down(&addr, run);
    assert_eq!(
        summary.report.counter("serve.rejected_bad_request"),
        Some(6)
    );
    assert_eq!(summary.report.counter("serve.completed"), None);
}

#[test]
fn shutdown_drains_refuses_new_work_and_reports_schema_valid_telemetry() {
    let (addr, run) = start(ServeOptions::default());
    let blif = write_blif(&benchmark("count").unwrap(), "count");

    // One pipelined write: map, stats, shutdown, then another map. The
    // server must answer all four — the trailing map with a typed
    // `shutting_down`, never silence (frames behind a shutdown are
    // answered, not dropped).
    let stream = TcpStream::connect(&addr).expect("connect");
    let frames = vec![
        proto::render_map_request(ProtocolVersion::V2, "before", &request(&blif)),
        proto::render_admin_request(ProtocolVersion::V2, "mid-stats", &proto::Op::Stats),
        proto::render_admin_request(ProtocolVersion::V2, "bye", &proto::Op::Shutdown),
        proto::render_map_request(ProtocolVersion::V2, "after", &request(&blif)),
    ];
    let responses = burst(&stream, &frames, 4);

    match &responses["before"] {
        Response::MapOk { .. } => {}
        other => panic!("expected MapOk, got {other:?}"),
    }
    match &responses["mid-stats"] {
        Response::StatsOk {
            report_json,
            cache_generation,
            queue_high_water,
            ..
        } => {
            assert_eq!(*cache_generation, 0);
            assert!(*queue_high_water >= 1, "the map request was queued");
            chortle_telemetry::schema::validate_report(report_json)
                .expect("mid-run stats report validates against the schema");
        }
        other => panic!("expected StatsOk, got {other:?}"),
    }
    match &responses["bye"] {
        Response::ShutdownOk { .. } => {}
        other => panic!("expected ShutdownOk, got {other:?}"),
    }
    match &responses["after"] {
        Response::Rejected { rejection, .. } => {
            assert_eq!(rejection.reason, "shutting_down");
            assert!(rejection.detail.contains("draining"), "{rejection:?}");
        }
        other => panic!("expected shutting_down, got {other:?}"),
    }

    let summary = run.join().expect("server exits");
    assert_eq!(summary.report.counter("serve.completed"), Some(1));
    assert_eq!(summary.report.counter("serve.rejected_shutdown"), Some(1));
    assert!(summary.report.counter("serve.connections").unwrap_or(0) >= 1);
    chortle_telemetry::schema::validate_report(&summary.report.to_json())
        .expect("final aggregate report validates against the schema");
}

/// A sequential design: two combinational clouds separated by a latch,
/// plus a passthrough output — the fixture the chortle design tests use.
const SEQ_DESIGN: &str = "\
.model two_clouds
.inputs a b c
.outputs z w
.latch d q re clk 0
.names a b t
11 1
.names t c d
1- 1
-1 1
.names q b z
01 1
.names a w
1 1
.end
";

#[test]
fn map_design_matches_the_offline_design_pipeline() {
    let (addr, run) = start(ServeOptions::default());
    let mut client = Client::connect(&addr).expect("connect");
    let mapped = expect_mapped(
        client
            .map_design("d1", &request(SEQ_DESIGN))
            .expect("map_design round trip"),
    );
    assert!(mapped.luts >= 1);

    // Ground truth: the same sequential pipeline run offline, with the
    // optimize pass hooked in where the CLI's `--design` path runs it.
    // The server skips per-cloud verification, which never changes the
    // output bytes.
    let (design, _) = chortle_netlist::parse_design(SEQ_DESIGN).expect("fixture parses");
    let options = chortle::MapOptions::builder(4)
        .cache(CacheMode::Off)
        .build()
        .expect("valid options");
    let mut design_opts = chortle::DesignOptions::new(options);
    design_opts.verify = false;
    design_opts.preprocess = Some(std::sync::Arc::new(|net: &chortle_netlist::Network| {
        chortle_logic_opt::optimize(net)
            .map(|(optimized, _)| optimized)
            .map_err(|e| e.to_string())
    }));
    let offline = chortle::map_design(&design, &design_opts).expect("offline design maps");
    assert_eq!(mapped.netlist, offline.netlist);
    assert_eq!((mapped.luts, mapped.depth), (offline.luts, offline.depth));

    // The assembled netlist is itself a parseable sequential design
    // with the register boundary intact.
    let (reparsed, _) =
        chortle_netlist::parse_design(&mapped.netlist).expect("mapped design re-parses");
    assert_eq!(reparsed.latches().len(), 1);

    // The embedded report carries the design.* and blif.* namespaces
    // and validates against schema v1.7.
    chortle_telemetry::schema::validate_report(&mapped.report_json)
        .expect("per-request design report validates against the schema");
    assert!(mapped.report_json.contains("\"design.clouds\""));
    assert!(mapped.report_json.contains("\"blif.latches\""));

    // A v1-pinned client cannot speak the op; the server says so
    // instead of silently degrading.
    let mut v1 = Client::connect_versioned(&addr, ProtocolVersion::V1).expect("connect v1");
    match v1
        .map_design("d2", &request(SEQ_DESIGN))
        .expect("v1 round trip")
    {
        MapReply::Rejected(rejection) => {
            assert_eq!(rejection.reason, "bad_request");
            assert!(
                rejection.detail.contains("chortle-serve/v2"),
                "{rejection:?}"
            );
        }
        other => panic!("expected a v1 rejection, got {other:?}"),
    }
    shut_down(&addr, run);
}

#[test]
fn trace_ids_correlate_response_ring_and_logs() {
    // Route structured logs into a test sink before the server exists,
    // so its worker-loop events are captured.
    let sink = chortle_telemetry::log::init_test_sink();
    let (addr, run) = start(ServeOptions::builder().trace_capacity(4).build());
    let mut client = Client::connect(&addr).expect("connect");
    let blif = write_blif(&benchmark("count").unwrap(), "count");

    let mut req = request(&blif);
    req.trace_id = "trace-e2e-42".to_owned();
    let mapped = expect_mapped(client.map("m1", &req).expect("roundtrip"));
    assert_eq!(
        mapped.trace_id, "trace-e2e-42",
        "the v2 response echoes the client's trace_id"
    );

    match client.trace("t").expect("roundtrip") {
        TraceReply::Trace { requests, .. } => {
            let entry = requests
                .iter()
                .find(|r| r.id == "m1")
                .expect("ring remembers the request");
            assert_eq!(
                entry.trace_id, "trace-e2e-42",
                "the op:\"trace\" ring entry carries the trace_id"
            );
        }
        other => panic!("expected Trace, got {other:?}"),
    }

    // The same correlation id appears in the request-finished log event
    // — one scan joins response, ring, and logs.
    let lines = sink.lines();
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"trace_id\":\"trace-e2e-42\"")
                && l.contains("\"target\":\"serve.request\"")),
        "a structured log event carries the trace_id: {lines:#?}"
    );
    chortle_telemetry::log::disable();
    shut_down(&addr, run);
}

#[test]
fn stats_count_trace_ring_evictions() {
    let (addr, run) = start(ServeOptions::builder().trace_capacity(1).build());
    let mut client = Client::connect(&addr).expect("connect");
    let blif = write_blif(&benchmark("count").unwrap(), "count");
    for i in 0..3 {
        expect_mapped(
            client
                .map(&format!("m{i}"), &request(&blif))
                .expect("roundtrip"),
        );
    }
    match client.stats("s").expect("roundtrip") {
        StatsReply::Stats { trace_dropped, .. } => {
            assert_eq!(
                trace_dropped,
                Some(2),
                "a capacity-1 ring evicted two of three traces"
            );
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    shut_down(&addr, run);
}

#[test]
fn metrics_window_agrees_with_cumulative_before_eviction() {
    let (addr, run) = start(ServeOptions::default());
    let mut client = Client::connect(&addr).expect("connect");
    let blif = write_blif(&benchmark("count").unwrap(), "count");
    for i in 0..4 {
        expect_mapped(
            client
                .map(&format!("m{i}"), &request(&blif))
                .expect("roundtrip"),
        );
    }
    match client.metrics("w").expect("roundtrip") {
        MetricsReply::Metrics(m) => {
            // Seconds into a 60 s window, nothing has aged out: the
            // windowed totals must equal the cumulative ones exactly.
            assert_eq!(m.window_s, 60);
            assert_eq!(m.cumulative_completed, 4);
            assert_eq!(m.window_completed, m.cumulative_completed);
            assert_eq!(m.window_accepted, m.cumulative_accepted);
            assert_eq!(m.window_shed, 0);
            assert_eq!(m.cumulative_shed, 0);
            assert!(m.qps > 0.0, "completed work yields a positive rate");
            assert!(m.p50_ns > 0 && m.p99_ns >= m.p50_ns);
        }
        other => panic!("expected Metrics, got {other:?}"),
    }

    // The op is v2-only; a v1 client gets a typed rejection.
    let mut v1 = Client::connect_versioned(&addr, ProtocolVersion::V1).expect("connect v1");
    match v1.metrics("w1").expect("v1 roundtrip") {
        MetricsReply::Rejected(rejection) => {
            assert_eq!(rejection.reason, "bad_request");
            assert!(
                rejection.detail.contains("chortle-serve/v2"),
                "{rejection:?}"
            );
        }
        other => panic!("expected a v1 rejection, got {other:?}"),
    }

    let summary = shut_down(&addr, run);
    assert_eq!(summary.report.counter("serve.metrics_requests"), Some(1));
}

#[test]
fn metrics_endpoint_serves_valid_prometheus_exposition() {
    use std::io::Read as _;

    let options = ServeOptions::builder()
        .metrics_addr(Some("127.0.0.1:0".to_owned()))
        .build();
    let server = Server::bind(&options).expect("bind ephemeral ports");
    let addr = server.local_addr().expect("bound address").to_string();
    let scrape_addr = server.metrics_addr().expect("metrics listener bound");
    let run = thread::spawn(move || server.run());

    // Seed the daemon with real traffic so the exposition has samples.
    let mut client = Client::connect(&addr).expect("connect");
    let blif = write_blif(&benchmark("count").unwrap(), "count");
    for i in 0..2 {
        expect_mapped(
            client
                .map(&format!("m{i}"), &request(&blif))
                .expect("roundtrip"),
        );
    }

    let mut scrape = TcpStream::connect(scrape_addr).expect("connect to /metrics");
    scrape
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
        .expect("write scrape request");
    let mut page = String::new();
    scrape.read_to_string(&mut page).expect("read scrape");
    assert!(page.starts_with("HTTP/1.0 200 OK\r\n"), "{page}");
    let body = page.split("\r\n\r\n").nth(1).expect("headers then body");
    chortle_telemetry::prom::validate_exposition(body)
        .expect("live scrape passes the report-check --prom validator");
    for needle in [
        "# TYPE chortle_serve_completed counter",
        "chortle_serve_completed 2",
        "# TYPE chortle_serve_run_ns summary",
        "chortle_serve_run_ns{quantile=\"0.99\"} ",
        "chortle_serve_run_ns_count 2",
        "# TYPE chortle_serve_window_qps gauge",
        "chortle_serve_uptime_s ",
    ] {
        assert!(body.contains(needle), "exposition lost {needle:?}:\n{body}");
    }

    // Any other path (or method) is a 404, and the daemon survives it.
    let mut bad = TcpStream::connect(scrape_addr).expect("connect bad path");
    bad.write_all(b"GET /other HTTP/1.0\r\n\r\n")
        .expect("write");
    let mut reply = String::new();
    bad.read_to_string(&mut reply).expect("read");
    assert!(reply.starts_with("HTTP/1.0 404"), "{reply}");

    shut_down(&addr, run);
}
