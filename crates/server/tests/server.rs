//! Integration tests for the `chortle-serve` runtime: byte-identity
//! with the offline pipeline, deadlines, backpressure, the warm cache,
//! and graceful shutdown — all against a real in-process TCP server.

use std::thread;

use chortle::{CacheMode, Objective};
use chortle_circuits::{alu, benchmark};
use chortle_netlist::write_blif;
use chortle_server::{Client, MapRequest, Response, ServeConfig, Server, ServerSummary};

/// Starts a server on an ephemeral port; returns its address and the
/// thread that will yield the final summary after shutdown.
fn start(config: ServeConfig) -> (String, thread::JoinHandle<ServerSummary>) {
    let server = Server::bind(0, &config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let run = thread::spawn(move || server.run());
    (addr, run)
}

fn request(blif: &str) -> MapRequest {
    MapRequest {
        blif: blif.to_owned(),
        k: 4,
        jobs: 1,
        cache: CacheMode::Shared,
        objective: Objective::Area,
        optimize: true,
        deadline_ms: None,
    }
}

/// The offline ground truth: the same parse → optimize → map → render
/// pipeline the CLI runs, at `jobs: 1` with the cache off.
fn offline(blif: &str, k: usize, objective: Objective, optimize: bool) -> String {
    let parsed = chortle_netlist::parse_blif(blif).expect("test circuit parses");
    let network = if optimize {
        chortle_logic_opt::optimize(&parsed).expect("optimizes").0
    } else {
        parsed
    };
    let options = chortle::MapOptions::builder(k)
        .objective(objective)
        .cache(CacheMode::Off)
        .build()
        .expect("valid options");
    let mapping = chortle::map_network(&network, &options).expect("maps");
    chortle_netlist::write_lut_blif(&network, &mapping.circuit, "mapped")
}

fn expect_map_ok(response: Response) -> (usize, usize, u64, String) {
    match response {
        Response::MapOk {
            luts,
            depth,
            cache_generation,
            netlist,
            ..
        } => (luts, depth, cache_generation, netlist),
        other => panic!("expected MapOk, got {other:?}"),
    }
}

fn shut_down(addr: &str, run: thread::JoinHandle<ServerSummary>) -> ServerSummary {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    match client.shutdown("bye").expect("shutdown acked") {
        Response::ShutdownOk { id } => assert_eq!(id, "bye"),
        other => panic!("expected ShutdownOk, got {other:?}"),
    }
    run.join().expect("server thread exits cleanly")
}

#[test]
fn responses_are_byte_identical_to_the_offline_pipeline() {
    let circuits: Vec<(&str, String)> = vec![
        ("count", write_blif(&benchmark("count").unwrap(), "count")),
        ("frg1", write_blif(&benchmark("frg1").unwrap(), "frg1")),
        ("alu8", write_blif(&alu(8), "alu8")),
    ];
    let (addr, run) = start(ServeConfig::default());
    let mut client = Client::connect(&addr).expect("connect");

    for (name, blif) in &circuits {
        // The identity property: every (jobs, cache) combination — and a
        // warm-cache repeat — produces the same bytes as the offline
        // jobs=1/cache-off pipeline.
        let baseline = offline(blif, 4, Objective::Area, true);
        let mut sent = 0;
        for jobs in [1, 4] {
            for cache in [CacheMode::Off, CacheMode::Tree, CacheMode::Shared] {
                let mut req = request(blif);
                req.jobs = jobs;
                req.cache = cache;
                let id = format!("{name}-j{jobs}-{cache:?}");
                let (_, _, _, netlist) = expect_map_ok(client.map(&id, &req).expect("roundtrip"));
                assert_eq!(netlist, baseline, "{id} diverged from the offline pipeline");
                sent += 1;
            }
        }
        assert_eq!(sent, 6);

        // Warm repeat (shared cache already populated by the loop above).
        let (_, _, _, netlist) = expect_map_ok(
            client
                .map(&format!("{name}-warm"), &request(blif))
                .expect("roundtrip"),
        );
        assert_eq!(netlist, baseline, "{name}: warm-cache run diverged");

        // A different option mix, to show identity is not k=4-specific.
        let variant = offline(blif, 5, Objective::Depth, false);
        let mut req = request(blif);
        req.k = 5;
        req.objective = Objective::Depth;
        req.optimize = false;
        let (luts, depth, _, netlist) =
            expect_map_ok(client.map(&format!("{name}-k5"), &req).expect("roundtrip"));
        assert_eq!(netlist, variant, "{name}: k=5/depth/no-optimize diverged");
        assert!(luts > 0 && depth > 0);
    }

    let summary = shut_down(&addr, run);
    assert_eq!(summary.report.counter("serve.completed"), Some(24));
    assert_eq!(summary.report.counter("serve.accepted"), Some(24));
}

#[test]
fn zero_deadline_is_rejected_with_work_discarded() {
    let (addr, run) = start(ServeConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let blif = write_blif(&alu(64), "alu64");
    let mut req = request(&blif);
    req.deadline_ms = Some(0);
    match client.map("late", &req).expect("roundtrip") {
        Response::Rejected { id, reason, detail } => {
            assert_eq!(id, "late");
            assert_eq!(reason, "deadline_exceeded");
            assert!(detail.contains("deadline expired"), "{detail}");
        }
        other => panic!("expected deadline rejection, got {other:?}"),
    }
    // An unexpired deadline on the same connection still completes —
    // the token is per-request, not per-connection.
    let mut req = request(&write_blif(&benchmark("count").unwrap(), "count"));
    req.deadline_ms = Some(60_000);
    expect_map_ok(client.map("fine", &req).expect("roundtrip"));

    let summary = shut_down(&addr, run);
    assert_eq!(summary.report.counter("serve.rejected_deadline"), Some(1));
    assert_eq!(summary.report.counter("serve.completed"), Some(1));
}

#[test]
fn overload_yields_typed_queue_full_rejections_and_no_drops() {
    use std::io::{BufRead, BufReader, Write};
    // One worker, queue capacity 1: pipelining several slow requests on
    // one connection must overflow the queue deterministically.
    let (addr, run) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let blif = write_blif(&alu(96), "alu96");
    let total = 6;

    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut lines = String::new();
    for i in 0..total {
        lines.push_str(&chortle_server::proto::render_map_request(
            &format!("r{i}"),
            &request(&blif),
        ));
        lines.push('\n');
    }
    writer.write_all(lines.as_bytes()).expect("write burst");
    writer.flush().expect("flush");

    let reader = BufReader::new(stream);
    let mut ok = 0usize;
    let mut queue_full = 0usize;
    let mut seen = std::collections::BTreeSet::new();
    for line in reader.lines().take(total) {
        let line = line.expect("every request gets a response line");
        match chortle_server::parse_response(&line).expect("well-formed response") {
            Response::MapOk { id, .. } => {
                ok += 1;
                seen.insert(id);
            }
            Response::Rejected { id, reason, .. } => {
                assert_eq!(reason, "queue_full", "only overload rejections expected");
                queue_full += 1;
                seen.insert(id);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(seen.len(), total, "every request answered exactly once");
    assert_eq!(ok + queue_full, total);
    // How many slip in before the worker drains depends on scheduling;
    // the guarantees are "admitted implies completed" (ok ≥ 1 since the
    // first push always lands in the empty queue) and "overflow is a
    // typed rejection, not a hang or a drop".
    assert!(ok >= 1, "the admitted requests complete");
    assert!(queue_full >= 1, "overload must surface as queue_full");
    drop(writer);

    let summary = shut_down(&addr, run);
    assert_eq!(
        summary.report.counter("serve.rejected_queue_full"),
        Some(queue_full as u64)
    );
    assert_eq!(summary.report.counter("serve.completed"), Some(ok as u64));
}

#[test]
fn flush_bumps_the_generation_and_empties_the_warm_cache() {
    let (addr, run) = start(ServeConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let blif = write_blif(&benchmark("frg1").unwrap(), "frg1");

    let (_, _, g0, first) = expect_map_ok(client.map("m0", &request(&blif)).expect("roundtrip"));
    let flushed = match client.flush("f0").expect("roundtrip") {
        Response::FlushOk {
            cache_generation, ..
        } => cache_generation,
        other => panic!("expected FlushOk, got {other:?}"),
    };
    assert_eq!(flushed, g0 + 1, "flush bumps the generation");
    let (_, _, g1, second) = expect_map_ok(client.map("m1", &request(&blif)).expect("roundtrip"));
    assert_eq!(g1, flushed, "post-flush requests see the new generation");
    assert_eq!(first, second, "flushing never changes mapping results");

    let summary = shut_down(&addr, run);
    assert_eq!(summary.report.counter("serve.flushes"), Some(1));
    assert_eq!(summary.cache_generation, flushed);
}

#[test]
fn stats_and_trace_expose_live_introspection() {
    let (addr, run) = start(ServeConfig {
        trace_capacity: 2,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let blif = write_blif(&benchmark("count").unwrap(), "count");

    // Rebuild the server's run-time histogram client-side from the
    // `run_ns` echoed in each response: because both sides use the same
    // bucketing, the reconstruction must match bucket-for-bucket.
    let mut run_hist = chortle_telemetry::Histogram::new();
    for i in 0..3 {
        match client
            .map(&format!("m{i}"), &request(&blif))
            .expect("roundtrip")
        {
            Response::MapOk { run_ns, .. } => run_hist.record(run_ns),
            other => panic!("expected MapOk, got {other:?}"),
        }
    }

    match client.stats("s").expect("roundtrip") {
        Response::StatsOk {
            id,
            queue_depth,
            report_json,
            ..
        } => {
            assert_eq!(id, "s");
            assert_eq!(queue_depth, 0, "nothing queued between round trips");
            chortle_telemetry::schema::validate_report(&report_json).expect("schema-valid");
            for needle in [
                "\"serve.queue_ns\"",
                "\"serve.run_ns\"",
                "serve.stats_requests",
            ] {
                assert!(report_json.contains(needle), "stats report lost {needle}");
            }
        }
        other => panic!("expected StatsOk, got {other:?}"),
    }

    // The ring holds `trace_capacity` entries: the oldest request has
    // been evicted, the survivors arrive oldest first.
    match client.trace("t").expect("roundtrip") {
        Response::TraceOk {
            id,
            capacity,
            requests,
        } => {
            assert_eq!((id.as_str(), capacity), ("t", 2));
            let ids: Vec<&str> = requests.iter().map(|r| r.id.as_str()).collect();
            assert_eq!(ids, ["m1", "m2"], "bounded ring evicts oldest first");
            for r in &requests {
                assert_eq!(r.outcome, "ok");
                assert!(r.luts > 0 && r.depth > 0);
            }
        }
        other => panic!("expected TraceOk, got {other:?}"),
    }

    let summary = shut_down(&addr, run);
    assert_eq!(summary.report.counter("serve.stats_requests"), Some(1));
    assert_eq!(summary.report.counter("serve.trace_requests"), Some(1));
    assert_eq!(
        summary.report.histogram("serve.run_ns"),
        Some(&run_hist),
        "echoed run_ns values rebuild the server histogram exactly"
    );
    let queue_hist = summary
        .report
        .histogram("serve.queue_ns")
        .expect("queue-wait histogram present");
    assert_eq!(queue_hist.count(), 3, "one queue-wait sample per map");
}

#[test]
fn malformed_requests_are_rejected_as_bad_request() {
    let (addr, run) = start(ServeConfig::default());
    let mut client = Client::connect(&addr).expect("connect");

    // Protocol-level garbage.
    for raw in [
        "this is not json",
        r#"{"proto":"chortle-serve/v1","id":"x","zap":true}"#,
    ] {
        match client.send_raw(raw).expect("roundtrip") {
            Response::Rejected { reason, .. } => assert_eq!(reason, "bad_request", "{raw}"),
            other => panic!("expected bad_request for {raw}, got {other:?}"),
        }
    }
    // BLIF that does not parse (truncated .names) and an out-of-range k
    // both map to bad_request, with the parser's own diagnostic.
    let truncated = request(".model m\n.inputs a\n.outputs y\n.names\n.end\n");
    match client.map("t", &truncated).expect("roundtrip") {
        Response::Rejected { reason, detail, .. } => {
            assert_eq!(reason, "bad_request");
            assert!(detail.contains("cannot parse input"), "{detail}");
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
    let mut bad_k = request(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n");
    bad_k.k = 20;
    match client.map("k", &bad_k).expect("roundtrip") {
        Response::Rejected { reason, .. } => assert_eq!(reason, "bad_request"),
        other => panic!("expected bad_request, got {other:?}"),
    }

    let summary = shut_down(&addr, run);
    assert_eq!(
        summary.report.counter("serve.rejected_bad_request"),
        Some(4)
    );
    assert_eq!(summary.report.counter("serve.completed"), None);
}

#[test]
fn shutdown_drains_refuses_new_work_and_reports_schema_valid_telemetry() {
    let (addr, run) = start(ServeConfig::default());
    let blif = write_blif(&benchmark("count").unwrap(), "count");

    // A second connection opened *before* shutdown: its reader survives
    // the drain and must refuse post-shutdown work with a typed reason.
    let mut survivor = Client::connect(&addr).expect("connect survivor");
    let mut client = Client::connect(&addr).expect("connect");
    expect_map_ok(client.map("before", &request(&blif)).expect("roundtrip"));

    match client.stats("s").expect("roundtrip") {
        Response::StatsOk {
            report_json,
            cache_generation,
            queue_high_water,
            ..
        } => {
            assert_eq!(cache_generation, 0);
            assert!(queue_high_water >= 1, "the map request was queued");
            chortle_telemetry::schema::validate_report(&report_json)
                .expect("mid-run stats report validates against the schema");
        }
        other => panic!("expected StatsOk, got {other:?}"),
    }

    match client.shutdown("bye").expect("roundtrip") {
        Response::ShutdownOk { .. } => {}
        other => panic!("expected ShutdownOk, got {other:?}"),
    }
    match survivor.map("after", &request(&blif)).expect("roundtrip") {
        Response::Rejected { reason, .. } => assert_eq!(reason, "shutting_down"),
        other => panic!("expected shutting_down, got {other:?}"),
    }

    let summary = run.join().expect("server exits");
    assert_eq!(summary.report.counter("serve.completed"), Some(1));
    // The survivor's rejection may land after the final snapshot (its
    // reader thread outlives the drain), so only bound the counter; the
    // typed response above is the real contract.
    assert!(
        summary
            .report
            .counter("serve.rejected_shutdown")
            .unwrap_or(0)
            <= 1
    );
    assert!(summary.report.counter("serve.connections").unwrap_or(0) >= 2);
    chortle_telemetry::schema::validate_report(&summary.report.to_json())
        .expect("final aggregate report validates against the schema");
}
