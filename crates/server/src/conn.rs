//! Per-connection state for the event loop: a non-blocking socket with
//! explicit read/write buffers.
//!
//! The event loop owns every [`Conn`] outright — no mutexes, no
//! per-connection threads. Reads pull whatever the kernel has into
//! `rbuf` and split it into complete request lines (pipelining falls
//! out naturally: a client may write any number of frames back to
//! back). Writes go through `wbuf`: responses produced in one poll
//! iteration are appended to the buffer and flushed with as few
//! `write` calls as the kernel accepts — many ready responses for one
//! client coalesce into a single syscall/TCP segment instead of one
//! frame per write (the PR-6 small-frame inefficiency).

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// How much to ask the kernel for per `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// One client connection owned by the event loop.
pub(crate) struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet split into complete lines.
    rbuf: Vec<u8>,
    /// Rendered response bytes not yet accepted by the kernel.
    wbuf: Vec<u8>,
    /// The peer half-closed (EOF) or errored its read side.
    pub read_closed: bool,
    /// A write failed hard; the peer forfeits its remaining answers.
    pub write_dead: bool,
}

impl Conn {
    /// Wraps an accepted stream, switching it to non-blocking mode and
    /// disabling Nagle (responses are latency-sensitive single frames
    /// or already-coalesced bulks; never let the kernel sit on them).
    pub fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            read_closed: false,
            write_dead: false,
        })
    }

    /// Reads everything currently available, appending complete request
    /// lines to `lines`. Returns `true` if any bytes arrived (the poll
    /// iteration made progress). Sets `read_closed` on EOF or a hard
    /// error; a final unterminated line is still delivered, matching
    /// the blocking reader the event loop replaced.
    pub fn read_available(&mut self, lines: &mut Vec<String>) -> bool {
        if self.read_closed {
            return false;
        }
        let mut progressed = false;
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    self.rbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.read_closed = true;
                    break;
                }
            }
        }
        self.split_lines(lines);
        if self.read_closed && !self.rbuf.is_empty() {
            // EOF with a trailing unterminated line: deliver it.
            let tail = std::mem::take(&mut self.rbuf);
            lines.push(String::from_utf8_lossy(&tail).into_owned());
        }
        progressed
    }

    /// Splits complete `\n`-terminated lines out of `rbuf`.
    fn split_lines(&mut self, lines: &mut Vec<String>) {
        let mut start = 0;
        while let Some(pos) = self.rbuf[start..].iter().position(|&b| b == b'\n') {
            let end = start + pos;
            let line = String::from_utf8_lossy(&self.rbuf[start..end]).into_owned();
            lines.push(line);
            start = end + 1;
        }
        if start > 0 {
            self.rbuf.drain(..start);
        }
    }

    /// Appends one response frame to the write buffer. Returns `true`
    /// when the frame *coalesced* — other frames were already waiting,
    /// so this one will share their write call.
    pub fn queue_frame(&mut self, frame: &str) -> bool {
        if self.write_dead {
            return false; // answers to a hung-up client are forfeit
        }
        let coalesced = !self.wbuf.is_empty();
        self.wbuf.reserve(frame.len() + 1);
        self.wbuf.extend_from_slice(frame.as_bytes());
        self.wbuf.push(b'\n');
        coalesced
    }

    /// Pushes buffered response bytes to the kernel until it pushes
    /// back (`WouldBlock`) or the buffer empties. Returns `true` if any
    /// bytes moved. Hard errors mark the connection `write_dead`
    /// (errors are swallowed, never fatal to the server — PR-4 rule).
    pub fn flush(&mut self) -> bool {
        if self.write_dead || self.wbuf.is_empty() {
            return false;
        }
        let mut written = 0;
        while written < self.wbuf.len() {
            match self.stream.write(&self.wbuf[written..]) {
                Ok(0) => {
                    self.write_dead = true;
                    break;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.write_dead = true;
                    break;
                }
            }
        }
        if written > 0 {
            self.wbuf.drain(..written);
        }
        if self.wbuf.is_empty() {
            let _ = self.stream.flush();
        }
        written > 0
    }

    /// `true` when every queued response byte has reached the kernel.
    pub fn flushed(&self) -> bool {
        self.wbuf.is_empty()
    }

    /// `true` once this connection can be dropped: the peer is done
    /// sending and either everything was delivered or delivery is
    /// impossible.
    pub fn finished(&self) -> bool {
        self.read_closed && (self.wbuf.is_empty() || self.write_dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, TcpListener};

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let peer = TcpStream::connect(addr).expect("connect");
        let (accepted, _) = listener.accept().expect("accept");
        (peer, Conn::new(accepted).expect("conn"))
    }

    #[test]
    fn splits_pipelined_lines_and_keeps_partials() {
        let (mut peer, mut conn) = pair();
        peer.write_all(b"one\ntwo\nthree").expect("write");
        peer.flush().expect("flush");
        let mut lines = Vec::new();
        // Poll until both complete lines arrived (TCP may deliver in
        // pieces); the partial third must stay buffered.
        for _ in 0..200 {
            conn.read_available(&mut lines);
            if lines.len() >= 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(lines, ["one", "two"]);
        assert!(!conn.read_closed);
        // Completing the line and closing delivers the rest.
        peer.write_all(b" more\nlast").expect("write");
        drop(peer);
        for _ in 0..200 {
            conn.read_available(&mut lines);
            if conn.read_closed {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(lines, ["one", "two", "three more", "last"]);
        assert!(conn.read_closed);
    }

    #[test]
    fn coalesces_queued_frames_into_one_stream() {
        let (mut peer, mut conn) = pair();
        assert!(!conn.queue_frame("alpha"), "first frame starts the buffer");
        assert!(conn.queue_frame("beta"), "second frame coalesces");
        assert!(conn.queue_frame("gamma"), "third frame coalesces");
        while !conn.flushed() {
            conn.flush();
        }
        drop(conn);
        let mut got = String::new();
        peer.read_to_string(&mut got).expect("read");
        assert_eq!(got, "alpha\nbeta\ngamma\n");
    }

    #[test]
    fn finished_requires_eof_and_empty_write_buffer() {
        let (peer, mut conn) = pair();
        conn.queue_frame("pending");
        drop(peer);
        let mut lines = Vec::new();
        for _ in 0..200 {
            conn.read_available(&mut lines);
            if conn.read_closed {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(conn.read_closed);
        // Undelivered bytes hold the connection open until a flush
        // either delivers them or proves the peer gone.
        while !conn.finished() {
            conn.flush();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}
