//! The sliding-window metrics aggregator behind `op: "metrics"` and the
//! Prometheus endpoint (DESIGN.md §18).
//!
//! The daemon's counters and histograms are cumulative-since-startup;
//! dashboards want *rates over the recent past*. This module keeps a
//! bounded ring of per-second [`Cum`] deltas (one bucket per elapsed
//! second, at most [`WindowAggregator::window_s`] of them) and derives
//! windowed qps, shed rate, per-tier cache hit rates, and latency
//! quantiles from their sum.
//!
//! Two invariants make the numbers trustworthy:
//!
//! - **Exact roll-up.** A snapshot always includes the *live tail* —
//!   the delta between the last completed second boundary and now — so
//!   right after startup (before the ring has evicted anything) the
//!   window totals equal the cumulative totals exactly, and the
//!   `window ≤ cumulative` inequality holds per key forever after
//!   (counters are monotonic; the window sums a suffix of history).
//! - **No silent gaps.** When the clock skips seconds between
//!   observations (an idle daemon), the accrued delta lands in the
//!   earliest skipped second and the rest are padded with empty
//!   buckets, so the ring's length honestly measures elapsed time and
//!   old traffic still ages out on schedule.
//!
//! Time is an explicit parameter (`sec`, whole seconds since server
//! start) rather than read from a clock here, so tests drive the
//! window deterministically.

use std::collections::VecDeque;
use std::sync::Mutex;

use chortle::WarmStats;
use chortle_telemetry::{Histogram, Report};

use crate::proto::MetricsSnapshot;
use crate::server::stats;

/// Cumulative totals at one instant — the aggregator's unit of
/// observation. Windowed values are differences of these.
#[derive(Clone)]
pub(crate) struct Cum {
    /// Requests admitted to the queue (`serve.accepted`).
    pub accepted: u64,
    /// Requests completed successfully (`serve.completed`).
    pub completed: u64,
    /// Requests shed at admission (`serve.admission.shed_over_quota`
    /// plus `serve.admission.shed_queue_full`).
    pub shed: u64,
    /// Structural warm-cache tier lookup hits.
    pub hits: u64,
    /// Structural warm-cache tier lookup misses.
    pub misses: u64,
    /// Functional warm-cache tier lookup hits.
    pub fn_hits: u64,
    /// Functional warm-cache tier lookup misses.
    pub fn_misses: u64,
    /// The `serve.run_ns` execution-latency histogram.
    pub run_hist: Histogram,
}

impl Cum {
    /// All-zero totals (the state before the server has served
    /// anything).
    pub fn zero() -> Cum {
        Cum {
            accepted: 0,
            completed: 0,
            shed: 0,
            hits: 0,
            misses: 0,
            fn_hits: 0,
            fn_misses: 0,
            run_hist: Histogram::new(),
        }
    }

    /// Reads the current cumulative totals out of a server report and
    /// the warm-cache tallies.
    pub fn capture(report: &Report, warm: &WarmStats) -> Cum {
        let counter = |name: &str| report.counter(name).unwrap_or(0);
        Cum {
            accepted: counter(stats::ACCEPTED),
            completed: counter(stats::COMPLETED),
            shed: counter(stats::ADMISSION_SHED_OVER_QUOTA)
                + counter(stats::ADMISSION_SHED_QUEUE_FULL),
            hits: warm.hits,
            misses: warm.misses,
            fn_hits: warm.fn_hits,
            fn_misses: warm.fn_misses,
            run_hist: report
                .histogram(stats::HIST_RUN_NS)
                .cloned()
                .unwrap_or_else(Histogram::new),
        }
    }

    /// The delta `self - earlier`, saturating per key (counters are
    /// monotonic, so saturation only papers over a caller bug).
    fn delta(&self, earlier: &Cum) -> Cum {
        Cum {
            accepted: self.accepted.saturating_sub(earlier.accepted),
            completed: self.completed.saturating_sub(earlier.completed),
            shed: self.shed.saturating_sub(earlier.shed),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            fn_hits: self.fn_hits.saturating_sub(earlier.fn_hits),
            fn_misses: self.fn_misses.saturating_sub(earlier.fn_misses),
            run_hist: self.run_hist.diff(&earlier.run_hist),
        }
    }

    /// Accumulates `other` into `self` (the inverse of [`Cum::delta`]).
    fn add(&mut self, other: &Cum) {
        self.accepted += other.accepted;
        self.completed += other.completed;
        self.shed += other.shed;
        self.hits += other.hits;
        self.misses += other.misses;
        self.fn_hits += other.fn_hits;
        self.fn_misses += other.fn_misses;
        self.run_hist.merge(&other.run_hist);
    }
}

struct State {
    /// Cumulative totals at the last completed second boundary.
    base: Cum,
    /// The second index `base` was observed at.
    base_sec: u64,
    /// Per-second deltas, oldest first — at most `window_s - 1` of
    /// them; the live tail (`now - base`) supplies the final second.
    deltas: VecDeque<Cum>,
}

/// The sliding window itself. One per server; the event loop feeds it
/// via [`WindowAggregator::observe`] once per second and any thread
/// may take a [`WindowAggregator::snapshot`].
pub(crate) struct WindowAggregator {
    window_s: u64,
    inner: Mutex<State>,
}

impl WindowAggregator {
    /// A window retaining `window_s` seconds of per-second deltas
    /// (clamped to at least 1).
    pub fn new(window_s: u64) -> Self {
        WindowAggregator {
            window_s: window_s.max(1),
            inner: Mutex::new(State {
                base: Cum::zero(),
                base_sec: 0,
                deltas: VecDeque::new(),
            }),
        }
    }

    /// `true` when `sec` has advanced past the last completed second —
    /// the caller's cue to capture a [`Cum`] and call
    /// [`WindowAggregator::observe`] (capturing is the expensive part,
    /// so the event loop checks first).
    pub fn needs_roll(&self, sec: u64) -> bool {
        sec > self.inner.lock().expect("metrics window poisoned").base_sec
    }

    /// Rolls the window forward to `sec`: the delta accrued since the
    /// last boundary becomes the bucket for that earliest second, any
    /// further skipped seconds get empty buckets, and buckets older
    /// than the window age out. A non-advancing `sec` is a no-op.
    pub fn observe(&self, sec: u64, now: &Cum) {
        let mut state = self.inner.lock().expect("metrics window poisoned");
        if sec <= state.base_sec {
            return;
        }
        let delta = now.delta(&state.base);
        state.deltas.push_back(delta);
        for _ in 1..(sec - state.base_sec).min(self.window_s) {
            state.deltas.push_back(Cum::zero());
        }
        let keep = (self.window_s - 1) as usize;
        while state.deltas.len() > keep {
            state.deltas.pop_front();
        }
        state.base = now.clone();
        state.base_sec = sec;
    }

    /// Derives the windowed snapshot: ring buckets plus the live tail
    /// (`now` vs the last boundary), so window totals and cumulative
    /// totals agree exactly until the ring starts evicting.
    pub fn snapshot(&self, now: &Cum) -> MetricsSnapshot {
        let state = self.inner.lock().expect("metrics window poisoned");
        let mut window = now.delta(&state.base);
        for bucket in &state.deltas {
            window.add(bucket);
        }
        let seconds = (state.deltas.len() as u64 + 1).min(self.window_s);
        let rate = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                part as f64 / whole as f64
            }
        };
        MetricsSnapshot {
            window_s: self.window_s,
            seconds,
            qps: window.completed as f64 / seconds.max(1) as f64,
            shed_rate: rate(window.shed, window.accepted + window.shed),
            cache_hit_rate: rate(window.hits, window.hits + window.misses),
            fn_cache_hit_rate: rate(window.fn_hits, window.fn_hits + window.fn_misses),
            p50_ns: window.run_hist.quantile(0.5),
            p95_ns: window.run_hist.quantile(0.95),
            p99_ns: window.run_hist.quantile(0.99),
            window_accepted: window.accepted,
            window_completed: window.completed,
            window_shed: window.shed,
            cumulative_accepted: now.accepted,
            cumulative_completed: now.completed,
            cumulative_shed: now.shed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cum(accepted: u64, completed: u64, shed: u64, runs: &[u64]) -> Cum {
        let mut c = Cum::zero();
        c.accepted = accepted;
        c.completed = completed;
        c.shed = shed;
        c.hits = completed / 2;
        c.misses = completed - completed / 2;
        for &ns in runs {
            c.run_hist.record(ns);
        }
        c
    }

    #[test]
    fn fresh_window_equals_cumulative_exactly() {
        let w = WindowAggregator::new(60);
        let now = cum(10, 8, 2, &[1_000, 2_000, 4_000]);
        // No roll has happened: the live tail covers everything.
        let m = w.snapshot(&now);
        assert_eq!(m.window_accepted, m.cumulative_accepted);
        assert_eq!(m.window_completed, m.cumulative_completed);
        assert_eq!(m.window_shed, m.cumulative_shed);
        assert_eq!(m.seconds, 1);
        assert!((m.shed_rate - 2.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn window_arithmetic_rolls_up_per_second_deltas() {
        let w = WindowAggregator::new(60);
        let t1 = cum(10, 10, 0, &[1_000]);
        w.observe(1, &t1);
        let t2 = cum(25, 22, 3, &[1_000, 2_000]);
        w.observe(2, &t2);
        let t3 = cum(30, 28, 3, &[1_000, 2_000, 8_000]);
        let m = w.snapshot(&t3);
        // Buckets (0→1, 1→2) plus the live tail (2→now) sum back to
        // the cumulative totals — nothing evicted yet.
        assert_eq!(m.seconds, 3);
        assert_eq!(m.window_accepted, 30);
        assert_eq!(m.window_completed, 28);
        assert_eq!(m.window_shed, 3);
        assert_eq!(m.cumulative_accepted, 30);
        assert!((m.qps - 28.0 / 3.0).abs() < 1e-12);
        assert!((m.shed_rate - 3.0 / 33.0).abs() < 1e-12);
        // The summed window histogram holds all three samples.
        assert!(m.p50_ns >= 1_000 && m.p99_ns >= m.p50_ns);
    }

    #[test]
    fn old_traffic_ages_out_of_a_small_window() {
        let w = WindowAggregator::new(3);
        let t1 = cum(100, 100, 0, &[]);
        w.observe(1, &t1);
        // Ten quiet seconds: the burst's bucket must be evicted.
        w.observe(11, &t1);
        let m = w.snapshot(&t1);
        assert_eq!(m.window_completed, 0, "burst aged out");
        assert_eq!(m.cumulative_completed, 100, "cumulative keeps it");
        assert_eq!(m.seconds, 3);
        assert!((m.qps - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn skipped_seconds_pad_and_bound_the_ring() {
        let w = WindowAggregator::new(5);
        let t1 = cum(7, 7, 0, &[500]);
        w.observe(1, &t1);
        let t2 = cum(9, 9, 0, &[500, 500]);
        // A 100-second gap may not grow the ring past the window.
        w.observe(101, &t2);
        let m = w.snapshot(&t2);
        assert_eq!(m.seconds, 5);
        assert!(m.window_completed <= m.cumulative_completed);
        assert_eq!(m.window_completed, 0, "gap evicted the old buckets");
    }

    #[test]
    fn non_advancing_observations_are_no_ops() {
        let w = WindowAggregator::new(60);
        let t1 = cum(5, 5, 0, &[]);
        w.observe(3, &t1);
        assert!(!w.needs_roll(3));
        assert!(w.needs_roll(4));
        w.observe(3, &t1);
        w.observe(2, &t1);
        let m = w.snapshot(&t1);
        // Seconds 0..=2 are bucketed (two of them padding), second 3 is
        // the live tail — four seconds of coverage, totals unchanged.
        assert_eq!(m.seconds, 4);
        assert_eq!(m.window_completed, 5);
    }
}
