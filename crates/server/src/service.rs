//! The per-request mapping pipeline.
//!
//! Mirrors the offline CLI flow (`chortle-cli::run_flow`) stage for
//! stage — parse, optional MIS-style optimization, Chortle mapping,
//! BLIF render with the same `"mapped"` model name — so a server
//! response's `netlist` is **byte-identical** to what `chortle-map`
//! prints for the same `(BLIF, k, jobs, cache, objective, optimize)`.
//! Equivalence verification is deliberately skipped server-side: it
//! never changes the output bytes, and the offline CLI remains the
//! place for one-shot assurance runs. Each request gets its own enabled
//! [`Telemetry`] sink whose report is embedded in the response.

use std::sync::Arc;
use std::time::Instant;

use chortle::{
    map_design, map_network, record_parse_stats, CancelToken, DesignError, DesignOptions, MapError,
    MapOptions, WarmCache,
};
use chortle_logic_opt::{optimize_with_telemetry, OptimizeOptions};
use chortle_netlist::{parse_blif, parse_design, write_lut_blif, Network};
use chortle_telemetry::Telemetry;

use crate::proto::{MapRequest, RejectReason};

/// Flow-stage names, matching the offline CLI's so per-request reports
/// read the same either way.
const STAGE_PARSE: &str = "flow.parse";
const STAGE_OPTIMIZE: &str = "flow.optimize";
const STAGE_MAP: &str = "flow.map";
const STAGE_RENDER: &str = "flow.render";

/// A successfully mapped request, ready to render into a response.
pub(crate) struct MapOutcome {
    /// LUTs in the mapped circuit.
    pub luts: usize,
    /// LUT levels on the longest path.
    pub depth: usize,
    /// The mapped circuit as BLIF (model `mapped`), byte-identical to
    /// the offline CLI's stdout for the same request parameters.
    pub netlist: String,
    /// The per-request telemetry report, serialized.
    pub report_json: String,
}

/// Executes one `map` request against the server's warm cache under a
/// cancellation token.
///
/// # Errors
///
/// Returns the typed rejection to send: `bad_request` for anything
/// wrong with the request itself (unparseable BLIF, out-of-range `k`),
/// `deadline_exceeded` when `cancel` fired mid-run (partial work
/// discarded — the drivers drop everything on the floor), and
/// `internal` for mapper invariant failures that should never happen.
pub(crate) fn execute_map(
    req: &MapRequest,
    warm: &WarmCache,
    cancel: CancelToken,
) -> Result<MapOutcome, (RejectReason, String)> {
    let telemetry = Telemetry::enabled();
    let options = MapOptions::builder(req.k)
        .jobs(req.jobs)
        .cache(req.cache)
        .objective(req.objective)
        .telemetry(telemetry.clone())
        .cancel(cancel.clone())
        .warm_cache(warm.clone())
        .build()
        .map_err(|e| (RejectReason::BadRequest, e.to_string()))?;

    let parsed = {
        let _s = telemetry.span(STAGE_PARSE);
        parse_blif(&req.blif)
            .map_err(|e| (RejectReason::BadRequest, format!("cannot parse input: {e}")))?
    };
    if cancel.is_cancelled() {
        return Err(deadline_rejection());
    }
    let network = if req.optimize {
        let _s = telemetry.span(STAGE_OPTIMIZE);
        let (optimized, _) =
            optimize_with_telemetry(&parsed, &OptimizeOptions::default(), &telemetry)
                .map_err(|e| (RejectReason::Internal, format!("optimization failed: {e}")))?;
        optimized
    } else {
        parsed
    };
    if cancel.is_cancelled() {
        return Err(deadline_rejection());
    }

    let mapping = {
        let _s = telemetry.span(STAGE_MAP);
        map_network(&network, &options).map_err(|e| match e {
            MapError::Cancelled => deadline_rejection(),
            other => (RejectReason::Internal, format!("mapping failed: {other}")),
        })?
    };

    let netlist = {
        let _s = telemetry.span(STAGE_RENDER);
        write_lut_blif(&network, &mapping.circuit, "mapped")
    };
    Ok(MapOutcome {
        luts: mapping.circuit.num_luts(),
        depth: mapping.circuit.depth(),
        netlist,
        report_json: telemetry.snapshot().to_json(),
    })
}

/// Executes one `map_design` request: the sequential-design pipeline
/// (DESIGN.md §17) behind the same stage names and the same warm cache
/// as `execute_map`. The `optimize` knob hooks the MIS-style script in
/// as the per-cloud preprocess — exactly where the offline CLI's
/// `--design` path runs it — so the assembled netlist is byte-identical
/// to `chortle-map --design` with the same parameters. Per-cloud
/// equivalence verification stays an offline-CLI concern, like the
/// combinational path's.
///
/// # Errors
///
/// `bad_request` for unparseable designs or out-of-range knobs,
/// `deadline_exceeded` when `cancel` fired mid-run, and `internal` for
/// pipeline failures that should never happen.
pub(crate) fn execute_design(
    req: &MapRequest,
    warm: &WarmCache,
    cancel: CancelToken,
) -> Result<MapOutcome, (RejectReason, String)> {
    let telemetry = Telemetry::enabled();
    let options = MapOptions::builder(req.k)
        .jobs(req.jobs)
        .cache(req.cache)
        .objective(req.objective)
        .telemetry(telemetry.clone())
        .cancel(cancel.clone())
        .warm_cache(warm.clone())
        .build()
        .map_err(|e| (RejectReason::BadRequest, e.to_string()))?;

    let (design, parse_stats) = {
        let _s = telemetry.span(STAGE_PARSE);
        parse_design(&req.blif)
            .map_err(|e| (RejectReason::BadRequest, format!("cannot parse input: {e}")))?
    };
    record_parse_stats(&telemetry, &parse_stats);
    if cancel.is_cancelled() {
        return Err(deadline_rejection());
    }

    let mut design_opts = DesignOptions::new(options);
    design_opts.verify = false;
    if req.optimize {
        let telemetry = telemetry.clone();
        design_opts.preprocess = Some(Arc::new(move |net: &Network| {
            optimize_with_telemetry(net, &OptimizeOptions::default(), &telemetry)
                .map(|(optimized, _)| optimized)
                .map_err(|e| e.to_string())
        }));
    }

    let mapped = {
        let _s = telemetry.span(STAGE_MAP);
        map_design(&design, &design_opts).map_err(|e| match e {
            DesignError::Map {
                error: MapError::Cancelled,
                ..
            }
            | DesignError::Scheduler(MapError::Cancelled) => deadline_rejection(),
            other => (
                RejectReason::Internal,
                format!("design mapping failed: {other}"),
            ),
        })?
    };
    Ok(MapOutcome {
        luts: mapped.luts,
        depth: mapped.depth,
        netlist: mapped.netlist,
        report_json: telemetry.snapshot().to_json(),
    })
}

fn deadline_rejection() -> (RejectReason, String) {
    (
        RejectReason::DeadlineExceeded,
        "deadline expired before mapping finished; partial work discarded".into(),
    )
}

/// Builds the cancellation token for a job with an optional absolute
/// deadline; without one the token is inert (zero per-tree cost).
pub(crate) fn cancel_for(deadline: Option<Instant>) -> CancelToken {
    deadline.map_or_else(CancelToken::default, CancelToken::with_deadline)
}
