//! `chortle-server` — a resident technology-mapping service around the
//! [`chortle`] mapper.
//!
//! The library behind the `chortle-serve` binary (and the
//! `chortle-map serve` subcommand). It serves the newline-delimited
//! JSON protocol `chortle-serve/v1` ([`proto`]) over localhost TCP
//! ([`Server`]) or stdin/stdout ([`serve_stdio`]), with:
//!
//! - a fixed worker pool fed by a **bounded admission queue** —
//!   overload turns into immediate typed `rejected: queue_full`
//!   responses, never unbounded buffering;
//! - **per-request deadlines** (`deadline_ms`) enforced cooperatively
//!   at tree boundaries inside the mapper, answering
//!   `rejected: deadline_exceeded` with partial work discarded;
//! - a process-wide **warm DP cache** ([`chortle::WarmCache`]) shared
//!   across requests in `cache: "shared"` mode, observable through the
//!   `cache_generation` response field and resettable with a `flush`
//!   request;
//! - **graceful shutdown**: a `shutdown` request stops admission,
//!   drains in-flight work, and yields a final aggregate telemetry
//!   report (`serve.*` counters plus the `serve.queue_ns` and
//!   `serve.run_ns` latency histograms, schema
//!   `chortle-telemetry/v1.3`);
//! - **live introspection**: `op: "stats"` answers uptime, per-op
//!   request counters, queue depth and high-water mark, and the latency
//!   histograms without disturbing the workers; `op: "trace"` dumps a
//!   bounded ring of recently completed request traces
//!   (`--trace-capacity` sizes it).
//!
//! Responses are byte-identical to the offline `chortle-map` CLI for
//! the same `(BLIF, k, jobs, cache, objective, optimize)` — the server
//! is a faster way to run the same mapper, not a different mapper.
//!
//! Everything is `std`-only, like the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod client;
pub mod proto;
pub mod queue;
mod server;
mod service;

pub use args::{print_serve_help, ServeArgs, SERVE_FLAGS};
pub use client::{parse_response, Client, Response};
pub use proto::{MapRequest, Op, RejectReason, Request, RequestTrace, PROTOCOL};
pub use server::{
    run_daemon, serve_stdio, stats, ServeConfig, Server, ServerHandle, ServerSummary,
};
