//! `chortle-server` — a resident technology-mapping service around the
//! [`chortle`] mapper.
//!
//! The library behind the `chortle-serve` binary (and the
//! `chortle-map serve` subcommand). It serves the newline-delimited
//! JSON protocols `chortle-serve/v1` and `chortle-serve/v2` ([`proto`])
//! over localhost TCP ([`Server`]) or stdin/stdout ([`serve_stdio`]),
//! with:
//!
//! - an **event-driven serving core**: one poll loop owns every
//!   connection with non-blocking sockets and explicit read/write
//!   buffers — pipelined frames on one connection and hundreds of
//!   concurrent connections cost buffers, not threads, and ready
//!   responses for the same client coalesce into a single write;
//! - **per-client fair admission** replacing the old global queue
//!   cliff: each client gets its own FIFO served round-robin with a
//!   per-client quota of queued + in-flight requests, a v2 `priority`
//!   field (0–9) preferred across clients, and graceful load-shedding
//!   whose v2 rejections carry `retry_after_ms` and
//!   `client_queue_depth` hints;
//! - **protocol v2** on top of the frozen v1: `op: "hello"` version
//!   negotiation, `op: "map_batch"` frames mapping many netlists per
//!   round trip, `op: "map_design"` for sequential designs
//!   (`.latch`/`.subckt`, mapped as register-bounded combinational
//!   clouds — DESIGN.md §17), and structured shed hints — v1 frames
//!   keep parsing and are answered byte-identically to the v1 daemon;
//! - **per-request deadlines** (`deadline_ms`) enforced cooperatively
//!   at tree boundaries inside the mapper, answering
//!   `rejected: deadline_exceeded` with partial work discarded;
//! - a process-wide **warm DP cache** ([`chortle::WarmCache`]) shared
//!   across requests in `cache: "shared"` mode, observable through the
//!   `cache_generation` response field and resettable with a `flush`
//!   request;
//! - **graceful shutdown**: a `shutdown` request stops admission,
//!   drains in-flight work, and yields a final aggregate telemetry
//!   report (`serve.*` counters plus the `serve.queue_ns`,
//!   `serve.run_ns`, and `serve.admission.client_depth` histograms,
//!   schema `chortle-telemetry/v1.7`);
//! - **live introspection**: `op: "stats"` answers uptime, per-op
//!   request counters, queue depth and high-water mark, and the latency
//!   histograms without disturbing the workers; `op: "trace"` dumps a
//!   bounded ring of recently completed request traces
//!   (`--trace-capacity` sizes it);
//! - a **live observability plane** (DESIGN.md §18): structured JSONL
//!   logging via [`chortle_telemetry::log`] (`--log-level`,
//!   `--log-file`, off by default so output stays byte-identical), an
//!   optional v2 `trace_id` echoed end to end (response frame,
//!   `op: "trace"` ring entry, per-request log events), a
//!   sliding-window metrics aggregator surfaced as v2 `op: "metrics"`
//!   (windowed qps, shed rate, cache hit rates, p50/p95/p99), and a
//!   Prometheus text exposition on `--metrics-addr` validated by
//!   `report-check --prom`.
//!
//! Responses are byte-identical to the offline `chortle-map` CLI for
//! the same `(BLIF, k, jobs, cache, objective, optimize)` — the server
//! is a faster way to run the same mapper, not a different mapper.
//! That holds for every path: v1 `map`, v2 `map`, each entry of a v2
//! `map_batch`, and `map_design` against `chortle-map --design`.
//!
//! Everything is `std`-only, like the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
pub mod args;
pub mod client;
mod conn;
mod event_loop;
mod metrics;
pub mod proto;
mod server;
mod service;

pub use args::{print_serve_help, ServeArgs, SERVE_FLAGS};
pub use client::{
    parse_response, BatchReply, Client, FlushReply, HelloReply, MapReply, Mapped, MetricsReply,
    Rejection, Response, ShutdownReply, StatsReply, TraceReply,
};
pub use proto::{
    BatchItem, BatchRequest, MapPayload, MapRequest, MetricsSnapshot, Op, ProtocolVersion,
    RejectReason, Request, RequestTrace, ServerLimits, ShedHint, MAX_PRIORITY, PROTOCOLS,
    PROTOCOL_V1, PROTOCOL_V2,
};
pub use server::{
    run_daemon, serve_stdio, stats, ServeOptions, ServeOptionsBuilder, Server, ServerHandle,
    ServerSummary,
};
