//! The bounded admission queue between connection readers and the
//! worker pool.
//!
//! Admission is the server's backpressure point: [`BoundedQueue::try_push`]
//! never blocks and never buffers beyond the configured capacity —
//! when the queue is full the job comes straight back
//! ([`PushError::Full`]) and the connection thread answers
//! `rejected: queue_full` immediately. A client therefore always learns
//! the server's state within one round trip; nothing silently piles up.
//!
//! Workers block in [`BoundedQueue::pop`] on a condvar. Closing the
//! queue ([`BoundedQueue::close`]) starts the drain: pushes fail with
//! [`PushError::Closed`], pops keep returning queued jobs until the
//! queue is empty, then return `None` — which is each worker's signal
//! to exit. That ordering is what makes shutdown graceful: admitted
//! work always completes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Why a push was refused; both variants hand the job back to the
/// caller so a typed rejection can be sent without cloning.
#[derive(Debug)]
pub enum PushError<T> {
    /// Capacity reached — overload backpressure.
    Full(T),
    /// The queue was closed (shutdown in progress).
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A Mutex + Condvar bounded MPMC queue (std-only).
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    available: Condvar,
    high_water: AtomicUsize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` jobs (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            high_water: AtomicUsize::new(0),
        }
    }

    /// Non-blocking admission.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; both return the job.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        // Updated only under a successful push (while we still observe
        // the post-push depth), so the mark is exact, not racy.
        self.high_water.fetch_max(depth, Ordering::Relaxed);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (returns it) or the queue is
    /// closed *and* drained (returns `None` — the worker's exit signal).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: future pushes fail, queued jobs still drain,
    /// idle workers wake up to observe the close.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Jobs currently queued (racy; for observability only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether no jobs are queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The deepest the queue has ever been — the backpressure headroom
    /// signal surfaced by `op: "stats"`.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn capacity_bounds_admission() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn high_water_tracks_the_deepest_point_only() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.high_water(), 0);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.high_water(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.high_water(), 2, "draining never lowers the mark");
        q.try_push(3).unwrap();
        assert_eq!(q.high_water(), 2, "shallower pushes never raise it");
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        match q.try_push(2) {
            Err(PushError::Closed(2)) => {}
            other => panic!("expected Closed(2), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1), "queued jobs drain after close");
        assert_eq!(q.pop(), None, "then pops signal exit");
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // No sleep needed for correctness: close() notifies whether or
        // not the waiter reached the condvar yet.
        q.close();
        assert_eq!(waiter.join().expect("no panic"), None);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        q.try_push(7).unwrap();
        assert!(matches!(q.try_push(8), Err(PushError::Full(8))));
        assert!(!q.is_empty());
    }
}
