//! The `chortle-serve/v1` wire protocol.
//!
//! One request per line, one response per line, both JSON objects —
//! newline-delimited so clients can speak it with a buffered reader and
//! no framing layer. Parsing reuses the hand-rolled RFC 8259 parser of
//! `chortle_telemetry::json`; serialization is hand-written in the same
//! style (`write_string` for escaping), so the whole protocol stays
//! std-only.
//!
//! ## Grammar (see DESIGN.md §12 for the full semantics)
//!
//! Request keys: `proto` (required, `"chortle-serve/v1"`), `id`
//! (optional string, echoed verbatim), `op` (`"map"` default, `"flush"`,
//! `"stats"`, `"trace"`, `"shutdown"`); for `op: "map"` also `blif` (required),
//! `k` (default 4), `jobs` (default 0 = host parallelism), `cache`
//! (`"shared"`/`"tree"`/`"off"`, default shared), `objective`
//! (`"area"`/`"depth"`, default area), `optimize` (default true) and
//! `deadline_ms` (optional). Unknown keys, unknown enum values, and
//! admin requests carrying map-only keys are rejected — a versioned
//! protocol fails loudly instead of guessing.
//!
//! Responses carry `status: "ok"` with per-op payloads, or
//! `status: "rejected"` with a typed `reason` ([`RejectReason`]) and a
//! human-readable `detail`.

use chortle::{CacheMode, Objective};
use chortle_telemetry::json::{self, write_string, Value};

/// The protocol version tag every request and response carries.
pub const PROTOCOL: &str = "chortle-serve/v1";

/// A parsed request: the echoed `id` plus the operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response
    /// (empty when absent).
    pub id: String,
    /// The requested operation.
    pub op: Op,
}

/// The operations of `chortle-serve/v1`.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Map an inline BLIF network into K-input LUTs.
    Map(MapRequest),
    /// Discard the warm cross-request DP cache and bump its generation.
    Flush,
    /// Return the aggregate server telemetry report so far.
    Stats,
    /// Return the ring buffer of recently completed request traces.
    Trace,
    /// Stop accepting work, drain in-flight requests, exit.
    Shutdown,
}

/// One completed request as remembered by the server's bounded trace
/// ring — the payload of an `op: "trace"` response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestTrace {
    /// The request's correlation id, echoed as the client sent it.
    pub id: String,
    /// How the request ended: `"ok"` or a [`RejectReason`] spelling.
    pub outcome: String,
    /// Nanoseconds spent queued between admission and a worker
    /// picking the job up.
    pub queue_ns: u64,
    /// Nanoseconds the worker spent executing the request.
    pub run_ns: u64,
    /// Mapped LUT count (0 for rejected or admin outcomes).
    pub luts: usize,
    /// Mapped circuit depth (0 for rejected or admin outcomes).
    pub depth: usize,
}

/// The payload of a `map` request.
#[derive(Clone, Debug, PartialEq)]
pub struct MapRequest {
    /// The network to map, as inline BLIF text.
    pub blif: String,
    /// LUT input count (the mapper validates the 2..=8 range).
    pub k: usize,
    /// Mapper worker threads (0 = host parallelism). Identical output
    /// for every value — parallelism is a latency knob only.
    pub jobs: usize,
    /// DP memoization mode; `Shared` (the default) additionally taps the
    /// server's warm cross-request cache.
    pub cache: CacheMode,
    /// Mapping objective.
    pub objective: Objective,
    /// Run the MIS-style optimization script before mapping (default
    /// true — matching the offline CLI's default flow).
    pub optimize: bool,
    /// Per-request deadline in milliseconds from admission. `None` means
    /// unbounded.
    pub deadline_ms: Option<u64>,
}

/// Typed rejection reasons — the `reason` field of a
/// `status: "rejected"` response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue was full; retry later.
    QueueFull,
    /// The request's `deadline_ms` expired before mapping finished
    /// (partial work discarded).
    DeadlineExceeded,
    /// The request was malformed: bad JSON, bad protocol fields, or
    /// BLIF that does not parse.
    BadRequest,
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
    /// The mapper failed internally (never expected; the detail says
    /// how).
    Internal,
}

impl RejectReason {
    /// The wire spelling of the reason.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::DeadlineExceeded => "deadline_exceeded",
            RejectReason::BadRequest => "bad_request",
            RejectReason::ShuttingDown => "shutting_down",
            RejectReason::Internal => "internal",
        }
    }
}

/// A protocol-level parse failure: the rejection detail plus whatever
/// `id` could still be recovered for the response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// Best-effort recovered correlation id (empty if the line was not
    /// even JSON).
    pub id: String,
    /// Human-readable description of the first deviation.
    pub detail: String,
}

/// Every key `chortle-serve/v1` knows; anything else is rejected.
const KNOWN_KEYS: &[&str] = &[
    "proto",
    "id",
    "op",
    "blif",
    "k",
    "jobs",
    "cache",
    "objective",
    "optimize",
    "deadline_ms",
];

/// Keys that only make sense on `op: "map"`.
const MAP_KEYS: &[&str] = &[
    "blif",
    "k",
    "jobs",
    "cache",
    "objective",
    "optimize",
    "deadline_ms",
];

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`ProtoError`] (maps to `rejected: bad_request`) on
/// malformed JSON, a wrong or missing protocol tag, unknown keys or
/// ops, wrong value kinds, or admin ops carrying map-only keys.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let fail = |id: &str, detail: String| ProtoError {
        id: id.to_owned(),
        detail,
    };
    let value = json::parse(line).map_err(|e| fail("", format!("invalid JSON: {e}")))?;
    let members = value
        .as_object()
        .ok_or_else(|| fail("", "request must be a JSON object".into()))?;
    // Recover the id first so even rejections correlate.
    let id = match value.get("id") {
        None => String::new(),
        Some(v) => v
            .as_str()
            .ok_or_else(|| fail("", "\"id\" must be a string".into()))?
            .to_owned(),
    };
    for (key, _) in members {
        if !KNOWN_KEYS.contains(&key.as_str()) {
            return Err(fail(&id, format!("unknown key {key:?}")));
        }
    }
    let proto = value
        .get("proto")
        .ok_or_else(|| fail(&id, format!("missing \"proto\" (expected {PROTOCOL:?})")))?
        .as_str()
        .ok_or_else(|| fail(&id, "\"proto\" must be a string".into()))?;
    if proto != PROTOCOL {
        return Err(fail(
            &id,
            format!("unsupported protocol {proto:?} (this server speaks {PROTOCOL:?})"),
        ));
    }
    let op = match value.get("op") {
        None => "map",
        Some(v) => v
            .as_str()
            .ok_or_else(|| fail(&id, "\"op\" must be a string".into()))?,
    };
    if op != "map" {
        if let Some((key, _)) = members.iter().find(|(k, _)| MAP_KEYS.contains(&k.as_str())) {
            return Err(fail(
                &id,
                format!("key {key:?} is only valid for op \"map\", not {op:?}"),
            ));
        }
    }
    let op = match op {
        "map" => Op::Map(parse_map_request(&value, &id)?),
        "flush" => Op::Flush,
        "stats" => Op::Stats,
        "trace" => Op::Trace,
        "shutdown" => Op::Shutdown,
        other => {
            return Err(fail(
                &id,
                format!("unknown op {other:?} (expected map, flush, stats, trace or shutdown)"),
            ))
        }
    };
    Ok(Request { id, op })
}

fn parse_map_request(value: &Value, id: &str) -> Result<MapRequest, ProtoError> {
    let fail = |detail: String| ProtoError {
        id: id.to_owned(),
        detail,
    };
    let blif = value
        .get("blif")
        .ok_or_else(|| fail("op \"map\" requires a \"blif\" string".into()))?
        .as_str()
        .ok_or_else(|| fail("\"blif\" must be a string".into()))?
        .to_owned();
    let k = opt_u64(value, "k", id)?.map_or(4, |v| v as usize);
    let jobs = opt_u64(value, "jobs", id)?.map_or(0, |v| v as usize);
    let cache = match value.get("cache") {
        None => CacheMode::Shared,
        Some(v) => match v.as_str() {
            Some("off") => CacheMode::Off,
            Some("tree") => CacheMode::Tree,
            Some("shared") => CacheMode::Shared,
            _ => {
                return Err(fail(format!(
                    "\"cache\" must be \"off\", \"tree\" or \"shared\", found {}",
                    describe(v)
                )))
            }
        },
    };
    let objective = match value.get("objective") {
        None => Objective::Area,
        Some(v) => match v.as_str() {
            Some("area") => Objective::Area,
            Some("depth") => Objective::Depth,
            _ => {
                return Err(fail(format!(
                    "\"objective\" must be \"area\" or \"depth\", found {}",
                    describe(v)
                )))
            }
        },
    };
    let optimize = match value.get("optimize") {
        None => true,
        Some(Value::Bool(b)) => *b,
        Some(v) => {
            return Err(fail(format!(
                "\"optimize\" must be a boolean, found {}",
                v.kind()
            )))
        }
    };
    let deadline_ms = opt_u64(value, "deadline_ms", id)?;
    Ok(MapRequest {
        blif,
        k,
        jobs,
        cache,
        objective,
        optimize,
        deadline_ms,
    })
}

fn opt_u64(value: &Value, key: &str, id: &str) -> Result<Option<u64>, ProtoError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| ProtoError {
            id: id.to_owned(),
            detail: format!("{key:?} must be a non-negative integer, found {}", v.kind()),
        }),
    }
}

/// Renders an enum-valued field for error messages: the string content
/// when it is a string, the kind otherwise.
fn describe(v: &Value) -> String {
    match v.as_str() {
        Some(s) => format!("{s:?}"),
        None => v.kind().to_owned(),
    }
}

/// Renders a `map` request line (the client side of the protocol).
/// Every knob is spelled out explicitly — request lines are
/// self-describing rather than relying on server defaults.
pub fn render_map_request(id: &str, req: &MapRequest) -> String {
    let mut out = String::with_capacity(req.blif.len() + 160);
    out.push_str("{\"proto\":");
    write_string(&mut out, PROTOCOL);
    out.push_str(",\"id\":");
    write_string(&mut out, id);
    out.push_str(",\"op\":\"map\",\"blif\":");
    write_string(&mut out, &req.blif);
    let cache = match req.cache {
        CacheMode::Off => "off",
        CacheMode::Tree => "tree",
        CacheMode::Shared => "shared",
    };
    let objective = match req.objective {
        Objective::Area => "area",
        Objective::Depth => "depth",
    };
    out.push_str(&format!(
        ",\"k\":{},\"jobs\":{},\"cache\":\"{cache}\",\"objective\":\"{objective}\",\"optimize\":{}",
        req.k, req.jobs, req.optimize
    ));
    if let Some(ms) = req.deadline_ms {
        out.push_str(&format!(",\"deadline_ms\":{ms}"));
    }
    out.push('}');
    out
}

/// Renders an admin request line (`flush`, `stats`, `trace` or
/// `shutdown`).
pub fn render_admin_request(id: &str, op: &Op) -> String {
    let name = match op {
        Op::Flush => "flush",
        Op::Stats => "stats",
        Op::Trace => "trace",
        Op::Shutdown => "shutdown",
        Op::Map(_) => unreachable!("map requests use render_map_request"),
    };
    let mut out = String::new();
    out.push_str("{\"proto\":");
    write_string(&mut out, PROTOCOL);
    out.push_str(",\"id\":");
    write_string(&mut out, id);
    out.push_str(&format!(",\"op\":\"{name}\"}}"));
    out
}

fn response_header(out: &mut String, id: &str, status: &str) {
    out.push_str("{\"proto\":");
    write_string(out, PROTOCOL);
    out.push_str(",\"id\":");
    write_string(out, id);
    out.push_str(",\"status\":");
    write_string(out, status);
}

/// Renders the success response of a `map` request. `report_json` is the
/// embedded per-request telemetry report (already-serialized JSON,
/// spliced in verbatim). `run_ns` is the server-measured execution time
/// — the same number the server buckets into its `serve.run_ns`
/// histogram, so clients can reproduce the server's view exactly.
pub fn render_map_ok(
    id: &str,
    luts: usize,
    depth: usize,
    cache_generation: u64,
    run_ns: u64,
    netlist: &str,
    report_json: &str,
) -> String {
    let mut out = String::with_capacity(netlist.len() + report_json.len() + 144);
    response_header(&mut out, id, "ok");
    out.push_str(",\"op\":\"map\"");
    out.push_str(&format!(
        ",\"luts\":{luts},\"depth\":{depth},\"cache_generation\":{cache_generation},\"run_ns\":{run_ns}"
    ));
    out.push_str(",\"netlist\":");
    write_string(&mut out, netlist);
    out.push_str(",\"report\":");
    out.push_str(report_json);
    out.push('}');
    out
}

/// Renders the success response of a `flush` request.
pub fn render_flush_ok(id: &str, cache_generation: u64) -> String {
    let mut out = String::new();
    response_header(&mut out, id, "ok");
    out.push_str(&format!(
        ",\"op\":\"flush\",\"cache_generation\":{cache_generation}}}"
    ));
    out
}

/// Renders the success response of a `stats` request: uptime, the
/// current queue depth and its high-water mark, the cache generation,
/// and the aggregate server report (which carries the per-op request
/// counters and the `serve.queue_ns`/`serve.run_ns` latency
/// histograms).
pub fn render_stats_ok(
    id: &str,
    cache_generation: u64,
    uptime_s: u64,
    queue_depth: usize,
    queue_high_water: usize,
    report_json: &str,
) -> String {
    let mut out = String::with_capacity(report_json.len() + 144);
    response_header(&mut out, id, "ok");
    out.push_str(&format!(
        ",\"op\":\"stats\",\"cache_generation\":{cache_generation},\"uptime_s\":{uptime_s}\
         ,\"queue_depth\":{queue_depth},\"queue_high_water\":{queue_high_water},\"report\":"
    ));
    out.push_str(report_json);
    out.push('}');
    out
}

/// Renders the success response of a `trace` request: the configured
/// ring capacity and the remembered request traces, oldest first.
pub fn render_trace_ok(id: &str, capacity: usize, entries: &[RequestTrace]) -> String {
    let mut out = String::with_capacity(96 + entries.len() * 96);
    response_header(&mut out, id, "ok");
    out.push_str(&format!(
        ",\"op\":\"trace\",\"capacity\":{capacity},\"requests\":["
    ));
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        write_string(&mut out, &e.id);
        out.push_str(",\"outcome\":");
        write_string(&mut out, &e.outcome);
        out.push_str(&format!(
            ",\"queue_ns\":{},\"run_ns\":{},\"luts\":{},\"depth\":{}}}",
            e.queue_ns, e.run_ns, e.luts, e.depth
        ));
    }
    out.push_str("]}");
    out
}

/// Renders the success response of a `shutdown` request (sent before the
/// drain starts).
pub fn render_shutdown_ok(id: &str) -> String {
    let mut out = String::new();
    response_header(&mut out, id, "ok");
    out.push_str(",\"op\":\"shutdown\"}");
    out
}

/// Renders a typed rejection.
pub fn render_rejected(id: &str, reason: RejectReason, detail: &str) -> String {
    let mut out = String::new();
    response_header(&mut out, id, "rejected");
    out.push_str(",\"reason\":");
    write_string(&mut out, reason.as_str());
    out.push_str(",\"detail\":");
    write_string(&mut out, detail);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_line(extra: &str) -> String {
        format!(r#"{{"proto":"chortle-serve/v1","id":"r1","blif":".model m\n.end\n"{extra}}}"#)
    }

    #[test]
    fn parses_map_defaults() {
        let req = parse_request(&map_line("")).expect("parses");
        assert_eq!(req.id, "r1");
        let Op::Map(m) = req.op else {
            panic!("expected map")
        };
        assert_eq!(m.k, 4);
        // 0 = host parallelism, resolved by the mapper; identical
        // output either way, so the default can chase throughput.
        assert_eq!(m.jobs, 0);
        assert_eq!(m.cache, CacheMode::Shared);
        assert_eq!(m.objective, Objective::Area);
        assert!(m.optimize);
        assert_eq!(m.deadline_ms, None);
    }

    #[test]
    fn parses_every_map_knob() {
        let req = parse_request(&map_line(
            r#","k":5,"jobs":3,"cache":"off","objective":"depth","optimize":false,"deadline_ms":250"#,
        ))
        .expect("parses");
        let Op::Map(m) = req.op else {
            panic!("expected map")
        };
        assert_eq!(
            (m.k, m.jobs, m.cache, m.objective, m.optimize, m.deadline_ms),
            (5, 3, CacheMode::Off, Objective::Depth, false, Some(250))
        );
    }

    #[test]
    fn parses_admin_ops() {
        for (name, op) in [
            ("flush", Op::Flush),
            ("stats", Op::Stats),
            ("trace", Op::Trace),
            ("shutdown", Op::Shutdown),
        ] {
            let line = format!(r#"{{"proto":"chortle-serve/v1","op":"{name}"}}"#);
            let req = parse_request(&line).expect("parses");
            assert_eq!(req.op, op);
            assert_eq!(req.id, "");
        }
    }

    #[test]
    fn rejects_protocol_violations_with_recovered_id() {
        for (line, needle, id) in [
            ("not json", "invalid JSON", ""),
            ("[1,2]", "must be a JSON object", ""),
            (r#"{"id":"x","blif":""}"#, "missing \"proto\"", "x"),
            (
                r#"{"proto":"chortle-serve/v9","id":"x","blif":""}"#,
                "unsupported protocol",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","zap":1}"#,
                "unknown key",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","op":"fold"}"#,
                "unknown op",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x"}"#,
                "requires a \"blif\"",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","op":"flush","blif":""}"#,
                "only valid for op \"map\"",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","op":"stats","jobs":2}"#,
                "only valid for op \"map\"",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","op":"trace","deadline_ms":5}"#,
                "only valid for op \"map\"",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","blif":"","k":-1}"#,
                "non-negative integer",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","blif":"","cache":"ram"}"#,
                "\"cache\" must be",
                "x",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.detail.contains(needle), "{line}: {}", err.detail);
            assert_eq!(err.id, id, "{line}");
        }
    }

    #[test]
    fn rendered_requests_round_trip_through_the_parser() {
        let req = MapRequest {
            blif: ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n".into(),
            k: 5,
            jobs: 2,
            cache: CacheMode::Tree,
            objective: Objective::Depth,
            optimize: false,
            deadline_ms: Some(125),
        };
        let line = render_map_request("rt", &req);
        assert!(!line.contains('\n'));
        let parsed = parse_request(&line).expect("round trips");
        assert_eq!(parsed.id, "rt");
        assert_eq!(parsed.op, Op::Map(req));

        for op in [Op::Flush, Op::Stats, Op::Trace, Op::Shutdown] {
            let line = render_admin_request("a1", &op);
            let parsed = parse_request(&line).expect("round trips");
            assert_eq!((parsed.id.as_str(), parsed.op), ("a1", op));
        }
    }

    #[test]
    fn responses_are_one_line_and_reparse() {
        let ring = [RequestTrace {
            id: "m1".into(),
            outcome: "ok".into(),
            queue_ns: 1200,
            run_ns: 34000,
            luts: 5,
            depth: 2,
        }];
        let cases = [
            render_map_ok(
                "a",
                3,
                2,
                7,
                41_000,
                ".model mapped\n.end\n",
                "{\"schema\":\"x\"}",
            ),
            render_flush_ok("b", 8),
            render_stats_ok("", 0, 12, 1, 3, "{\"schema\":\"x\"}"),
            render_shutdown_ok("c"),
            render_rejected("d", RejectReason::QueueFull, "queue is full"),
            render_trace_ok("e", 128, &ring),
        ];
        for line in &cases {
            assert!(!line.contains('\n'), "{line}");
            let value = chortle_telemetry::json::parse(line).expect("reparses");
            assert_eq!(
                value.get("proto").and_then(Value::as_str),
                Some(PROTOCOL),
                "{line}"
            );
        }
        // Netlist newlines survive the JSON round trip.
        let map = chortle_telemetry::json::parse(&cases[0]).unwrap();
        assert_eq!(
            map.get("netlist").and_then(Value::as_str),
            Some(".model mapped\n.end\n")
        );
        assert_eq!(map.get("cache_generation").and_then(Value::as_u64), Some(7));
        assert_eq!(map.get("run_ns").and_then(Value::as_u64), Some(41_000));
        let stats = chortle_telemetry::json::parse(&cases[2]).unwrap();
        assert_eq!(stats.get("uptime_s").and_then(Value::as_u64), Some(12));
        assert_eq!(stats.get("queue_depth").and_then(Value::as_u64), Some(1));
        assert_eq!(
            stats.get("queue_high_water").and_then(Value::as_u64),
            Some(3)
        );
        let rej = chortle_telemetry::json::parse(&cases[4]).unwrap();
        assert_eq!(
            rej.get("reason").and_then(Value::as_str),
            Some("queue_full")
        );
        let trace = chortle_telemetry::json::parse(&cases[5]).unwrap();
        assert_eq!(trace.get("capacity").and_then(Value::as_u64), Some(128));
        let reqs = trace.get("requests").and_then(Value::as_array).unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].get("outcome").and_then(Value::as_str), Some("ok"));
        assert_eq!(reqs[0].get("queue_ns").and_then(Value::as_u64), Some(1200));
    }
}
