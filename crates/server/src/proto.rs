//! The `chortle-serve` wire protocol, versions 1 and 2.
//!
//! One request per line, one response per line, both JSON objects —
//! newline-delimited so clients can speak it with a buffered reader and
//! no framing layer. Parsing reuses the hand-rolled RFC 8259 parser of
//! `chortle_telemetry::json`; serialization is hand-written in the same
//! style (`write_string` for escaping), so the whole protocol stays
//! std-only.
//!
//! ## Versioning
//!
//! Every frame carries a `proto` tag. The server accepts both
//! `chortle-serve/v1` and `chortle-serve/v2` on the same connection,
//! decides per frame, and always answers in the shape of the version
//! the request spoke — a v1 client sees exactly the v1 responses it
//! always saw, byte for byte. A client can discover what the server
//! speaks with the v2 `op: "hello"` handshake instead of guessing.
//!
//! ## v1 grammar (unchanged; see DESIGN.md §12)
//!
//! Request keys: `proto` (required), `id` (optional string, echoed
//! verbatim), `op` (`"map"` default, `"flush"`, `"stats"`, `"trace"`,
//! `"shutdown"`); for `op: "map"` also `blif` (required), `k` (default
//! 4), `jobs` (default 0 = host parallelism), `cache`
//! (`"shared"`/`"tree"`/`"off"`/`"fn"`), `objective` (`"area"`/`"depth"`),
//! `optimize` (default true) and `deadline_ms`. Unknown keys, unknown
//! enum values, and admin requests carrying map-only keys are rejected
//! — a versioned protocol fails loudly instead of guessing.
//!
//! ## v2 additions (see DESIGN.md §15)
//!
//! - `op: "hello"` — version negotiation: the response lists the
//!   protocol versions the server accepts plus its admission limits
//!   (`quota`, `queue`, `batch_limit`).
//! - `op: "map_batch"` — many netlists in one frame: a `requests`
//!   array of per-netlist objects (same knobs as a v1 `map`, plus
//!   `priority`); the response is a single frame with a `results`
//!   array in request order, so parse/serialize cost is amortized per
//!   frame instead of per request.
//! - `op: "map_design"` — map a *sequential design* (DESIGN.md §17):
//!   the inline BLIF may carry `.latch` lines and `.subckt` hierarchy;
//!   the server flattens it, cuts it at register boundaries, maps every
//!   combinational cloud, and answers with the assembled sequential LUT
//!   netlist. Same knobs and response shape as `map` (the response
//!   echoes `op: "map_design"`).
//! - `priority` (0 = default .. 9 = most urgent) on `map`, on
//!   `map_batch` frames (a default for their entries), and on batch
//!   entries.
//! - Structured rejections: v2 `status: "rejected"` frames caused by
//!   load-shedding additionally carry `retry_after_ms` (when the
//!   client should retry) and `client_queue_depth` (how much of its
//!   quota the client was using), so overload is a *hint*, not a
//!   dead-end.
//! - `trace_id` (optional) on `map`/`map_design` frames, on
//!   `map_batch` frames (a default for their entries), and on batch
//!   entries: an opaque client-chosen correlation string the server
//!   echoes in the success payload, stamps into its `op: "trace"`
//!   ring entries, and attaches to the request's structured log
//!   events — one id joins the wire, the ring, and the log stream.
//!   Never rendered when empty, so pre-trace_id frames stay
//!   byte-identical.
//! - `op: "metrics"`: the sliding-window metrics snapshot — windowed
//!   qps, shed rate, cache hit rates, and latency quantiles over the
//!   last N seconds, next to their cumulative counterparts (see
//!   DESIGN.md §18).

use chortle::{CacheMode, Objective, WarmStats};
use chortle_telemetry::json::{self, write_string, Value};

/// The version-1 protocol tag.
pub const PROTOCOL_V1: &str = "chortle-serve/v1";
/// The version-2 protocol tag.
pub const PROTOCOL_V2: &str = "chortle-serve/v2";
/// Every protocol version this build accepts, oldest first.
pub const PROTOCOLS: &[&str] = &[PROTOCOL_V1, PROTOCOL_V2];

/// The highest request priority (`priority` is `0..=MAX_PRIORITY`).
pub const MAX_PRIORITY: u8 = 9;

/// Which protocol version a frame spoke. Responses always mirror the
/// request's version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolVersion {
    /// `chortle-serve/v1`: single-request frames only.
    V1,
    /// `chortle-serve/v2`: hello, batching, priorities, shed hints.
    V2,
}

impl ProtocolVersion {
    /// The wire spelling of the version tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ProtocolVersion::V1 => PROTOCOL_V1,
            ProtocolVersion::V2 => PROTOCOL_V2,
        }
    }
}

/// A parsed request: the echoed `id`, the version it spoke, and the
/// operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response
    /// (empty when absent).
    pub id: String,
    /// Which protocol version the frame spoke (responses mirror it).
    pub version: ProtocolVersion,
    /// The requested operation.
    pub op: Op,
}

/// The operations of the protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Version negotiation (v2): list the versions and limits.
    Hello,
    /// Map one inline BLIF network into K-input LUTs.
    Map(MapRequest),
    /// Map many netlists in one frame (v2).
    MapBatch(BatchRequest),
    /// Discard the warm cross-request DP cache and bump its generation.
    Flush,
    /// Return the aggregate server telemetry report so far.
    Stats,
    /// Return the sliding-window metrics snapshot (v2).
    Metrics,
    /// Return the ring buffer of recently completed request traces.
    Trace,
    /// Stop accepting work, drain in-flight requests, exit.
    Shutdown,
}

/// One completed request as remembered by the server's bounded trace
/// ring — the payload of an `op: "trace"` response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestTrace {
    /// The request's correlation id, echoed as the client sent it.
    pub id: String,
    /// How the request ended: `"ok"` or a [`RejectReason`] spelling.
    pub outcome: String,
    /// Nanoseconds spent queued between admission and a worker
    /// picking the job up.
    pub queue_ns: u64,
    /// Nanoseconds the worker spent executing the request.
    pub run_ns: u64,
    /// Mapped LUT count (0 for rejected or admin outcomes).
    pub luts: usize,
    /// Mapped circuit depth (0 for rejected or admin outcomes).
    pub depth: usize,
    /// The client's `trace_id`, echoed for cross-surface correlation
    /// (empty when the request carried none; elided on the wire then).
    pub trace_id: String,
}

/// The payload of a `map` request (also one entry of a `map_batch`).
#[derive(Clone, Debug, PartialEq)]
pub struct MapRequest {
    /// The network to map, as inline BLIF text.
    pub blif: String,
    /// LUT input count (the mapper validates the 2..=8 range).
    pub k: usize,
    /// Mapper worker threads (0 = host parallelism). Identical output
    /// for every value — parallelism is a latency knob only.
    pub jobs: usize,
    /// DP memoization mode; `Shared` (the default) additionally taps the
    /// server's warm cross-request cache.
    pub cache: CacheMode,
    /// Mapping objective.
    pub objective: Objective,
    /// Run the MIS-style optimization script before mapping (default
    /// true — matching the offline CLI's default flow).
    pub optimize: bool,
    /// Per-request deadline in milliseconds from admission. `None` means
    /// unbounded.
    pub deadline_ms: Option<u64>,
    /// Dispatch priority, `0` (default) to [`MAX_PRIORITY`] (most
    /// urgent). v2 only on the wire; v1 frames always parse as 0.
    pub priority: u8,
    /// Treat `blif` as a sequential design and run the cloud-cutting
    /// pipeline (`op: "map_design"`, v2 only — never a JSON key; the
    /// op name carries it). Batch entries are always plain maps.
    pub design: bool,
    /// Opaque correlation id echoed across the response payload, the
    /// server's `op: "trace"` ring, and its structured log events.
    /// Empty means absent — never rendered then. v2 only on the wire;
    /// v1 frames always parse as empty.
    pub trace_id: String,
}

impl Default for MapRequest {
    fn default() -> Self {
        MapRequest {
            blif: String::new(),
            k: 4,
            jobs: 0,
            cache: CacheMode::Shared,
            objective: Objective::Area,
            optimize: true,
            deadline_ms: None,
            priority: 0,
            design: false,
            trace_id: String::new(),
        }
    }
}

/// The payload of a v2 `map_batch` request.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchRequest {
    /// The netlists to map, answered in this order in one frame.
    pub requests: Vec<MapRequest>,
}

/// Typed rejection reasons — the `reason` field of a
/// `status: "rejected"` response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The global admission queue was at capacity; retry later (v2
    /// rejections carry a `retry_after_ms` hint).
    QueueFull,
    /// The connection already had its full per-client quota of requests
    /// queued or in flight (v2 only; v1 responses spell this
    /// `queue_full` because v1 predates per-client admission).
    OverQuota,
    /// The request's `deadline_ms` expired before mapping finished
    /// (partial work discarded).
    DeadlineExceeded,
    /// The request was malformed: bad JSON, bad protocol fields, or
    /// BLIF that does not parse.
    BadRequest,
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
    /// The mapper failed internally (never expected; the detail says
    /// how).
    Internal,
}

impl RejectReason {
    /// The wire spelling of the reason.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::OverQuota => "over_quota",
            RejectReason::DeadlineExceeded => "deadline_exceeded",
            RejectReason::BadRequest => "bad_request",
            RejectReason::ShuttingDown => "shutting_down",
            RejectReason::Internal => "internal",
        }
    }
}

/// The load-shedding hint attached to v2 admission rejections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShedHint {
    /// When the client should retry, in milliseconds — derived from the
    /// current backlog and the server's moving average service time.
    pub retry_after_ms: u64,
    /// How many of the client's own requests were queued or in flight
    /// when the shed happened.
    pub client_queue_depth: usize,
}

/// The mapped-request payload every successful `map` response (and
/// every successful `map_batch` entry) carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapPayload {
    /// LUTs in the mapped circuit.
    pub luts: usize,
    /// LUT levels on the longest path.
    pub depth: usize,
    /// Warm-cache generation that served the request.
    pub cache_generation: u64,
    /// Server-measured execution time in nanoseconds — the exact value
    /// the server buckets into its `serve.run_ns` histogram.
    pub run_ns: u64,
    /// The mapped netlist (BLIF, model `mapped`), byte-identical to the
    /// offline CLI's stdout for the same request parameters.
    pub netlist: String,
    /// The embedded per-request telemetry report (serialized JSON).
    pub report_json: String,
    /// The request's `trace_id`, echoed verbatim (empty when the
    /// request carried none; elided on the wire then).
    pub trace_id: String,
}

/// One entry of a `map_batch` response, in request order.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchItem {
    /// This netlist mapped successfully.
    Mapped(MapPayload),
    /// This netlist was rejected (shed at admission, deadline, …).
    Rejected {
        /// The typed reason.
        reason: RejectReason,
        /// Human-readable detail.
        detail: String,
        /// The shed hint, when admission (not the request itself) was
        /// the cause.
        hint: Option<ShedHint>,
    },
}

/// The server limits a `hello` response advertises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerLimits {
    /// Per-client quota of queued + in-flight requests.
    pub quota: usize,
    /// Global admission queue capacity.
    pub queue_depth: usize,
    /// Maximum netlists per `map_batch` frame.
    pub batch_limit: usize,
}

/// A protocol-level parse failure: the rejection detail plus whatever
/// `id` and version could still be recovered for the response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// Best-effort recovered correlation id (empty if the line was not
    /// even JSON).
    pub id: String,
    /// Best-effort recovered protocol version (defaults to v1 so error
    /// responses are parseable by the oldest clients).
    pub version: ProtocolVersion,
    /// Human-readable description of the first deviation.
    pub detail: String,
}

/// Keys valid on every v1 frame; anything else is rejected.
const V1_KEYS: &[&str] = &[
    "proto",
    "id",
    "op",
    "blif",
    "k",
    "jobs",
    "cache",
    "objective",
    "optimize",
    "deadline_ms",
];

/// Keys valid on every v2 frame: the v1 set plus batching/priority.
const V2_KEYS: &[&str] = &[
    "proto",
    "id",
    "op",
    "blif",
    "k",
    "jobs",
    "cache",
    "objective",
    "optimize",
    "deadline_ms",
    "priority",
    "requests",
    "trace_id",
];

/// Keys that only make sense on `op: "map"` (v1 and v2).
const MAP_KEYS: &[&str] = &[
    "blif",
    "k",
    "jobs",
    "cache",
    "objective",
    "optimize",
    "deadline_ms",
];

/// Parses one request line, accepting both protocol versions.
///
/// # Errors
///
/// Returns a [`ProtoError`] (maps to `rejected: bad_request`) on
/// malformed JSON, a wrong or missing protocol tag, unknown keys or
/// ops, wrong value kinds, or admin ops carrying map-only keys.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let fail = |id: &str, version: ProtocolVersion, detail: String| ProtoError {
        id: id.to_owned(),
        version,
        detail,
    };
    use ProtocolVersion::{V1, V2};
    let value = json::parse(line).map_err(|e| fail("", V1, format!("invalid JSON: {e}")))?;
    let members = value
        .as_object()
        .ok_or_else(|| fail("", V1, "request must be a JSON object".into()))?;
    // Recover the id first so even rejections correlate.
    let id = match value.get("id") {
        None => String::new(),
        Some(v) => v
            .as_str()
            .ok_or_else(|| fail("", V1, "\"id\" must be a string".into()))?
            .to_owned(),
    };
    let proto = value
        .get("proto")
        .ok_or_else(|| {
            fail(
                &id,
                V1,
                format!("missing \"proto\" (expected one of {PROTOCOLS:?})"),
            )
        })?
        .as_str()
        .ok_or_else(|| fail(&id, V1, "\"proto\" must be a string".into()))?;
    let version = match proto {
        PROTOCOL_V1 => V1,
        PROTOCOL_V2 => V2,
        other => {
            return Err(fail(
                &id,
                V1,
                format!("unsupported protocol {other:?} (this server speaks {PROTOCOLS:?})"),
            ))
        }
    };
    let known: &[&str] = match version {
        V1 => V1_KEYS,
        V2 => V2_KEYS,
    };
    for (key, _) in members {
        if !known.contains(&key.as_str()) {
            return Err(fail(&id, version, format!("unknown key {key:?}")));
        }
    }
    let op = match value.get("op") {
        None => "map",
        Some(v) => v
            .as_str()
            .ok_or_else(|| fail(&id, version, "\"op\" must be a string".into()))?,
    };
    if !matches!(op, "map" | "map_design") {
        if let Some((key, _)) = members.iter().find(|(k, _)| MAP_KEYS.contains(&k.as_str())) {
            return Err(fail(
                &id,
                version,
                format!("key {key:?} is only valid for op \"map\", not {op:?}"),
            ));
        }
    }
    if op != "map_batch" && members.iter().any(|(k, _)| k == "requests") {
        return Err(fail(
            &id,
            version,
            format!("key \"requests\" is only valid for op \"map_batch\", not {op:?}"),
        ));
    }
    if !matches!(op, "map" | "map_design" | "map_batch")
        && members.iter().any(|(k, _)| k == "priority")
    {
        return Err(fail(
            &id,
            version,
            format!("key \"priority\" is only valid for op \"map\" or \"map_batch\", not {op:?}"),
        ));
    }
    if !matches!(op, "map" | "map_design" | "map_batch")
        && members.iter().any(|(k, _)| k == "trace_id")
    {
        return Err(fail(
            &id,
            version,
            format!("key \"trace_id\" is only valid for op \"map\" or \"map_batch\", not {op:?}"),
        ));
    }
    if version == V1 && matches!(op, "hello" | "map_batch" | "map_design" | "metrics") {
        return Err(fail(
            &id,
            version,
            format!("op {op:?} requires {PROTOCOL_V2:?} (this frame spoke {PROTOCOL_V1:?})"),
        ));
    }
    let op = match op {
        "map" => Op::Map(parse_map_fields(&value, &id, version)?),
        "map_design" => {
            let mut req = parse_map_fields(&value, &id, version)?;
            req.design = true;
            Op::Map(req)
        }
        "map_batch" => Op::MapBatch(parse_batch(&value, &id)?),
        "hello" => Op::Hello,
        "flush" => Op::Flush,
        "stats" => Op::Stats,
        "metrics" => Op::Metrics,
        "trace" => Op::Trace,
        "shutdown" => Op::Shutdown,
        other => {
            let expected = match version {
                V1 => "map, flush, stats, trace or shutdown",
                V2 => "hello, map, map_batch, map_design, flush, stats, metrics, trace or shutdown",
            };
            return Err(fail(
                &id,
                version,
                format!("unknown op {other:?} (expected {expected})"),
            ));
        }
    };
    Ok(Request { id, version, op })
}

/// Parses the map knobs out of `value` — a top-level `map` frame or one
/// entry of a v2 `requests` array (the grammar is identical).
fn parse_map_fields(
    value: &Value,
    id: &str,
    version: ProtocolVersion,
) -> Result<MapRequest, ProtoError> {
    let fail = |detail: String| ProtoError {
        id: id.to_owned(),
        version,
        detail,
    };
    let blif = value
        .get("blif")
        .ok_or_else(|| fail("op \"map\" requires a \"blif\" string".into()))?
        .as_str()
        .ok_or_else(|| fail("\"blif\" must be a string".into()))?
        .to_owned();
    let k = opt_u64(value, "k", id, version)?.map_or(4, |v| v as usize);
    let jobs = opt_u64(value, "jobs", id, version)?.map_or(0, |v| v as usize);
    let cache = match value.get("cache") {
        None => CacheMode::Shared,
        Some(v) => match v.as_str() {
            Some("off") => CacheMode::Off,
            Some("tree") => CacheMode::Tree,
            Some("shared") => CacheMode::Shared,
            Some("fn") => CacheMode::Fn,
            _ => {
                return Err(fail(format!(
                    "\"cache\" must be \"off\", \"tree\", \"shared\" or \"fn\", found {}",
                    describe(v)
                )))
            }
        },
    };
    let objective = match value.get("objective") {
        None => Objective::Area,
        Some(v) => match v.as_str() {
            Some("area") => Objective::Area,
            Some("depth") => Objective::Depth,
            _ => {
                return Err(fail(format!(
                    "\"objective\" must be \"area\" or \"depth\", found {}",
                    describe(v)
                )))
            }
        },
    };
    let optimize = match value.get("optimize") {
        None => true,
        Some(Value::Bool(b)) => *b,
        Some(v) => {
            return Err(fail(format!(
                "\"optimize\" must be a boolean, found {}",
                v.kind()
            )))
        }
    };
    let deadline_ms = opt_u64(value, "deadline_ms", id, version)?;
    let priority = parse_priority(value, id, version)?.unwrap_or(0);
    let trace_id = parse_trace_id(value, id, version)?.unwrap_or_default();
    Ok(MapRequest {
        blif,
        k,
        jobs,
        cache,
        objective,
        optimize,
        deadline_ms,
        priority,
        design: false,
        trace_id,
    })
}

fn parse_trace_id(
    value: &Value,
    id: &str,
    version: ProtocolVersion,
) -> Result<Option<String>, ProtoError> {
    match value.get("trace_id") {
        None => Ok(None),
        Some(v) => match v.as_str() {
            Some(s) => Ok(Some(s.to_owned())),
            None => Err(ProtoError {
                id: id.to_owned(),
                version,
                detail: format!("\"trace_id\" must be a string, found {}", v.kind()),
            }),
        },
    }
}

/// Parses a v2 `map_batch` frame: a non-empty `requests` array whose
/// entries use the map-request grammar (minus `proto`/`id`/`op`), with
/// the frame-level `priority` as each entry's default.
fn parse_batch(value: &Value, id: &str) -> Result<BatchRequest, ProtoError> {
    let version = ProtocolVersion::V2;
    let fail = |detail: String| ProtoError {
        id: id.to_owned(),
        version,
        detail,
    };
    let frame_priority = parse_priority(value, id, version)?;
    let frame_trace_id = parse_trace_id(value, id, version)?;
    let entries = value
        .get("requests")
        .ok_or_else(|| fail("op \"map_batch\" requires a \"requests\" array".into()))?
        .as_array()
        .ok_or_else(|| fail("\"requests\" must be an array".into()))?;
    if entries.is_empty() {
        return Err(fail("\"requests\" must not be empty".into()));
    }
    let mut requests = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let members = entry
            .as_object()
            .ok_or_else(|| fail(format!("requests[{i}] must be an object")))?;
        for (key, _) in members {
            if !MAP_KEYS.contains(&key.as_str()) && key != "priority" && key != "trace_id" {
                return Err(fail(format!("requests[{i}] has unknown key {key:?}")));
            }
        }
        let mut req = parse_map_fields(entry, id, version)
            .map_err(|e| fail(format!("requests[{i}]: {}", e.detail)))?;
        if entry.get("priority").is_none() {
            req.priority = frame_priority.unwrap_or(0);
        }
        if entry.get("trace_id").is_none() {
            req.trace_id = frame_trace_id.clone().unwrap_or_default();
        }
        requests.push(req);
    }
    Ok(BatchRequest { requests })
}

fn parse_priority(
    value: &Value,
    id: &str,
    version: ProtocolVersion,
) -> Result<Option<u8>, ProtoError> {
    match opt_u64(value, "priority", id, version)? {
        None => Ok(None),
        Some(p) if p <= u64::from(MAX_PRIORITY) => Ok(Some(p as u8)),
        Some(p) => Err(ProtoError {
            id: id.to_owned(),
            version,
            detail: format!("\"priority\" must be 0..={MAX_PRIORITY}, found {p}"),
        }),
    }
}

fn opt_u64(
    value: &Value,
    key: &str,
    id: &str,
    version: ProtocolVersion,
) -> Result<Option<u64>, ProtoError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| ProtoError {
            id: id.to_owned(),
            version,
            detail: format!("{key:?} must be a non-negative integer, found {}", v.kind()),
        }),
    }
}

/// Renders an enum-valued field for error messages: the string content
/// when it is a string, the kind otherwise.
fn describe(v: &Value) -> String {
    match v.as_str() {
        Some(s) => format!("{s:?}"),
        None => v.kind().to_owned(),
    }
}

fn request_header(out: &mut String, version: ProtocolVersion, id: &str) {
    out.push_str("{\"proto\":");
    write_string(out, version.as_str());
    out.push_str(",\"id\":");
    write_string(out, id);
}

/// Writes the map knobs of `req` (everything but `blif`) — shared by
/// single-request frames and batch entries. Every knob is spelled out
/// explicitly, so request lines are self-describing rather than relying
/// on server defaults. `priority` is a v2-only key.
fn write_map_knobs(out: &mut String, req: &MapRequest, version: ProtocolVersion) {
    use std::fmt::Write as _;
    let cache = match req.cache {
        CacheMode::Off => "off",
        CacheMode::Tree => "tree",
        CacheMode::Shared => "shared",
        CacheMode::Fn => "fn",
    };
    let objective = match req.objective {
        Objective::Area => "area",
        Objective::Depth => "depth",
    };
    let _ = write!(
        out,
        ",\"k\":{},\"jobs\":{},\"cache\":\"{cache}\",\"objective\":\"{objective}\",\"optimize\":{}",
        req.k, req.jobs, req.optimize
    );
    if let Some(ms) = req.deadline_ms {
        let _ = write!(out, ",\"deadline_ms\":{ms}");
    }
    if version == ProtocolVersion::V2 {
        let _ = write!(out, ",\"priority\":{}", req.priority);
        if !req.trace_id.is_empty() {
            out.push_str(",\"trace_id\":");
            write_string(out, &req.trace_id);
        }
    }
}

/// Renders a `map` request line (the client side of the protocol).
/// A request with `design: true` renders as `op: "map_design"` — a
/// v2-only op; sent over v1 the server answers with a typed rejection.
pub fn render_map_request(version: ProtocolVersion, id: &str, req: &MapRequest) -> String {
    let mut out = String::with_capacity(req.blif.len() + 176);
    request_header(&mut out, version, id);
    if req.design {
        out.push_str(",\"op\":\"map_design\",\"blif\":");
    } else {
        out.push_str(",\"op\":\"map\",\"blif\":");
    }
    write_string(&mut out, &req.blif);
    write_map_knobs(&mut out, req, version);
    out.push('}');
    out
}

/// Renders a v2 `map_batch` request line: every entry spelled out with
/// its own knobs (including its priority), in answer order.
pub fn render_batch_request(id: &str, requests: &[MapRequest]) -> String {
    let blif_len: usize = requests.iter().map(|r| r.blif.len() + 128).sum();
    let mut out = String::with_capacity(blif_len + 96);
    request_header(&mut out, ProtocolVersion::V2, id);
    out.push_str(",\"op\":\"map_batch\",\"requests\":[");
    for (i, req) in requests.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"blif\":");
        write_string(&mut out, &req.blif);
        write_map_knobs(&mut out, req, ProtocolVersion::V2);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders an admin request line (`hello`, `flush`, `stats`, `trace` or
/// `shutdown`). `hello` requires v2.
pub fn render_admin_request(version: ProtocolVersion, id: &str, op: &Op) -> String {
    let name = match op {
        Op::Hello => "hello",
        Op::Flush => "flush",
        Op::Stats => "stats",
        Op::Metrics => "metrics",
        Op::Trace => "trace",
        Op::Shutdown => "shutdown",
        Op::Map(_) | Op::MapBatch(_) => {
            unreachable!("map requests use render_map_request / render_batch_request")
        }
    };
    let mut out = String::new();
    request_header(&mut out, version, id);
    out.push_str(&format!(",\"op\":\"{name}\"}}"));
    out
}

fn response_header(out: &mut String, version: ProtocolVersion, id: &str, status: &str) {
    out.push_str("{\"proto\":");
    write_string(out, version.as_str());
    out.push_str(",\"id\":");
    write_string(out, id);
    out.push_str(",\"status\":");
    write_string(out, status);
}

/// Writes the body of one successful map payload (everything after
/// `"op":…` / inside a batch entry).
fn write_map_payload(out: &mut String, payload: &MapPayload) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "\"luts\":{},\"depth\":{},\"cache_generation\":{},\"run_ns\":{}",
        payload.luts, payload.depth, payload.cache_generation, payload.run_ns
    );
    if !payload.trace_id.is_empty() {
        out.push_str(",\"trace_id\":");
        write_string(out, &payload.trace_id);
    }
    out.push_str(",\"netlist\":");
    write_string(out, &payload.netlist);
    out.push_str(",\"report\":");
    out.push_str(&payload.report_json);
}

/// Renders the success response of a `map` request, in the shape of the
/// version the request spoke.
pub fn render_map_ok(version: ProtocolVersion, id: &str, payload: &MapPayload) -> String {
    let mut out = String::with_capacity(payload.netlist.len() + payload.report_json.len() + 144);
    response_header(&mut out, version, id, "ok");
    out.push_str(",\"op\":\"map\",");
    write_map_payload(&mut out, payload);
    out.push('}');
    out
}

/// Renders the success response of a v2 `map_design` request — the map
/// payload shape with the op echoed as `map_design`; `netlist` carries
/// the assembled sequential LUT BLIF instead of a combinational one.
pub fn render_map_design_ok(id: &str, payload: &MapPayload) -> String {
    let mut out = String::with_capacity(payload.netlist.len() + payload.report_json.len() + 152);
    response_header(&mut out, ProtocolVersion::V2, id, "ok");
    out.push_str(",\"op\":\"map_design\",");
    write_map_payload(&mut out, payload);
    out.push('}');
    out
}

/// Renders the single-frame response of a v2 `map_batch` request:
/// `results` in request order, each entry either a map payload or a
/// structured rejection.
pub fn render_batch_ok(id: &str, results: &[BatchItem]) -> String {
    let body: usize = results
        .iter()
        .map(|r| match r {
            BatchItem::Mapped(p) => p.netlist.len() + p.report_json.len() + 128,
            BatchItem::Rejected { detail, .. } => detail.len() + 96,
        })
        .sum();
    let mut out = String::with_capacity(body + 96);
    response_header(&mut out, ProtocolVersion::V2, id, "ok");
    out.push_str(",\"op\":\"map_batch\",\"results\":[");
    for (i, item) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match item {
            BatchItem::Mapped(payload) => {
                out.push_str("{\"status\":\"ok\",");
                write_map_payload(&mut out, payload);
                out.push('}');
            }
            BatchItem::Rejected {
                reason,
                detail,
                hint,
            } => {
                out.push_str("{\"status\":\"rejected\",\"reason\":");
                write_string(&mut out, reason.as_str());
                out.push_str(",\"detail\":");
                write_string(&mut out, detail);
                write_hint(&mut out, hint.as_ref());
                out.push('}');
            }
        }
    }
    out.push_str("]}");
    out
}

/// Renders the success response of a v2 `hello` request: the accepted
/// protocol versions (oldest first) and the server's admission limits.
pub fn render_hello_ok(id: &str, limits: &ServerLimits) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    response_header(&mut out, ProtocolVersion::V2, id, "ok");
    out.push_str(",\"op\":\"hello\",\"versions\":[");
    for (i, proto) in PROTOCOLS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(&mut out, proto);
    }
    let _ = write!(
        out,
        "],\"quota\":{},\"queue\":{},\"batch_limit\":{}}}",
        limits.quota, limits.queue_depth, limits.batch_limit
    );
    out
}

/// Renders the success response of a `flush` request.
pub fn render_flush_ok(version: ProtocolVersion, id: &str, cache_generation: u64) -> String {
    let mut out = String::new();
    response_header(&mut out, version, id, "ok");
    out.push_str(&format!(
        ",\"op\":\"flush\",\"cache_generation\":{cache_generation}}}"
    ));
    out
}

/// The live gauge values a `stats` response carries alongside the
/// warm-cache tallies and the aggregate report.
#[derive(Clone, Copy, Debug, Default)]
pub struct StatsGauges {
    /// Current shared-cache generation (bumped by `op:"flush"`).
    pub cache_generation: u64,
    /// Whole seconds since the daemon started serving.
    pub uptime_s: u64,
    /// Requests queued (admitted, not yet running) right now.
    pub queue_depth: usize,
    /// Highest queue depth observed since startup.
    pub queue_high_water: usize,
    /// Completed-request traces evicted from the bounded `op:"trace"`
    /// ring since startup (v2 responses only; the v1 stats shape is
    /// frozen).
    pub trace_dropped: u64,
}

/// Renders the success response of a `stats` request: the live gauges
/// (uptime, queue depth and its high-water mark, cache generation),
/// the per-tier warm-cache tallies (`cache`: entry counts plus lookup
/// hits/misses for the structural and functional tiers — hit rates are
/// the obvious ratios, computed client-side via
/// [`chortle::WarmStats::hit_rate`] and
/// [`chortle::WarmStats::fn_hit_rate`]), and the aggregate server
/// report (which carries the per-op request counters and the
/// `serve.queue_ns`/`serve.run_ns` latency histograms).
pub fn render_stats_ok(
    version: ProtocolVersion,
    id: &str,
    gauges: &StatsGauges,
    warm: &WarmStats,
    report_json: &str,
) -> String {
    let StatsGauges {
        cache_generation,
        uptime_s,
        queue_depth,
        queue_high_water,
        trace_dropped,
    } = *gauges;
    let mut out = String::with_capacity(report_json.len() + 240);
    response_header(&mut out, version, id, "ok");
    out.push_str(&format!(
        ",\"op\":\"stats\",\"cache_generation\":{cache_generation},\"uptime_s\":{uptime_s}\
         ,\"queue_depth\":{queue_depth},\"queue_high_water\":{queue_high_water}",
    ));
    // v2 surfaces the trace-ring drop count; the v1 stats shape is
    // byte-frozen and never grows keys.
    if version == ProtocolVersion::V2 {
        out.push_str(&format!(",\"trace_dropped\":{trace_dropped}"));
    }
    out.push_str(&format!(
        ",\"cache\":{{\"shapes\":{},\"fn_entries\":{},\"hits\":{},\"misses\":{}\
         ,\"fn_hits\":{},\"fn_misses\":{}}},\"report\":",
        warm.shapes, warm.fn_entries, warm.hits, warm.misses, warm.fn_hits, warm.fn_misses
    ));
    out.push_str(report_json);
    out.push('}');
    out
}

/// The sliding-window metrics snapshot a v2 `op: "metrics"` response
/// carries — rates and latency quantiles over the last
/// [`window_s`](MetricsSnapshot::window_s) seconds, next to the
/// cumulative totals they roll up from, so a consumer can check the
/// window arithmetic against `op: "stats"`. The body is the schema
/// v1.7 *windowed-metrics fragment*
/// ([`chortle_telemetry::schema::validate_metrics_fragment`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Window length the aggregator retains, in seconds.
    pub window_s: u64,
    /// Seconds of data actually inside the window (≤ `window_s`;
    /// smaller right after startup).
    pub seconds: u64,
    /// Completed requests per second over the window.
    pub qps: f64,
    /// Shed admissions over total admission attempts in the window
    /// (`0..=1`).
    pub shed_rate: f64,
    /// Structural-tier warm-cache hit rate over the window (`0..=1`).
    pub cache_hit_rate: f64,
    /// Functional-tier warm-cache hit rate over the window (`0..=1`).
    pub fn_cache_hit_rate: f64,
    /// Median request execution time in the window, nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile execution time in the window, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile execution time in the window, nanoseconds.
    pub p99_ns: u64,
    /// Requests admitted inside the window.
    pub window_accepted: u64,
    /// Requests completed inside the window.
    pub window_completed: u64,
    /// Requests shed at admission inside the window.
    pub window_shed: u64,
    /// Requests admitted since startup.
    pub cumulative_accepted: u64,
    /// Requests completed since startup.
    pub cumulative_completed: u64,
    /// Requests shed at admission since startup.
    pub cumulative_shed: u64,
}

/// Renders the success response of a v2 `metrics` request: the
/// windowed-metrics fragment of [`MetricsSnapshot`], verbatim.
pub fn render_metrics_ok(id: &str, m: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(320);
    response_header(&mut out, ProtocolVersion::V2, id, "ok");
    let _ = write!(
        out,
        ",\"op\":\"metrics\",\"window_s\":{},\"seconds\":{}",
        m.window_s, m.seconds
    );
    for (key, value) in [
        ("qps", m.qps),
        ("shed_rate", m.shed_rate),
        ("cache_hit_rate", m.cache_hit_rate),
        ("fn_cache_hit_rate", m.fn_cache_hit_rate),
    ] {
        let _ = write!(out, ",\"{key}\":");
        json::write_f64(&mut out, value);
    }
    let _ = write!(
        out,
        ",\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}\
         ,\"window\":{{\"accepted\":{},\"completed\":{},\"shed\":{}}}\
         ,\"cumulative\":{{\"accepted\":{},\"completed\":{},\"shed\":{}}}}}",
        m.p50_ns,
        m.p95_ns,
        m.p99_ns,
        m.window_accepted,
        m.window_completed,
        m.window_shed,
        m.cumulative_accepted,
        m.cumulative_completed,
        m.cumulative_shed
    );
    out
}

/// Renders the success response of a `trace` request: the configured
/// ring capacity and the remembered request traces, oldest first.
pub fn render_trace_ok(
    version: ProtocolVersion,
    id: &str,
    capacity: usize,
    entries: &[RequestTrace],
) -> String {
    let mut out = String::with_capacity(96 + entries.len() * 96);
    response_header(&mut out, version, id, "ok");
    out.push_str(&format!(
        ",\"op\":\"trace\",\"capacity\":{capacity},\"requests\":["
    ));
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        write_string(&mut out, &e.id);
        out.push_str(",\"outcome\":");
        write_string(&mut out, &e.outcome);
        if !e.trace_id.is_empty() {
            out.push_str(",\"trace_id\":");
            write_string(&mut out, &e.trace_id);
        }
        out.push_str(&format!(
            ",\"queue_ns\":{},\"run_ns\":{},\"luts\":{},\"depth\":{}}}",
            e.queue_ns, e.run_ns, e.luts, e.depth
        ));
    }
    out.push_str("]}");
    out
}

/// Renders the success response of a `shutdown` request (sent before the
/// drain starts).
pub fn render_shutdown_ok(version: ProtocolVersion, id: &str) -> String {
    let mut out = String::new();
    response_header(&mut out, version, id, "ok");
    out.push_str(",\"op\":\"shutdown\"}");
    out
}

fn write_hint(out: &mut String, hint: Option<&ShedHint>) {
    use std::fmt::Write as _;
    if let Some(hint) = hint {
        let _ = write!(
            out,
            ",\"retry_after_ms\":{},\"client_queue_depth\":{}",
            hint.retry_after_ms, hint.client_queue_depth
        );
    }
}

/// Renders a typed rejection in the shape of the version the request
/// spoke. v1 frames keep their historical shape exactly: no hint keys,
/// and [`RejectReason::OverQuota`] downgraded to the `queue_full`
/// spelling v1 clients already understand.
pub fn render_rejected(
    version: ProtocolVersion,
    id: &str,
    reason: RejectReason,
    detail: &str,
    hint: Option<&ShedHint>,
) -> String {
    let reason = match (version, reason) {
        (ProtocolVersion::V1, RejectReason::OverQuota) => RejectReason::QueueFull,
        (_, reason) => reason,
    };
    let mut out = String::new();
    response_header(&mut out, version, id, "rejected");
    out.push_str(",\"reason\":");
    write_string(&mut out, reason.as_str());
    out.push_str(",\"detail\":");
    write_string(&mut out, detail);
    if version == ProtocolVersion::V2 {
        write_hint(&mut out, hint);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ProtocolVersion::{V1, V2};

    fn map_line(proto: &str, extra: &str) -> String {
        format!(r#"{{"proto":"{proto}","id":"r1","blif":".model m\n.end\n"{extra}}}"#)
    }

    #[test]
    fn parses_map_defaults_in_both_versions() {
        for (proto, version) in [(PROTOCOL_V1, V1), (PROTOCOL_V2, V2)] {
            let req = parse_request(&map_line(proto, "")).expect("parses");
            assert_eq!(req.id, "r1");
            assert_eq!(req.version, version);
            let Op::Map(m) = req.op else {
                panic!("expected map")
            };
            assert_eq!(m.k, 4);
            // 0 = host parallelism, resolved by the mapper; identical
            // output either way, so the default can chase throughput.
            assert_eq!(m.jobs, 0);
            assert_eq!(m.cache, chortle::CacheMode::Shared);
            assert_eq!(m.objective, chortle::Objective::Area);
            assert!(m.optimize);
            assert_eq!(m.deadline_ms, None);
            assert_eq!(m.priority, 0);
        }
    }

    #[test]
    fn parses_every_map_knob() {
        let req = parse_request(&map_line(
            PROTOCOL_V1,
            r#","k":5,"jobs":3,"cache":"off","objective":"depth","optimize":false,"deadline_ms":250"#,
        ))
        .expect("parses");
        let Op::Map(m) = req.op else {
            panic!("expected map")
        };
        assert_eq!(
            (m.k, m.jobs, m.cache, m.objective, m.optimize, m.deadline_ms),
            (
                5,
                3,
                chortle::CacheMode::Off,
                chortle::Objective::Depth,
                false,
                Some(250)
            )
        );
        let req = parse_request(&map_line(PROTOCOL_V2, r#","priority":7"#)).expect("parses");
        let Op::Map(m) = req.op else {
            panic!("expected map")
        };
        assert_eq!(m.priority, 7);
    }

    #[test]
    fn parses_admin_ops_in_both_versions() {
        for (proto, version) in [(PROTOCOL_V1, V1), (PROTOCOL_V2, V2)] {
            for (name, op) in [
                ("flush", Op::Flush),
                ("stats", Op::Stats),
                ("trace", Op::Trace),
                ("shutdown", Op::Shutdown),
            ] {
                let line = format!(r#"{{"proto":"{proto}","op":"{name}"}}"#);
                let req = parse_request(&line).expect("parses");
                assert_eq!(req.op, op);
                assert_eq!(req.version, version);
                assert_eq!(req.id, "");
            }
        }
        let line = format!(r#"{{"proto":"{PROTOCOL_V2}","op":"hello","id":"h"}}"#);
        let req = parse_request(&line).expect("parses");
        assert_eq!(req.op, Op::Hello);
        assert_eq!(req.version, V2);
    }

    #[test]
    fn parses_map_design_as_a_flagged_map() {
        let line = format!(
            r#"{{"proto":"{PROTOCOL_V2}","id":"d1","op":"map_design","blif":".model m\n.end\n","k":5}}"#
        );
        let req = parse_request(&line).expect("parses");
        assert_eq!(req.version, V2);
        let Op::Map(m) = req.op else {
            panic!("expected map")
        };
        assert!(m.design);
        assert_eq!(m.k, 5);
        // Plain maps and batch entries never carry the flag.
        let req = parse_request(&map_line(PROTOCOL_V2, "")).expect("parses");
        let Op::Map(m) = req.op else {
            panic!("expected map")
        };
        assert!(!m.design);
    }

    #[test]
    fn map_design_requires_v2() {
        let line = format!(
            r#"{{"proto":"{PROTOCOL_V1}","id":"d","op":"map_design","blif":".model m\n.end\n"}}"#
        );
        let err = parse_request(&line).unwrap_err();
        assert!(err.detail.contains("requires"), "{}", err.detail);
        assert_eq!(err.version, V1);
        // The v2 unknown-op message advertises the new op.
        let line = format!(r#"{{"proto":"{PROTOCOL_V2}","op":"fold"}}"#);
        let err = parse_request(&line).unwrap_err();
        assert!(err.detail.contains("map_design"), "{}", err.detail);
    }

    /// Golden map_design frames, pinned like the other v2 shapes.
    #[test]
    fn golden_map_design_frames_round_trip() {
        let req = MapRequest {
            blif: ".model m\n.end\n".into(),
            design: true,
            ..MapRequest::default()
        };
        let line = render_map_request(V2, "sd", &req);
        assert_eq!(
            line,
            "{\"proto\":\"chortle-serve/v2\",\"id\":\"sd\",\"op\":\"map_design\",\
             \"blif\":\".model m\\n.end\\n\",\"k\":4,\"jobs\":0,\"cache\":\"shared\",\
             \"objective\":\"area\",\"optimize\":true,\"priority\":0}"
        );
        let parsed = parse_request(&line).expect("round trips");
        assert_eq!(parsed.op, Op::Map(req));

        let payload = MapPayload {
            luts: 4,
            depth: 2,
            cache_generation: 1,
            run_ns: 9_000,
            netlist: ".model mapped\n.latch a b re clk 0\n.end\n".into(),
            report_json: "{\"a\":1}".into(),
            trace_id: String::new(),
        };
        let ok = render_map_design_ok("sd", &payload);
        assert_eq!(
            ok,
            "{\"proto\":\"chortle-serve/v2\",\"id\":\"sd\",\"status\":\"ok\",\
             \"op\":\"map_design\",\"luts\":4,\"depth\":2,\"cache_generation\":1,\
             \"run_ns\":9000,\"netlist\":\".model mapped\\n.latch a b re clk 0\\n.end\\n\",\
             \"report\":{\"a\":1}}"
        );
    }

    #[test]
    fn parses_map_batch_with_priority_defaults() {
        let line = format!(
            r#"{{"proto":"{PROTOCOL_V2}","id":"b","op":"map_batch","priority":3,"requests":[
                {{"blif":".model a\n.end\n"}},
                {{"blif":".model b\n.end\n","k":5,"priority":9}}
            ]}}"#
        )
        .replace('\n', "")
        .replace("                ", "");
        let req = parse_request(&line).expect("parses");
        let Op::MapBatch(batch) = req.op else {
            panic!("expected map_batch")
        };
        assert_eq!(batch.requests.len(), 2);
        // Entry 0 inherits the frame priority; entry 1 overrides it.
        assert_eq!(batch.requests[0].priority, 3);
        assert_eq!(batch.requests[1].priority, 9);
        assert_eq!(batch.requests[1].k, 5);
    }

    #[test]
    fn rejects_protocol_violations_with_recovered_id() {
        for (line, needle, id) in [
            ("not json", "invalid JSON", ""),
            ("[1,2]", "must be a JSON object", ""),
            (r#"{"id":"x","blif":""}"#, "missing \"proto\"", "x"),
            (
                r#"{"proto":"chortle-serve/v9","id":"x","blif":""}"#,
                "unsupported protocol",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","zap":1}"#,
                "unknown key",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","op":"fold"}"#,
                "unknown op",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x"}"#,
                "requires a \"blif\"",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","op":"flush","blif":""}"#,
                "only valid for op \"map\"",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","op":"stats","jobs":2}"#,
                "only valid for op \"map\"",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","op":"trace","deadline_ms":5}"#,
                "only valid for op \"map\"",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","blif":"","k":-1}"#,
                "non-negative integer",
                "x",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","blif":"","cache":"ram"}"#,
                "\"cache\" must be",
                "x",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.detail.contains(needle), "{line}: {}", err.detail);
            assert_eq!(err.id, id, "{line}");
        }
    }

    #[test]
    fn v2_ops_and_keys_are_rejected_on_v1_frames() {
        for (line, needle) in [
            (
                r#"{"proto":"chortle-serve/v1","id":"x","op":"hello"}"#,
                "requires \"chortle-serve/v2\"",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","op":"map_batch"}"#,
                "unknown key", // "requests" missing, but op itself needs none; rejected below
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","blif":"","priority":1}"#,
                "unknown key \"priority\"",
            ),
            (
                r#"{"proto":"chortle-serve/v1","id":"x","op":"map_batch","requests":[]}"#,
                "unknown key \"requests\"",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.version, V1, "{line}");
            // The second case has no unknown keys; it fails on the op.
            if line.contains("\"op\":\"map_batch\"}") {
                assert!(err.detail.contains("requires"), "{line}: {}", err.detail);
            } else {
                assert!(err.detail.contains(needle), "{line}: {}", err.detail);
            }
        }
    }

    #[test]
    fn rejects_malformed_v2_batches() {
        let frame = |body: &str| format!(r#"{{"proto":"{PROTOCOL_V2}","id":"b",{body}}}"#);
        for (body, needle) in [
            (r#""op":"map_batch""#, "requires a \"requests\" array"),
            (r#""op":"map_batch","requests":[]"#, "must not be empty"),
            (
                r#""op":"map_batch","requests":[{"k":4}]"#,
                "requests[0]: op \"map\" requires a \"blif\"",
            ),
            (
                r#""op":"map_batch","requests":[{"blif":"","id":"inner"}]"#,
                "requests[0] has unknown key \"id\"",
            ),
            (
                r#""op":"map_batch","requests":[{"blif":"","priority":99}]"#,
                "\"priority\" must be 0..=9",
            ),
            (
                r#""op":"map","requests":[{"blif":""}],"blif":"""#,
                "only valid for op \"map_batch\"",
            ),
            (r#""op":"hello","priority":2"#, "\"priority\""),
        ] {
            let err = parse_request(&frame(body)).unwrap_err();
            assert!(err.detail.contains(needle), "{body}: {}", err.detail);
        }
    }

    /// Golden v1 frames: the renderer must keep producing exactly these
    /// bytes — v1 clients parse positionally-fragile hand-rolled JSON,
    /// so the v1 wire image is frozen.
    #[test]
    fn golden_v1_frames_round_trip() {
        let req = MapRequest {
            blif: ".model m\n.end\n".into(),
            k: 5,
            jobs: 2,
            cache: chortle::CacheMode::Tree,
            objective: chortle::Objective::Depth,
            optimize: false,
            deadline_ms: Some(125),
            priority: 0,
            design: false,
            trace_id: String::new(),
        };
        let line = render_map_request(V1, "rt", &req);
        assert_eq!(
            line,
            "{\"proto\":\"chortle-serve/v1\",\"id\":\"rt\",\"op\":\"map\",\
             \"blif\":\".model m\\n.end\\n\",\"k\":5,\"jobs\":2,\"cache\":\"tree\",\
             \"objective\":\"depth\",\"optimize\":false,\"deadline_ms\":125}"
        );
        let parsed = parse_request(&line).expect("round trips");
        assert_eq!(parsed.id, "rt");
        assert_eq!(parsed.version, V1);
        assert_eq!(parsed.op, Op::Map(req));

        let rejected = render_rejected(V1, "d", RejectReason::QueueFull, "queue is full", None);
        assert_eq!(
            rejected,
            "{\"proto\":\"chortle-serve/v1\",\"id\":\"d\",\"status\":\"rejected\",\
             \"reason\":\"queue_full\",\"detail\":\"queue is full\"}"
        );
        // v1 never grows hint keys, and over_quota is downgraded to the
        // spelling v1 clients know.
        let hint = ShedHint {
            retry_after_ms: 9,
            client_queue_depth: 4,
        };
        let rejected = render_rejected(V1, "d", RejectReason::OverQuota, "over quota", Some(&hint));
        assert!(!rejected.contains("retry_after_ms"), "{rejected}");
        assert!(rejected.contains("\"reason\":\"queue_full\""), "{rejected}");

        for op in [Op::Flush, Op::Stats, Op::Trace, Op::Shutdown] {
            let line = render_admin_request(V1, "a1", &op);
            let parsed = parse_request(&line).expect("round trips");
            assert_eq!((parsed.id.as_str(), parsed.op), ("a1", op));
            assert_eq!(parsed.version, V1);
        }
    }

    /// Golden v2 frames: pinned the same way so v2 cannot drift either.
    #[test]
    fn golden_v2_frames_round_trip() {
        let mut req = MapRequest {
            blif: ".model m\n.end\n".into(),
            priority: 7,
            ..MapRequest::default()
        };
        req.deadline_ms = Some(50);
        let line = render_map_request(V2, "rt", &req);
        assert_eq!(
            line,
            "{\"proto\":\"chortle-serve/v2\",\"id\":\"rt\",\"op\":\"map\",\
             \"blif\":\".model m\\n.end\\n\",\"k\":4,\"jobs\":0,\"cache\":\"shared\",\
             \"objective\":\"area\",\"optimize\":true,\"deadline_ms\":50,\"priority\":7}"
        );
        let parsed = parse_request(&line).expect("round trips");
        assert_eq!(parsed.version, V2);
        assert_eq!(parsed.op, Op::Map(req.clone()));

        let batch = render_batch_request("b1", std::slice::from_ref(&req));
        assert_eq!(
            batch,
            "{\"proto\":\"chortle-serve/v2\",\"id\":\"b1\",\"op\":\"map_batch\",\
             \"requests\":[{\"blif\":\".model m\\n.end\\n\",\"k\":4,\"jobs\":0,\
             \"cache\":\"shared\",\"objective\":\"area\",\"optimize\":true,\
             \"deadline_ms\":50,\"priority\":7}]}"
        );
        let parsed = parse_request(&batch).expect("round trips");
        assert_eq!(
            parsed.op,
            Op::MapBatch(BatchRequest {
                requests: vec![req]
            })
        );

        let hint = ShedHint {
            retry_after_ms: 12,
            client_queue_depth: 8,
        };
        let rejected = render_rejected(V2, "d", RejectReason::OverQuota, "try later", Some(&hint));
        assert_eq!(
            rejected,
            "{\"proto\":\"chortle-serve/v2\",\"id\":\"d\",\"status\":\"rejected\",\
             \"reason\":\"over_quota\",\"detail\":\"try later\",\
             \"retry_after_ms\":12,\"client_queue_depth\":8}"
        );

        let hello = render_hello_ok(
            "h",
            &ServerLimits {
                quota: 8,
                queue_depth: 64,
                batch_limit: 64,
            },
        );
        assert_eq!(
            hello,
            "{\"proto\":\"chortle-serve/v2\",\"id\":\"h\",\"status\":\"ok\",\"op\":\"hello\",\
             \"versions\":[\"chortle-serve/v1\",\"chortle-serve/v2\"],\
             \"quota\":8,\"queue\":64,\"batch_limit\":64}"
        );

        let line = render_admin_request(V2, "h", &Op::Hello);
        let parsed = parse_request(&line).expect("round trips");
        assert_eq!(parsed.op, Op::Hello);
    }

    /// Golden trace_id frames: rendered only when non-empty (so every
    /// pre-trace_id golden above is untouched), echoed verbatim in the
    /// payload and the trace-ring entries.
    #[test]
    fn golden_trace_id_frames_round_trip() {
        let req = MapRequest {
            blif: ".model m\n.end\n".into(),
            trace_id: "t-42".into(),
            ..MapRequest::default()
        };
        let line = render_map_request(V2, "rt", &req);
        assert_eq!(
            line,
            "{\"proto\":\"chortle-serve/v2\",\"id\":\"rt\",\"op\":\"map\",\
             \"blif\":\".model m\\n.end\\n\",\"k\":4,\"jobs\":0,\"cache\":\"shared\",\
             \"objective\":\"area\",\"optimize\":true,\"priority\":0,\"trace_id\":\"t-42\"}"
        );
        let parsed = parse_request(&line).expect("round trips");
        assert_eq!(parsed.op, Op::Map(req.clone()));

        // v1 predates trace_id: the key is unknown there.
        let v1 =
            format!(r#"{{"proto":"{PROTOCOL_V1}","id":"rt","op":"map","blif":"","trace_id":"t"}}"#);
        let err = parse_request(&v1).unwrap_err();
        assert!(err.detail.contains("trace_id"), "{}", err.detail);
        // Admin ops refuse it like priority.
        let admin = format!(r#"{{"proto":"{PROTOCOL_V2}","op":"stats","trace_id":"t"}}"#);
        let err = parse_request(&admin).unwrap_err();
        assert!(err.detail.contains("only valid"), "{}", err.detail);

        // Batch frames default their entries, entries override.
        let batch = format!(
            r#"{{"proto":"{PROTOCOL_V2}","id":"b","op":"map_batch","trace_id":"t-b","requests":[{{"blif":""}},{{"blif":"","trace_id":"t-own"}}]}}"#
        );
        let parsed = parse_request(&batch).expect("parses");
        let Op::MapBatch(batch) = parsed.op else {
            panic!("expected map_batch")
        };
        assert_eq!(batch.requests[0].trace_id, "t-b");
        assert_eq!(batch.requests[1].trace_id, "t-own");

        let payload = MapPayload {
            luts: 1,
            depth: 1,
            cache_generation: 0,
            run_ns: 5_000,
            netlist: ".model mapped\n.end\n".into(),
            report_json: "{\"a\":1}".into(),
            trace_id: "t-42".into(),
        };
        let ok = render_map_ok(V2, "rt", &payload);
        assert_eq!(
            ok,
            "{\"proto\":\"chortle-serve/v2\",\"id\":\"rt\",\"status\":\"ok\",\
             \"op\":\"map\",\"luts\":1,\"depth\":1,\"cache_generation\":0,\
             \"run_ns\":5000,\"trace_id\":\"t-42\",\
             \"netlist\":\".model mapped\\n.end\\n\",\"report\":{\"a\":1}}"
        );

        let ring = [RequestTrace {
            id: "rt".into(),
            outcome: "ok".into(),
            queue_ns: 10,
            run_ns: 20,
            luts: 1,
            depth: 1,
            trace_id: "t-42".into(),
        }];
        let trace = render_trace_ok(V2, "e", 8, &ring);
        assert_eq!(
            trace,
            "{\"proto\":\"chortle-serve/v2\",\"id\":\"e\",\"status\":\"ok\",\
             \"op\":\"trace\",\"capacity\":8,\"requests\":[{\"id\":\"rt\",\
             \"outcome\":\"ok\",\"trace_id\":\"t-42\",\"queue_ns\":10,\
             \"run_ns\":20,\"luts\":1,\"depth\":1}]}"
        );
    }

    /// Golden metrics frames: the v2-only windowed snapshot, validated
    /// against the schema v1.7 windowed-metrics fragment.
    #[test]
    fn golden_metrics_frames_round_trip() {
        let line = render_admin_request(V2, "m", &Op::Metrics);
        assert_eq!(
            line,
            "{\"proto\":\"chortle-serve/v2\",\"id\":\"m\",\"op\":\"metrics\"}"
        );
        let parsed = parse_request(&line).expect("parses");
        assert_eq!(parsed.op, Op::Metrics);

        let v1 = format!(r#"{{"proto":"{PROTOCOL_V1}","op":"metrics"}}"#);
        let err = parse_request(&v1).unwrap_err();
        assert!(err.detail.contains("requires"), "{}", err.detail);

        let snap = MetricsSnapshot {
            window_s: 60,
            seconds: 2,
            qps: 3.0,
            shed_rate: 0.25,
            cache_hit_rate: 0.5,
            fn_cache_hit_rate: 0.0,
            p50_ns: 725,
            p95_ns: 1024,
            p99_ns: 1024,
            window_accepted: 6,
            window_completed: 6,
            window_shed: 2,
            cumulative_accepted: 6,
            cumulative_completed: 6,
            cumulative_shed: 2,
        };
        let ok = render_metrics_ok("m", &snap);
        assert_eq!(
            ok,
            "{\"proto\":\"chortle-serve/v2\",\"id\":\"m\",\"status\":\"ok\",\
             \"op\":\"metrics\",\"window_s\":60,\"seconds\":2,\"qps\":3,\
             \"shed_rate\":0.25,\"cache_hit_rate\":0.5,\"fn_cache_hit_rate\":0,\
             \"p50_ns\":725,\"p95_ns\":1024,\"p99_ns\":1024,\
             \"window\":{\"accepted\":6,\"completed\":6,\"shed\":2},\
             \"cumulative\":{\"accepted\":6,\"completed\":6,\"shed\":2}}"
        );
        let value = chortle_telemetry::json::parse(&ok).expect("reparses");
        // Strip the response envelope; the rest is the fragment.
        let fragment: Vec<(String, Value)> = value
            .as_object()
            .unwrap()
            .iter()
            .filter(|(k, _)| !matches!(k.as_str(), "proto" | "id" | "status" | "op"))
            .cloned()
            .collect();
        chortle_telemetry::schema::validate_metrics_fragment(&Value::Object(fragment))
            .expect("fragment validates");
    }

    /// The v1 stats shape is frozen: no trace_dropped key.
    #[test]
    fn v1_stats_shape_has_no_trace_dropped() {
        let line = render_stats_ok(
            V1,
            "s",
            &StatsGauges {
                trace_dropped: 9,
                ..StatsGauges::default()
            },
            &WarmStats::default(),
            "{}",
        );
        assert!(!line.contains("trace_dropped"), "{line}");
        let v2 = render_stats_ok(
            V2,
            "s",
            &StatsGauges {
                trace_dropped: 9,
                ..StatsGauges::default()
            },
            &WarmStats::default(),
            "{}",
        );
        assert!(v2.contains("\"trace_dropped\":9"), "{v2}");
    }

    #[test]
    fn responses_are_one_line_and_reparse() {
        let ring = [RequestTrace {
            id: "m1".into(),
            outcome: "ok".into(),
            queue_ns: 1200,
            run_ns: 34000,
            luts: 5,
            depth: 2,
            trace_id: String::new(),
        }];
        let payload = MapPayload {
            luts: 3,
            depth: 2,
            cache_generation: 7,
            run_ns: 41_000,
            netlist: ".model mapped\n.end\n".into(),
            report_json: "{\"schema\":\"x\"}".into(),
            trace_id: String::new(),
        };
        let cases = [
            render_map_ok(V1, "a", &payload),
            render_flush_ok(V1, "b", 8),
            render_stats_ok(
                V2,
                "",
                &StatsGauges {
                    cache_generation: 0,
                    uptime_s: 12,
                    queue_depth: 1,
                    queue_high_water: 3,
                    trace_dropped: 2,
                },
                &WarmStats {
                    shapes: 5,
                    fn_entries: 2,
                    hits: 10,
                    misses: 4,
                    fn_hits: 3,
                    fn_misses: 1,
                },
                "{\"schema\":\"x\"}",
            ),
            render_shutdown_ok(V1, "c"),
            render_rejected(V1, "d", RejectReason::QueueFull, "queue is full", None),
            render_trace_ok(V2, "e", 128, &ring),
            render_batch_ok(
                "f",
                &[
                    BatchItem::Mapped(payload.clone()),
                    BatchItem::Rejected {
                        reason: RejectReason::OverQuota,
                        detail: "quota".into(),
                        hint: Some(ShedHint {
                            retry_after_ms: 4,
                            client_queue_depth: 2,
                        }),
                    },
                ],
            ),
        ];
        for line in &cases {
            assert!(!line.contains('\n'), "{line}");
            let value = chortle_telemetry::json::parse(line).expect("reparses");
            let proto = value.get("proto").and_then(Value::as_str).unwrap();
            assert!(PROTOCOLS.contains(&proto), "{line}");
        }
        // Netlist newlines survive the JSON round trip.
        let map = chortle_telemetry::json::parse(&cases[0]).unwrap();
        assert_eq!(
            map.get("netlist").and_then(Value::as_str),
            Some(".model mapped\n.end\n")
        );
        assert_eq!(map.get("cache_generation").and_then(Value::as_u64), Some(7));
        assert_eq!(map.get("run_ns").and_then(Value::as_u64), Some(41_000));
        let stats = chortle_telemetry::json::parse(&cases[2]).unwrap();
        assert_eq!(stats.get("uptime_s").and_then(Value::as_u64), Some(12));
        assert_eq!(stats.get("trace_dropped").and_then(Value::as_u64), Some(2));
        assert_eq!(stats.get("queue_depth").and_then(Value::as_u64), Some(1));
        assert_eq!(
            stats.get("queue_high_water").and_then(Value::as_u64),
            Some(3)
        );
        let tiers = stats.get("cache").expect("stats carries a cache object");
        assert_eq!(tiers.get("shapes").and_then(Value::as_u64), Some(5));
        assert_eq!(tiers.get("fn_entries").and_then(Value::as_u64), Some(2));
        assert_eq!(tiers.get("hits").and_then(Value::as_u64), Some(10));
        assert_eq!(tiers.get("misses").and_then(Value::as_u64), Some(4));
        assert_eq!(tiers.get("fn_hits").and_then(Value::as_u64), Some(3));
        assert_eq!(tiers.get("fn_misses").and_then(Value::as_u64), Some(1));
        let rej = chortle_telemetry::json::parse(&cases[4]).unwrap();
        assert_eq!(
            rej.get("reason").and_then(Value::as_str),
            Some("queue_full")
        );
        let trace = chortle_telemetry::json::parse(&cases[5]).unwrap();
        assert_eq!(trace.get("capacity").and_then(Value::as_u64), Some(128));
        let reqs = trace.get("requests").and_then(Value::as_array).unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].get("outcome").and_then(Value::as_str), Some("ok"));
        assert_eq!(reqs[0].get("queue_ns").and_then(Value::as_u64), Some(1200));
        let batch = chortle_telemetry::json::parse(&cases[6]).unwrap();
        let results = batch.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(
            results[1].get("retry_after_ms").and_then(Value::as_u64),
            Some(4)
        );
    }
}
