//! Daemon flags, shared by the `chortle-serve` binary and the
//! `chortle-map serve` subcommand so the two spellings cannot drift.
//!
//! Follows the CLI's declarative-flag-table idiom: [`SERVE_FLAGS`]
//! drives parsing, help generation, and unknown-flag rejection.

use crate::server::ServeOptions;

/// One daemon flag: spelling, value placeholder (`None` for booleans),
/// and help text.
pub struct ServeFlag {
    /// The flag's spelling, e.g. `--port`.
    pub name: &'static str,
    /// Placeholder for the value in help output; `None` for booleans.
    pub value: Option<&'static str>,
    /// One-line help text.
    pub help: &'static str,
}

/// Every flag the daemon understands — the single source of truth for
/// `chortle-serve` and `chortle-map serve`.
pub const SERVE_FLAGS: &[ServeFlag] = &[
    ServeFlag {
        name: "--port",
        value: Some("N"),
        help: "TCP port on 127.0.0.1; 0 picks an ephemeral port (default 0)",
    },
    ServeFlag {
        name: "--workers",
        value: Some("N"),
        help: "worker threads executing map requests; 0 = all cores (default 0)",
    },
    ServeFlag {
        name: "--queue",
        value: Some("N"),
        help: "admission queue capacity before queue_full rejections (default 64)",
    },
    ServeFlag {
        name: "--quota",
        value: Some("N"),
        help: "per-client cap on queued + in-flight requests (default 8)",
    },
    ServeFlag {
        name: "--batch-limit",
        value: Some("N"),
        help: "max requests accepted per op:\"map_batch\" frame (default 64)",
    },
    ServeFlag {
        name: "--trace-capacity",
        value: Some("N"),
        help: "completed requests the op:\"trace\" ring remembers (default 128)",
    },
    ServeFlag {
        name: "--metrics-addr",
        value: Some("ADDR"),
        help: "serve Prometheus text exposition on ADDR (TCP mode only)",
    },
    ServeFlag {
        name: "--log-level",
        value: Some("LEVEL"),
        help: "structured JSONL log level: off|error|warn|info|debug|trace (default off)",
    },
    ServeFlag {
        name: "--log-file",
        value: Some("PATH"),
        help: "append structured log events to PATH instead of stderr",
    },
    ServeFlag {
        name: "--stdio",
        value: None,
        help: "serve newline-delimited JSON on stdin/stdout instead of TCP",
    },
    ServeFlag {
        name: "--help",
        value: None,
        help: "print this help and exit",
    },
];

/// Parsed daemon arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeArgs {
    /// TCP port (0 = ephemeral).
    pub port: u16,
    /// Worker threads (0 = host parallelism).
    pub workers: usize,
    /// Admission queue capacity.
    pub queue: usize,
    /// Per-client quota of queued + in-flight requests.
    pub quota: usize,
    /// Maximum requests per `map_batch` frame.
    pub batch_limit: usize,
    /// `op: "trace"` ring capacity.
    pub trace_capacity: usize,
    /// Prometheus exposition address (`None` disables the endpoint).
    pub metrics_addr: Option<String>,
    /// Structured-log level flag (overrides `CHORTLE_LOG`; `None`
    /// defers to the environment, which defaults to off).
    pub log_level: Option<String>,
    /// Structured-log destination flag (overrides `CHORTLE_LOG_FILE`).
    pub log_file: Option<String>,
    /// Serve stdin/stdout instead of TCP.
    pub stdio: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        let options = ServeOptions::default();
        ServeArgs {
            port: options.port,
            workers: options.workers,
            queue: options.queue_depth,
            quota: options.client_quota,
            batch_limit: options.batch_limit,
            trace_capacity: options.trace_capacity,
            metrics_addr: None,
            log_level: None,
            log_file: None,
            stdio: false,
        }
    }
}

impl ServeArgs {
    /// Parses daemon arguments against [`SERVE_FLAGS`]. Returns
    /// `Ok(None)` when `--help` was printed (via `print_serve_help`
    /// with `invocation`).
    ///
    /// # Errors
    ///
    /// A message for stderr on unknown flags, missing values, or
    /// unparseable numbers.
    pub fn parse(
        invocation: &str,
        args: impl Iterator<Item = String>,
    ) -> Result<Option<ServeArgs>, String> {
        let mut parsed = ServeArgs::default();
        let mut args = args;
        while let Some(arg) = args.next() {
            let Some(flag) = SERVE_FLAGS.iter().find(|f| f.name == arg) else {
                return Err(format!("unknown argument {arg:?}"));
            };
            let value = if flag.value.is_some() {
                match args.next() {
                    Some(v) => v,
                    None => {
                        return Err(format!(
                            "{} requires a value {}",
                            flag.name,
                            flag.value.unwrap_or("")
                        ))
                    }
                }
            } else {
                String::new()
            };
            let number = |flag: &str| {
                value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid value for {flag}: {value:?} is not an integer"))
            };
            match flag.name {
                "--port" => {
                    parsed.port = value.parse().map_err(|_| {
                        format!("invalid value for --port: {value:?} is not a port number")
                    })?;
                }
                "--workers" => parsed.workers = number("--workers")?,
                "--queue" => parsed.queue = number("--queue")?,
                "--quota" => parsed.quota = number("--quota")?,
                "--batch-limit" => parsed.batch_limit = number("--batch-limit")?,
                "--trace-capacity" => parsed.trace_capacity = number("--trace-capacity")?,
                "--metrics-addr" => parsed.metrics_addr = Some(value.clone()),
                "--log-level" => {
                    // Validate at parse time so a typo fails fast with
                    // the flag's name, not at logger init.
                    chortle_telemetry::log::parse_level(&value)
                        .map_err(|e| format!("invalid value for --log-level: {e}"))?;
                    parsed.log_level = Some(value.clone());
                }
                "--log-file" => parsed.log_file = Some(value.clone()),
                "--stdio" => parsed.stdio = true,
                "--help" => {
                    print_serve_help(invocation);
                    return Ok(None);
                }
                _ => unreachable!("every table entry is handled"),
            }
        }
        Ok(Some(parsed))
    }

    /// The [`ServeOptions`] these arguments describe.
    #[must_use]
    pub fn options(&self) -> ServeOptions {
        ServeOptions::builder()
            .port(self.port)
            .workers(self.workers)
            .queue_depth(self.queue)
            .client_quota(self.quota)
            .batch_limit(self.batch_limit)
            .trace_capacity(self.trace_capacity)
            .metrics_addr(self.metrics_addr.clone())
            .build()
    }
}

/// Prints the daemon's help, titled for whichever spelling invoked it
/// (`chortle-serve` or `chortle-map serve`).
pub fn print_serve_help(invocation: &str) {
    println!("{invocation} — resident chortle mapping daemon (chortle-serve/v1 + /v2)");
    println!();
    println!("Usage: {invocation} [OPTIONS]");
    println!();
    println!("Speaks newline-delimited JSON on localhost TCP (or stdin/stdout");
    println!("with --stdio); prints \"listening on ADDR\" to stderr once bound,");
    println!("and the final aggregate telemetry report to stdout on shutdown.");
    println!();
    println!("Options:");
    for flag in SERVE_FLAGS {
        let mut left = String::from("  ");
        left.push_str(flag.name);
        if let Some(value) = flag.value {
            left.push(' ');
            left.push_str(value);
        }
        println!("{left:<22}{}", flag.help);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter()
            .map(|s| (*s).to_owned())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_defaults_and_every_flag() {
        let parsed = ServeArgs::parse("chortle-serve", strings(&[]))
            .expect("parses")
            .expect("not help");
        assert_eq!(parsed, ServeArgs::default());
        assert_eq!(parsed.queue, 64, "default queue matches ServeOptions");
        assert_eq!(parsed.quota, 8, "default quota matches ServeOptions");

        let parsed = ServeArgs::parse(
            "chortle-serve",
            strings(&[
                "--port",
                "7643",
                "--workers",
                "2",
                "--queue",
                "1",
                "--quota",
                "3",
                "--batch-limit",
                "16",
                "--trace-capacity",
                "16",
                "--metrics-addr",
                "127.0.0.1:0",
                "--log-level",
                "debug",
                "--log-file",
                "/tmp/serve.log",
                "--stdio",
            ]),
        )
        .expect("parses")
        .expect("not help");
        assert_eq!(
            parsed,
            ServeArgs {
                port: 7643,
                workers: 2,
                queue: 1,
                quota: 3,
                batch_limit: 16,
                trace_capacity: 16,
                metrics_addr: Some("127.0.0.1:0".into()),
                log_level: Some("debug".into()),
                log_file: Some("/tmp/serve.log".into()),
                stdio: true,
            }
        );
        let options = parsed.options();
        assert_eq!(options.queue_depth, 1);
        assert_eq!(options.client_quota, 3);
        assert_eq!(options.batch_limit, 16);
        assert_eq!(options.trace_capacity, 16);
        assert_eq!(options.metrics_addr.as_deref(), Some("127.0.0.1:0"));
    }

    #[test]
    fn rejects_bad_log_levels_at_parse_time() {
        let err = ServeArgs::parse("x", strings(&["--log-level", "loud"])).unwrap_err();
        assert!(err.contains("--log-level"), "{err}");
        let parsed = ServeArgs::parse("x", strings(&["--log-level", "off"]))
            .expect("parses")
            .expect("not help");
        assert_eq!(parsed.log_level.as_deref(), Some("off"));
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        let err = ServeArgs::parse("x", strings(&["--prot", "1"])).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
        let err = ServeArgs::parse("x", strings(&["--port"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        let err = ServeArgs::parse("x", strings(&["--port", "high"])).unwrap_err();
        assert!(err.contains("not a port number"), "{err}");
        let err = ServeArgs::parse("x", strings(&["--queue", "-3"])).unwrap_err();
        assert!(err.contains("not an integer"), "{err}");
    }
}
