//! A blocking client for `chortle-serve` (protocol v1 and v2) — used by
//! the `chortle-serve --connect` CLI mode, the load generator, and the
//! server's own integration tests.
//!
//! Two layers:
//!
//! - [`parse_response`] + [`Response`]: the raw wire view — one variant
//!   per response shape, version-agnostic. Kept for protocol-level
//!   tests and pipelined readers.
//! - [`Client`] with typed `map()`, `map_design()`, `map_batch()`,
//!   `hello()`, `stats()`, `flush()`, `trace()`, `shutdown()` methods, each
//!   returning a small `#[non_exhaustive]` reply enum
//!   ([`MapReply`], [`BatchReply`], …) — a rejection is a value, not an
//!   error; `io::Error` is reserved for transport and protocol
//!   failures. [`Client::connect`] speaks v2;
//!   [`Client::connect_versioned`] pins v1 for compatibility testing.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

use chortle::WarmStats;
use chortle_telemetry::json::{self, Value};

use crate::proto::{
    render_admin_request, render_batch_request, render_map_request, MapRequest, MetricsSnapshot,
    Op, ProtocolVersion, RequestTrace, PROTOCOLS,
};

/// A parsed response line — the raw wire view, either version.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Response {
    /// `status: "ok"` for `op: "map"`.
    MapOk {
        /// Echoed correlation id.
        id: String,
        /// LUTs in the mapped circuit.
        luts: usize,
        /// LUT levels on the longest path.
        depth: usize,
        /// Warm-cache generation that served this request.
        cache_generation: u64,
        /// Server-measured execution time in nanoseconds — the exact
        /// value the server bucketed into its `serve.run_ns` histogram.
        run_ns: u64,
        /// The mapped netlist (BLIF, model `mapped`).
        netlist: String,
        /// The embedded per-request telemetry report, re-serialized.
        report_json: String,
        /// The request's `trace_id`, echoed verbatim (empty when the
        /// request carried none).
        trace_id: String,
    },
    /// `status: "ok"` for `op: "map_batch"` (v2) — one entry per
    /// request, in request order.
    BatchOk {
        /// Echoed correlation id.
        id: String,
        /// Per-request outcomes.
        results: Vec<MapReply>,
    },
    /// `status: "ok"` for `op: "hello"` (v2).
    HelloOk {
        /// Echoed correlation id.
        id: String,
        /// Protocol versions the server accepts, oldest first.
        versions: Vec<String>,
        /// Per-client quota of queued + in-flight requests.
        quota: usize,
        /// Global admission queue capacity.
        queue_depth: usize,
        /// Maximum requests per `map_batch` frame.
        batch_limit: usize,
    },
    /// `status: "ok"` for `op: "flush"`.
    FlushOk {
        /// Echoed correlation id.
        id: String,
        /// The new (post-flush) cache generation.
        cache_generation: u64,
    },
    /// `status: "ok"` for `op: "stats"`.
    StatsOk {
        /// Echoed correlation id.
        id: String,
        /// Current cache generation.
        cache_generation: u64,
        /// Whole seconds since the server started.
        uptime_s: u64,
        /// Jobs queued at the moment of the snapshot.
        queue_depth: usize,
        /// The deepest the admission queue has ever been.
        queue_high_water: usize,
        /// Completed-request traces evicted from the bounded
        /// `op: "trace"` ring (`None` on v1 — its shape is frozen).
        trace_dropped: Option<u64>,
        /// Per-tier warm-cache entry counts and lookup tallies.
        warm: WarmStats,
        /// The aggregate server report, re-serialized.
        report_json: String,
    },
    /// `status: "ok"` for `op: "metrics"` (v2) — the sliding-window
    /// metrics snapshot.
    MetricsOk {
        /// Echoed correlation id.
        id: String,
        /// The windowed rates, quantiles, and roll-up totals.
        metrics: MetricsSnapshot,
    },
    /// `status: "ok"` for `op: "trace"` — the ring of recently
    /// completed requests, oldest first.
    TraceOk {
        /// Echoed correlation id.
        id: String,
        /// The configured ring capacity.
        capacity: usize,
        /// The remembered request traces.
        requests: Vec<RequestTrace>,
    },
    /// `status: "ok"` for `op: "shutdown"`.
    ShutdownOk {
        /// Echoed correlation id.
        id: String,
    },
    /// `status: "rejected"` — any op, either version.
    Rejected {
        /// Echoed (possibly recovered) correlation id.
        id: String,
        /// The rejection payload.
        rejection: Rejection,
    },
}

/// A typed rejection: the reason, human-readable detail, and — on v2
/// load sheds — the retry hint.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct Rejection {
    /// The typed reason (`queue_full`, `over_quota`,
    /// `deadline_exceeded`, `bad_request`, `shutting_down`,
    /// `internal`).
    pub reason: String,
    /// Human-readable detail.
    pub detail: String,
    /// v2 shed hint: when to retry, in milliseconds.
    pub retry_after_ms: Option<u64>,
    /// v2 shed hint: the client's queued + in-flight depth at shed
    /// time.
    pub client_queue_depth: Option<usize>,
}

/// One successfully mapped request, as the typed API returns it.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct Mapped {
    /// LUTs in the mapped circuit.
    pub luts: usize,
    /// LUT levels on the longest path.
    pub depth: usize,
    /// Warm-cache generation that served this request.
    pub cache_generation: u64,
    /// Server-measured execution time in nanoseconds.
    pub run_ns: u64,
    /// The mapped netlist (BLIF, model `mapped`), byte-identical to
    /// offline `chortle-map` for the same parameters.
    pub netlist: String,
    /// The embedded per-request telemetry report, re-serialized.
    pub report_json: String,
    /// The request's `trace_id`, echoed verbatim (empty when the
    /// request carried none).
    pub trace_id: String,
}

/// Outcome of [`Client::map`] — also the per-entry shape inside
/// [`BatchReply::Results`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum MapReply {
    /// The request mapped.
    Mapped(Mapped),
    /// The request was rejected (shed, deadline, malformed BLIF, …).
    Rejected(Rejection),
}

/// Outcome of [`Client::map_batch`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum BatchReply {
    /// The frame was accepted; per-request outcomes in request order
    /// (individual entries may still be rejections).
    Results(Vec<MapReply>),
    /// The whole frame was rejected (malformed, over the batch limit,
    /// shutdown).
    Rejected(Rejection),
}

/// Outcome of [`Client::hello`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum HelloReply {
    /// The server introduced itself.
    Hello {
        /// Protocol versions the server accepts, oldest first.
        versions: Vec<String>,
        /// Per-client quota of queued + in-flight requests.
        quota: usize,
        /// Global admission queue capacity.
        queue_depth: usize,
        /// Maximum requests per `map_batch` frame.
        batch_limit: usize,
    },
    /// The handshake was rejected (e.g. sent over v1).
    Rejected(Rejection),
}

/// Outcome of [`Client::flush`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum FlushReply {
    /// The warm cache was discarded; its generation bumped.
    Flushed {
        /// The new (post-flush) cache generation.
        cache_generation: u64,
    },
    /// The flush was rejected.
    Rejected(Rejection),
}

/// Outcome of [`Client::stats`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum StatsReply {
    /// The live introspection snapshot.
    Stats {
        /// Current cache generation.
        cache_generation: u64,
        /// Whole seconds since the server started.
        uptime_s: u64,
        /// Jobs queued at the moment of the snapshot.
        queue_depth: usize,
        /// The deepest the admission queue has ever been.
        queue_high_water: usize,
        /// Completed-request traces evicted from the bounded
        /// `op: "trace"` ring (`None` on v1 — its shape is frozen).
        trace_dropped: Option<u64>,
        /// Per-tier warm-cache entry counts and lookup tallies
        /// (hit rates via [`WarmStats::hit_rate`] /
        /// [`WarmStats::fn_hit_rate`]).
        warm: WarmStats,
        /// The aggregate server report, re-serialized.
        report_json: String,
    },
    /// The request was rejected.
    Rejected(Rejection),
}

/// Outcome of [`Client::metrics`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum MetricsReply {
    /// The sliding-window metrics snapshot.
    Metrics(MetricsSnapshot),
    /// The request was rejected (e.g. sent over v1 — the op is
    /// v2-only).
    Rejected(Rejection),
}

/// Outcome of [`Client::trace`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum TraceReply {
    /// The recent-request ring.
    Trace {
        /// The configured ring capacity.
        capacity: usize,
        /// The remembered request traces, oldest first.
        requests: Vec<RequestTrace>,
    },
    /// The request was rejected.
    Rejected(Rejection),
}

/// Outcome of [`Client::shutdown`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ShutdownReply {
    /// The server acknowledged and is draining.
    Draining,
    /// The request was rejected.
    Rejected(Rejection),
}

/// Parses the `"cache"` object of a `stats` response into the typed
/// per-tier tallies.
fn parse_warm_stats(tiers: &Value) -> Result<WarmStats, String> {
    let field = |key: &str| -> Result<u64, String> {
        tiers
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("stats \"cache\" is missing integer field {key:?}"))
    };
    Ok(WarmStats {
        shapes: field("shapes")? as usize,
        fn_entries: field("fn_entries")? as usize,
        hits: field("hits")?,
        misses: field("misses")?,
        fn_hits: field("fn_hits")?,
        fn_misses: field("fn_misses")?,
    })
}

/// Parses one response line (either protocol version) into a
/// [`Response`].
///
/// # Errors
///
/// Returns a description of the first deviation when the line is not a
/// well-formed `chortle-serve` response.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let value = json::parse(line).map_err(|e| format!("invalid JSON in response: {e}"))?;
    let proto = value
        .get("proto")
        .and_then(Value::as_str)
        .ok_or("response is missing string field \"proto\"")?;
    if !PROTOCOLS.contains(&proto) {
        return Err(format!("unexpected protocol {proto:?}"));
    }
    let str_field = |key: &str| -> Result<String, String> {
        value
            .get(key)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("response is missing string field {key:?}"))
    };
    let u64_field = |key: &str| -> Result<u64, String> {
        value
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("response is missing integer field {key:?}"))
    };
    let id = str_field("id")?;
    match str_field("status")?.as_str() {
        "rejected" => Ok(Response::Rejected {
            id,
            rejection: parse_rejection(&value)?,
        }),
        "ok" => match str_field("op")?.as_str() {
            // map_design answers carry the identical payload shape; the
            // echoed id (and the sequential netlist) tell them apart.
            "map" | "map_design" => Ok(Response::MapOk {
                id,
                luts: u64_field("luts")? as usize,
                depth: u64_field("depth")? as usize,
                cache_generation: u64_field("cache_generation")?,
                run_ns: u64_field("run_ns")?,
                netlist: str_field("netlist")?,
                report_json: value
                    .get("report")
                    .map(Value::to_json)
                    .ok_or("response is missing \"report\"")?,
                trace_id: optional_trace_id(&value),
            }),
            "map_batch" => Ok(Response::BatchOk {
                id,
                results: parse_batch_results(&value)?,
            }),
            "hello" => {
                let versions = value
                    .get("versions")
                    .and_then(Value::as_array)
                    .ok_or("hello response is missing the \"versions\" array")?
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| "hello \"versions\" entries must be strings".to_owned())
                    })
                    .collect::<Result<Vec<String>, String>>()?;
                Ok(Response::HelloOk {
                    id,
                    versions,
                    quota: u64_field("quota")? as usize,
                    queue_depth: u64_field("queue")? as usize,
                    batch_limit: u64_field("batch_limit")? as usize,
                })
            }
            "flush" => Ok(Response::FlushOk {
                id,
                cache_generation: u64_field("cache_generation")?,
            }),
            "stats" => Ok(Response::StatsOk {
                id,
                cache_generation: u64_field("cache_generation")?,
                uptime_s: u64_field("uptime_s")?,
                queue_depth: u64_field("queue_depth")? as usize,
                queue_high_water: u64_field("queue_high_water")? as usize,
                trace_dropped: value.get("trace_dropped").and_then(Value::as_u64),
                warm: parse_warm_stats(value.get("cache").ok_or("response is missing \"cache\"")?)?,
                report_json: value
                    .get("report")
                    .map(Value::to_json)
                    .ok_or("response is missing \"report\"")?,
            }),
            "metrics" => Ok(Response::MetricsOk {
                id,
                metrics: parse_metrics(&value)?,
            }),
            "trace" => Ok(Response::TraceOk {
                id,
                capacity: u64_field("capacity")? as usize,
                requests: parse_trace_entries(&value)?,
            }),
            "shutdown" => Ok(Response::ShutdownOk { id }),
            other => Err(format!("unknown response op {other:?}")),
        },
        other => Err(format!("unknown status {other:?}")),
    }
}

/// Parses a rejection body — the top-level `status: "rejected"` shape
/// and the per-entry batch shape are identical.
fn parse_rejection(value: &Value) -> Result<Rejection, String> {
    let text = |key: &str| {
        value
            .get(key)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("rejection is missing string field {key:?}"))
    };
    Ok(Rejection {
        reason: text("reason")?,
        detail: text("detail")?,
        retry_after_ms: value.get("retry_after_ms").and_then(Value::as_u64),
        client_queue_depth: value
            .get("client_queue_depth")
            .and_then(Value::as_u64)
            .map(|v| v as usize),
    })
}

fn parse_batch_results(value: &Value) -> Result<Vec<MapReply>, String> {
    let items = value
        .get("results")
        .and_then(Value::as_array)
        .ok_or("batch response is missing the \"results\" array")?;
    items
        .iter()
        .map(|entry| {
            let status = entry
                .get("status")
                .and_then(Value::as_str)
                .ok_or("batch entry is missing string field \"status\"")?;
            match status {
                "rejected" => Ok(MapReply::Rejected(parse_rejection(entry)?)),
                "ok" => {
                    let number = |key: &str| {
                        entry
                            .get(key)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| format!("batch entry is missing integer field {key:?}"))
                    };
                    Ok(MapReply::Mapped(Mapped {
                        luts: number("luts")? as usize,
                        depth: number("depth")? as usize,
                        cache_generation: number("cache_generation")?,
                        run_ns: number("run_ns")?,
                        netlist: entry
                            .get("netlist")
                            .and_then(Value::as_str)
                            .map(str::to_owned)
                            .ok_or("batch entry is missing string field \"netlist\"")?,
                        report_json: entry
                            .get("report")
                            .map(Value::to_json)
                            .ok_or("batch entry is missing \"report\"")?,
                        trace_id: optional_trace_id(entry),
                    }))
                }
                other => Err(format!("unknown batch entry status {other:?}")),
            }
        })
        .collect()
}

/// The optional `trace_id` echo — empty when the request carried none
/// (the server elides the key entirely then).
fn optional_trace_id(value: &Value) -> String {
    value
        .get("trace_id")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_owned()
}

/// Parses the windowed-metrics fragment of a v2 `metrics` response.
fn parse_metrics(value: &Value) -> Result<MetricsSnapshot, String> {
    let int = |key: &str| {
        value
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("metrics response is missing integer field {key:?}"))
    };
    let float = |key: &str| {
        value
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("metrics response is missing number field {key:?}"))
    };
    let nested = |object: &str, key: &str| {
        value
            .get(object)
            .and_then(|o| o.get(key))
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("metrics response is missing \"{object}.{key}\""))
    };
    Ok(MetricsSnapshot {
        window_s: int("window_s")?,
        seconds: int("seconds")?,
        qps: float("qps")?,
        shed_rate: float("shed_rate")?,
        cache_hit_rate: float("cache_hit_rate")?,
        fn_cache_hit_rate: float("fn_cache_hit_rate")?,
        p50_ns: int("p50_ns")?,
        p95_ns: int("p95_ns")?,
        p99_ns: int("p99_ns")?,
        window_accepted: nested("window", "accepted")?,
        window_completed: nested("window", "completed")?,
        window_shed: nested("window", "shed")?,
        cumulative_accepted: nested("cumulative", "accepted")?,
        cumulative_completed: nested("cumulative", "completed")?,
        cumulative_shed: nested("cumulative", "shed")?,
    })
}

fn parse_trace_entries(value: &Value) -> Result<Vec<RequestTrace>, String> {
    let items = value
        .get("requests")
        .and_then(Value::as_array)
        .ok_or("trace response is missing the \"requests\" array")?;
    items
        .iter()
        .map(|e| {
            let text = |key: &str| {
                e.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("trace entry is missing string field {key:?}"))
            };
            let number = |key: &str| {
                e.get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("trace entry is missing integer field {key:?}"))
            };
            Ok(RequestTrace {
                id: text("id")?,
                outcome: text("outcome")?,
                queue_ns: number("queue_ns")?,
                run_ns: number("run_ns")?,
                luts: number("luts")? as usize,
                depth: number("depth")? as usize,
                trace_id: optional_trace_id(e),
            })
        })
        .collect()
}

fn mapped_from(response: Response) -> io::Result<MapReply> {
    match response {
        Response::MapOk {
            luts,
            depth,
            cache_generation,
            run_ns,
            netlist,
            report_json,
            trace_id,
            ..
        } => Ok(MapReply::Mapped(Mapped {
            luts,
            depth,
            cache_generation,
            run_ns,
            netlist,
            report_json,
            trace_id,
        })),
        Response::Rejected { rejection, .. } => Ok(MapReply::Rejected(rejection)),
        other => Err(unexpected("map", &other)),
    }
}

fn unexpected(op: &str, response: &Response) -> io::Error {
    io::Error::other(format!(
        "server answered op \"{op}\" with an unrelated response: {response:?}"
    ))
}

/// A blocking connection to a running `chortle-serve` daemon. One
/// request/response round trip at a time; pipeline with
/// [`Client::send_line`] + [`Client::recv_response`], or open several
/// clients for concurrency.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    version: ProtocolVersion,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7643"`) speaking protocol
    /// v2.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect(addr: &str) -> io::Result<Client> {
        Client::connect_versioned(addr, ProtocolVersion::V2)
    }

    /// Connects speaking a specific protocol version — v1 keeps old
    /// deployments testable against new servers.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect_versioned(addr: &str, version: ProtocolVersion) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response over localhost: disable Nagle so small
        // request lines are not held back waiting for delayed ACKs.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            version,
        })
    }

    /// The protocol version this client renders requests in.
    #[must_use]
    pub fn version(&self) -> ProtocolVersion {
        self.version
    }

    /// Writes one request line without waiting for the response —
    /// pipelining building block.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()
    }

    /// Reads and parses the next response line — pipelining building
    /// block.
    ///
    /// # Errors
    ///
    /// I/O failures, EOF, and malformed response lines.
    pub fn recv_response(&mut self) -> io::Result<Response> {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        parse_response(response.trim_end()).map_err(io::Error::other)
    }

    fn roundtrip(&mut self, line: &str) -> io::Result<Response> {
        self.send_line(line)?;
        self.recv_response()
    }

    /// Maps one netlist.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed or unrelated response lines; a
    /// rejection is a [`MapReply::Rejected`] value, not an error.
    pub fn map(&mut self, id: &str, req: &MapRequest) -> io::Result<MapReply> {
        let response = self.roundtrip(&render_map_request(self.version, id, req))?;
        mapped_from(response)
    }

    /// Maps one sequential design (`op: "map_design"`, v2 only — a v1
    /// client gets a protocol rejection back from the server). The
    /// request's `design` flag is forced on; every other knob is taken
    /// as given.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed or unrelated response lines; a
    /// rejection is a [`MapReply::Rejected`] value, not an error.
    pub fn map_design(&mut self, id: &str, req: &MapRequest) -> io::Result<MapReply> {
        let mut req = req.clone();
        req.design = true;
        let response = self.roundtrip(&render_map_request(self.version, id, &req))?;
        mapped_from(response)
    }

    /// Maps many netlists in one `map_batch` frame (v2 only — a v1
    /// client gets a protocol rejection back from the server).
    ///
    /// # Errors
    ///
    /// I/O failures and malformed or unrelated response lines.
    pub fn map_batch(&mut self, id: &str, requests: &[MapRequest]) -> io::Result<BatchReply> {
        let response = self.roundtrip(&render_batch_request(id, requests))?;
        match response {
            Response::BatchOk { results, .. } => Ok(BatchReply::Results(results)),
            Response::Rejected { rejection, .. } => Ok(BatchReply::Rejected(rejection)),
            other => Err(unexpected("map_batch", &other)),
        }
    }

    /// Performs the v2 version-negotiation handshake.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed or unrelated response lines.
    pub fn hello(&mut self, id: &str) -> io::Result<HelloReply> {
        let line = render_admin_request(self.version, id, &Op::Hello);
        match self.roundtrip(&line)? {
            Response::HelloOk {
                versions,
                quota,
                queue_depth,
                batch_limit,
                ..
            } => Ok(HelloReply::Hello {
                versions,
                quota,
                queue_depth,
                batch_limit,
            }),
            Response::Rejected { rejection, .. } => Ok(HelloReply::Rejected(rejection)),
            other => Err(unexpected("hello", &other)),
        }
    }

    /// Discards the server's warm cache.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed or unrelated response lines.
    pub fn flush(&mut self, id: &str) -> io::Result<FlushReply> {
        let line = render_admin_request(self.version, id, &Op::Flush);
        match self.roundtrip(&line)? {
            Response::FlushOk {
                cache_generation, ..
            } => Ok(FlushReply::Flushed { cache_generation }),
            Response::Rejected { rejection, .. } => Ok(FlushReply::Rejected(rejection)),
            other => Err(unexpected("flush", &other)),
        }
    }

    /// Fetches the live introspection snapshot.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed or unrelated response lines.
    pub fn stats(&mut self, id: &str) -> io::Result<StatsReply> {
        let line = render_admin_request(self.version, id, &Op::Stats);
        match self.roundtrip(&line)? {
            Response::StatsOk {
                cache_generation,
                uptime_s,
                queue_depth,
                queue_high_water,
                trace_dropped,
                warm,
                report_json,
                ..
            } => Ok(StatsReply::Stats {
                cache_generation,
                uptime_s,
                queue_depth,
                queue_high_water,
                trace_dropped,
                warm,
                report_json,
            }),
            Response::Rejected { rejection, .. } => Ok(StatsReply::Rejected(rejection)),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Fetches the sliding-window metrics snapshot (v2 only — a v1
    /// client gets a protocol rejection back from the server).
    ///
    /// # Errors
    ///
    /// I/O failures and malformed or unrelated response lines.
    pub fn metrics(&mut self, id: &str) -> io::Result<MetricsReply> {
        let line = render_admin_request(self.version, id, &Op::Metrics);
        match self.roundtrip(&line)? {
            Response::MetricsOk { metrics, .. } => Ok(MetricsReply::Metrics(metrics)),
            Response::Rejected { rejection, .. } => Ok(MetricsReply::Rejected(rejection)),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Fetches the recent-request trace ring.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed or unrelated response lines.
    pub fn trace(&mut self, id: &str) -> io::Result<TraceReply> {
        let line = render_admin_request(self.version, id, &Op::Trace);
        match self.roundtrip(&line)? {
            Response::TraceOk {
                capacity, requests, ..
            } => Ok(TraceReply::Trace { capacity, requests }),
            Response::Rejected { rejection, .. } => Ok(TraceReply::Rejected(rejection)),
            other => Err(unexpected("trace", &other)),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed or unrelated response lines.
    pub fn shutdown(&mut self, id: &str) -> io::Result<ShutdownReply> {
        let line = render_admin_request(self.version, id, &Op::Shutdown);
        match self.roundtrip(&line)? {
            Response::ShutdownOk { .. } => Ok(ShutdownReply::Draining),
            Response::Rejected { rejection, .. } => Ok(ShutdownReply::Rejected(rejection)),
            other => Err(unexpected("shutdown", &other)),
        }
    }

    /// Sends a raw request line verbatim and parses the wire response
    /// (for protocol tests).
    ///
    /// # Errors
    ///
    /// I/O failures and malformed response lines.
    pub fn send_raw(&mut self, line: &str) -> io::Result<Response> {
        self.roundtrip(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{
        render_batch_ok, render_hello_ok, render_map_ok, render_rejected, BatchItem, MapPayload,
        RejectReason, ServerLimits, ShedHint,
    };
    use ProtocolVersion::{V1, V2};

    fn payload() -> MapPayload {
        MapPayload {
            luts: 9,
            depth: 3,
            cache_generation: 2,
            run_ns: 5_000,
            netlist: ".model mapped\n.end\n".into(),
            report_json: "{\"a\":1}".into(),
            trace_id: String::new(),
        }
    }

    #[test]
    fn parses_rendered_responses_both_versions() {
        for version in [V1, V2] {
            let ok = render_map_ok(version, "q", &payload());
            match parse_response(&ok).expect("parses") {
                Response::MapOk {
                    id,
                    luts,
                    depth,
                    cache_generation,
                    run_ns,
                    netlist,
                    report_json,
                    trace_id,
                } => {
                    assert_eq!((id.as_str(), luts, depth, cache_generation), ("q", 9, 3, 2));
                    assert_eq!(run_ns, 5_000);
                    assert_eq!(netlist, ".model mapped\n.end\n");
                    assert_eq!(report_json, "{\"a\":1}");
                    assert_eq!(trace_id, "", "no trace_id sent, none echoed");
                }
                other => panic!("expected MapOk, got {other:?}"),
            }
        }
        let tiers = WarmStats {
            shapes: 6,
            fn_entries: 3,
            hits: 8,
            misses: 2,
            fn_hits: 5,
            fn_misses: 5,
        };
        let gauges = crate::proto::StatsGauges {
            cache_generation: 1,
            uptime_s: 9,
            queue_depth: 0,
            queue_high_water: 4,
            trace_dropped: 0,
        };
        let stats = crate::proto::render_stats_ok(V1, "s", &gauges, &tiers, "{\"a\":1}");
        match parse_response(&stats).expect("parses") {
            Response::StatsOk {
                uptime_s,
                queue_depth,
                queue_high_water,
                warm,
                ..
            } => {
                assert_eq!((uptime_s, queue_depth, queue_high_water), (9, 0, 4));
                assert_eq!(warm, tiers);
                assert!((warm.hit_rate() - 0.8).abs() < 1e-12);
                assert!((warm.fn_hit_rate() - 0.5).abs() < 1e-12);
            }
            other => panic!("expected StatsOk, got {other:?}"),
        }
        let ring = [RequestTrace {
            id: "m7".into(),
            outcome: "deadline_exceeded".into(),
            queue_ns: 10,
            run_ns: 20,
            luts: 0,
            depth: 0,
            trace_id: "corr-7".into(),
        }];
        let trace = crate::proto::render_trace_ok(V2, "t", 4, &ring);
        match parse_response(&trace).expect("parses") {
            Response::TraceOk {
                capacity, requests, ..
            } => {
                assert_eq!(capacity, 4);
                assert_eq!(requests, ring);
            }
            other => panic!("expected TraceOk, got {other:?}"),
        }
        assert!(parse_response("{}").is_err());
    }

    #[test]
    fn parses_map_design_responses_as_map_ok() {
        let ok = crate::proto::render_map_design_ok("d", &payload());
        match parse_response(&ok).expect("parses") {
            Response::MapOk { id, luts, .. } => assert_eq!((id.as_str(), luts), ("d", 9)),
            other => panic!("expected MapOk, got {other:?}"),
        }
    }

    #[test]
    fn parses_v1_rejections_without_hints() {
        let rej = render_rejected(V1, "r", RejectReason::DeadlineExceeded, "too slow", None);
        match parse_response(&rej).expect("parses") {
            Response::Rejected { id, rejection } => {
                assert_eq!(id, "r");
                assert_eq!(rejection.reason, "deadline_exceeded");
                assert_eq!(rejection.detail, "too slow");
                assert_eq!(rejection.retry_after_ms, None);
                assert_eq!(rejection.client_queue_depth, None);
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn parses_v2_rejections_with_hints() {
        let hint = ShedHint {
            retry_after_ms: 25,
            client_queue_depth: 8,
        };
        let rej = render_rejected(V2, "r", RejectReason::OverQuota, "busy", Some(&hint));
        match parse_response(&rej).expect("parses") {
            Response::Rejected { rejection, .. } => {
                assert_eq!(rejection.reason, "over_quota");
                assert_eq!(rejection.retry_after_ms, Some(25));
                assert_eq!(rejection.client_queue_depth, Some(8));
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn parses_batch_and_hello_responses() {
        let frame = render_batch_ok(
            "b",
            &[
                BatchItem::Mapped(payload()),
                BatchItem::Rejected {
                    reason: RejectReason::QueueFull,
                    detail: "full".into(),
                    hint: Some(ShedHint {
                        retry_after_ms: 7,
                        client_queue_depth: 3,
                    }),
                },
            ],
        );
        match parse_response(&frame).expect("parses") {
            Response::BatchOk { id, results } => {
                assert_eq!(id, "b");
                assert_eq!(results.len(), 2);
                match &results[0] {
                    MapReply::Mapped(m) => assert_eq!((m.luts, m.depth), (9, 3)),
                    other => panic!("expected Mapped, got {other:?}"),
                }
                match &results[1] {
                    MapReply::Rejected(r) => {
                        assert_eq!(r.reason, "queue_full");
                        assert_eq!(r.retry_after_ms, Some(7));
                    }
                    other => panic!("expected Rejected, got {other:?}"),
                }
            }
            other => panic!("expected BatchOk, got {other:?}"),
        }
        let hello = render_hello_ok(
            "h",
            &ServerLimits {
                quota: 8,
                queue_depth: 64,
                batch_limit: 32,
            },
        );
        match parse_response(&hello).expect("parses") {
            Response::HelloOk {
                versions,
                quota,
                queue_depth,
                batch_limit,
                ..
            } => {
                assert_eq!(versions, PROTOCOLS);
                assert_eq!((quota, queue_depth, batch_limit), (8, 64, 32));
            }
            other => panic!("expected HelloOk, got {other:?}"),
        }
    }
}
