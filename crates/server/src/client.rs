//! A small blocking client for `chortle-serve/v1` — used by the
//! `chortle-serve --connect` CLI mode, the load generator, and the
//! server's own integration tests.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

use chortle_telemetry::json::{self, Value};

use crate::proto::{
    render_admin_request, render_map_request, MapRequest, Op, RequestTrace, PROTOCOL,
};

/// A parsed `chortle-serve/v1` response line.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `status: "ok"` for `op: "map"`.
    MapOk {
        /// Echoed correlation id.
        id: String,
        /// LUTs in the mapped circuit.
        luts: usize,
        /// LUT levels on the longest path.
        depth: usize,
        /// Warm-cache generation that served this request.
        cache_generation: u64,
        /// Server-measured execution time in nanoseconds — the exact
        /// value the server bucketed into its `serve.run_ns` histogram.
        run_ns: u64,
        /// The mapped netlist (BLIF, model `mapped`).
        netlist: String,
        /// The embedded per-request telemetry report, re-serialized.
        report_json: String,
    },
    /// `status: "ok"` for `op: "flush"`.
    FlushOk {
        /// Echoed correlation id.
        id: String,
        /// The new (post-flush) cache generation.
        cache_generation: u64,
    },
    /// `status: "ok"` for `op: "stats"`.
    StatsOk {
        /// Echoed correlation id.
        id: String,
        /// Current cache generation.
        cache_generation: u64,
        /// Whole seconds since the server started.
        uptime_s: u64,
        /// Jobs queued at the moment of the snapshot.
        queue_depth: usize,
        /// The deepest the admission queue has ever been.
        queue_high_water: usize,
        /// The aggregate server report, re-serialized.
        report_json: String,
    },
    /// `status: "ok"` for `op: "trace"` — the ring of recently
    /// completed requests, oldest first.
    TraceOk {
        /// Echoed correlation id.
        id: String,
        /// The configured ring capacity.
        capacity: usize,
        /// The remembered request traces.
        requests: Vec<RequestTrace>,
    },
    /// `status: "ok"` for `op: "shutdown"`.
    ShutdownOk {
        /// Echoed correlation id.
        id: String,
    },
    /// `status: "rejected"` — any op.
    Rejected {
        /// Echoed (possibly recovered) correlation id.
        id: String,
        /// The typed reason (`queue_full`, `deadline_exceeded`,
        /// `bad_request`, `shutting_down`, `internal`).
        reason: String,
        /// Human-readable detail.
        detail: String,
    },
}

/// Parses one response line into a [`Response`].
///
/// # Errors
///
/// Returns a description of the first deviation when the line is not a
/// well-formed `chortle-serve/v1` response.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let value = json::parse(line).map_err(|e| format!("invalid JSON in response: {e}"))?;
    let str_field = |key: &str| -> Result<String, String> {
        value
            .get(key)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("response is missing string field {key:?}"))
    };
    let u64_field = |key: &str| -> Result<u64, String> {
        value
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("response is missing integer field {key:?}"))
    };
    let proto = str_field("proto")?;
    if proto != PROTOCOL {
        return Err(format!("unexpected protocol {proto:?}"));
    }
    let id = str_field("id")?;
    match str_field("status")?.as_str() {
        "rejected" => Ok(Response::Rejected {
            id,
            reason: str_field("reason")?,
            detail: str_field("detail")?,
        }),
        "ok" => match str_field("op")?.as_str() {
            "map" => Ok(Response::MapOk {
                id,
                luts: u64_field("luts")? as usize,
                depth: u64_field("depth")? as usize,
                cache_generation: u64_field("cache_generation")?,
                run_ns: u64_field("run_ns")?,
                netlist: str_field("netlist")?,
                report_json: value
                    .get("report")
                    .map(Value::to_json)
                    .ok_or("response is missing \"report\"")?,
            }),
            "flush" => Ok(Response::FlushOk {
                id,
                cache_generation: u64_field("cache_generation")?,
            }),
            "stats" => Ok(Response::StatsOk {
                id,
                cache_generation: u64_field("cache_generation")?,
                uptime_s: u64_field("uptime_s")?,
                queue_depth: u64_field("queue_depth")? as usize,
                queue_high_water: u64_field("queue_high_water")? as usize,
                report_json: value
                    .get("report")
                    .map(Value::to_json)
                    .ok_or("response is missing \"report\"")?,
            }),
            "trace" => Ok(Response::TraceOk {
                id,
                capacity: u64_field("capacity")? as usize,
                requests: parse_trace_entries(&value)?,
            }),
            "shutdown" => Ok(Response::ShutdownOk { id }),
            other => Err(format!("unknown response op {other:?}")),
        },
        other => Err(format!("unknown status {other:?}")),
    }
}

fn parse_trace_entries(value: &Value) -> Result<Vec<RequestTrace>, String> {
    let items = value
        .get("requests")
        .and_then(Value::as_array)
        .ok_or("trace response is missing the \"requests\" array")?;
    items
        .iter()
        .map(|e| {
            let text = |key: &str| {
                e.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("trace entry is missing string field {key:?}"))
            };
            let number = |key: &str| {
                e.get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("trace entry is missing integer field {key:?}"))
            };
            Ok(RequestTrace {
                id: text("id")?,
                outcome: text("outcome")?,
                queue_ns: number("queue_ns")?,
                run_ns: number("run_ns")?,
                luts: number("luts")? as usize,
                depth: number("depth")? as usize,
            })
        })
        .collect()
}

/// A blocking connection to a running `chortle-serve` daemon. One
/// request/response round trip at a time; open several clients for
/// concurrency.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7643"`).
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // One request, one response: disable Nagle so small request
        // lines are not held back waiting for delayed ACKs.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn roundtrip(&mut self, line: &str) -> io::Result<Response> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        parse_response(response.trim_end()).map_err(io::Error::other)
    }

    /// Sends a `map` request and waits for its response.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed response lines.
    pub fn map(&mut self, id: &str, req: &MapRequest) -> io::Result<Response> {
        self.roundtrip(&render_map_request(id, req))
    }

    /// Sends a `flush` request and waits for its response.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed response lines.
    pub fn flush(&mut self, id: &str) -> io::Result<Response> {
        self.roundtrip(&render_admin_request(id, &Op::Flush))
    }

    /// Sends a `stats` request and waits for its response.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed response lines.
    pub fn stats(&mut self, id: &str) -> io::Result<Response> {
        self.roundtrip(&render_admin_request(id, &Op::Stats))
    }

    /// Sends a `trace` request and waits for its response.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed response lines.
    pub fn trace(&mut self, id: &str) -> io::Result<Response> {
        self.roundtrip(&render_admin_request(id, &Op::Trace))
    }

    /// Sends a `shutdown` request and waits for its acknowledgement.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed response lines.
    pub fn shutdown(&mut self, id: &str) -> io::Result<Response> {
        self.roundtrip(&render_admin_request(id, &Op::Shutdown))
    }

    /// Sends a raw request line verbatim (for protocol tests).
    ///
    /// # Errors
    ///
    /// I/O failures and malformed response lines.
    pub fn send_raw(&mut self, line: &str) -> io::Result<Response> {
        self.roundtrip(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{render_map_ok, render_rejected, RejectReason};

    #[test]
    fn parses_rendered_responses() {
        let ok = render_map_ok("q", 9, 3, 2, 5_000, ".model mapped\n.end\n", "{\"a\":1}");
        match parse_response(&ok).expect("parses") {
            Response::MapOk {
                id,
                luts,
                depth,
                cache_generation,
                run_ns,
                netlist,
                report_json,
            } => {
                assert_eq!((id.as_str(), luts, depth, cache_generation), ("q", 9, 3, 2));
                assert_eq!(run_ns, 5_000);
                assert_eq!(netlist, ".model mapped\n.end\n");
                assert_eq!(report_json, "{\"a\":1}");
            }
            other => panic!("expected MapOk, got {other:?}"),
        }
        let stats = crate::proto::render_stats_ok("s", 1, 9, 0, 4, "{\"a\":1}");
        match parse_response(&stats).expect("parses") {
            Response::StatsOk {
                uptime_s,
                queue_depth,
                queue_high_water,
                ..
            } => assert_eq!((uptime_s, queue_depth, queue_high_water), (9, 0, 4)),
            other => panic!("expected StatsOk, got {other:?}"),
        }
        let ring = [RequestTrace {
            id: "m7".into(),
            outcome: "deadline_exceeded".into(),
            queue_ns: 10,
            run_ns: 20,
            luts: 0,
            depth: 0,
        }];
        let trace = crate::proto::render_trace_ok("t", 4, &ring);
        match parse_response(&trace).expect("parses") {
            Response::TraceOk {
                capacity, requests, ..
            } => {
                assert_eq!(capacity, 4);
                assert_eq!(requests, ring);
            }
            other => panic!("expected TraceOk, got {other:?}"),
        }
        let rej = render_rejected("r", RejectReason::DeadlineExceeded, "too slow");
        assert_eq!(
            parse_response(&rej).expect("parses"),
            Response::Rejected {
                id: "r".into(),
                reason: "deadline_exceeded".into(),
                detail: "too slow".into(),
            }
        );
        assert!(parse_response("{}").is_err());
    }
}
