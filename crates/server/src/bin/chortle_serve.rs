//! `chortle-serve` — the resident chortle mapping daemon, plus a small
//! built-in client (`--connect`) so shell scripts and CI can speak the
//! protocol without writing JSON by hand.
//!
//! Daemon mode (the default) binds localhost TCP, prints
//! `listening on ADDR` to stderr once bound, and prints the final
//! aggregate telemetry report to stdout after a graceful shutdown —
//! so `chortle-serve > report.json` composes with `report-check`.
//! With `--stdio` the protocol itself owns stdout, and the final report
//! goes to stderr instead.
//!
//! Client mode (`--connect HOST:PORT`) reads BLIF from a file argument
//! or stdin, sends one `map` request, and prints the mapped netlist to
//! stdout — byte-identical to `chortle-map` with the same flags. Admin
//! requests: `--flush`, `--stats`, `--trace`, `--shutdown`. Exit code 1
//! on any `rejected` response.

use std::io::Read;
use std::process::ExitCode;

use chortle_server::{print_serve_help, run_daemon, Client, MapRequest, Response};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    match args.peek().map(String::as_str) {
        Some("--version" | "-V") => {
            println!("chortle-serve {}", env!("CARGO_PKG_VERSION"));
            ExitCode::SUCCESS
        }
        Some("--connect") => {
            args.next();
            client_main(args)
        }
        Some("--help" | "-h") => {
            print_serve_help("chortle-serve");
            print_client_help();
            ExitCode::SUCCESS
        }
        _ => run_daemon("chortle-serve", args),
    }
}

/// What client mode should do once connected.
enum ClientOp {
    Map(Box<MapRequest>, Option<String>),
    Flush,
    Stats,
    Trace,
    Shutdown,
}

struct ClientArgs {
    addr: String,
    id: String,
    op: ClientOp,
}

fn print_client_help() {
    println!();
    println!("Client mode: chortle-serve --connect HOST:PORT [OPTIONS] [INPUT.blif]");
    println!();
    println!("Sends one request to a running daemon. BLIF is read from INPUT.blif");
    println!("or stdin; the mapped netlist goes to stdout. Exit code 1 on any");
    println!("rejected response.");
    println!();
    println!("Client options:");
    println!("  -k N                LUT input count (default 4)");
    println!("  --jobs N            mapper worker threads; 0 = all cores (default 1)");
    println!("  --cache MODE        DP cache: shared (default), tree, or off");
    println!("  --objective GOAL    area (default) or depth");
    println!("  --no-optimize       skip the MIS-style optimization script");
    println!("  --deadline-ms N     per-request deadline in milliseconds");
    println!("  --id ID             correlation id echoed in the response");
    println!("  --flush             discard the server's warm cache instead of mapping");
    println!("  --stats             print the server's aggregate report instead of mapping");
    println!("  --trace             print the server's recent-request trace ring instead");
    println!("  --shutdown          ask the server to drain and exit instead of mapping");
}

fn parse_client_args(
    addr: Option<String>,
    args: impl Iterator<Item = String>,
) -> Result<Option<ClientArgs>, String> {
    let Some(addr) = addr else {
        return Err("--connect requires a value HOST:PORT".into());
    };
    let mut req = MapRequest {
        blif: String::new(),
        k: 4,
        jobs: 1,
        cache: chortle::CacheMode::Shared,
        objective: chortle::Objective::Area,
        optimize: true,
        deadline_ms: None,
    };
    let mut id = String::new();
    let mut input = None;
    let mut admin = None;
    let mut args = args;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "-k" => req.k = parse_number(&value("-k")?, "-k")?,
            "--jobs" => req.jobs = parse_number(&value("--jobs")?, "--jobs")?,
            "--cache" => {
                req.cache = match value("--cache")?.as_str() {
                    "off" => chortle::CacheMode::Off,
                    "tree" => chortle::CacheMode::Tree,
                    "shared" => chortle::CacheMode::Shared,
                    other => {
                        return Err(format!(
                            "invalid value for --cache: {other:?} (expected off, tree or shared)"
                        ))
                    }
                }
            }
            "--objective" => {
                req.objective = match value("--objective")?.as_str() {
                    "area" => chortle::Objective::Area,
                    "depth" => chortle::Objective::Depth,
                    other => {
                        return Err(format!(
                            "invalid value for --objective: {other:?} (expected area or depth)"
                        ))
                    }
                }
            }
            "--no-optimize" => req.optimize = false,
            "--deadline-ms" => {
                req.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|_| "invalid value for --deadline-ms".to_owned())?,
                )
            }
            "--id" => id = value("--id")?,
            "--flush" => admin = Some(ClientOp::Flush),
            "--stats" => admin = Some(ClientOp::Stats),
            "--trace" => admin = Some(ClientOp::Trace),
            "--shutdown" => admin = Some(ClientOp::Shutdown),
            "--help" | "-h" => {
                print_serve_help("chortle-serve");
                print_client_help();
                return Ok(None);
            }
            other if !other.starts_with('-') && input.is_none() => input = Some(arg),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let op = admin.unwrap_or(ClientOp::Map(Box::new(req), input));
    Ok(Some(ClientArgs { addr, id, op }))
}

fn parse_number(value: &str, flag: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value for {flag}: {value:?} is not an integer"))
}

fn client_main(mut args: impl Iterator<Item = String>) -> ExitCode {
    let addr = args.next();
    let parsed = match parse_client_args(addr, args) {
        Ok(Some(parsed)) => parsed,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("chortle-serve: {msg} (try --help)");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match Client::connect(&parsed.addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("chortle-serve: cannot connect to {}: {e}", parsed.addr);
            return ExitCode::FAILURE;
        }
    };
    let response = match parsed.op {
        ClientOp::Map(mut req, input) => {
            req.blif = match read_input(input.as_deref()) {
                Ok(blif) => blif,
                Err(msg) => {
                    eprintln!("chortle-serve: {msg}");
                    return ExitCode::FAILURE;
                }
            };
            client.map(&parsed.id, &req)
        }
        ClientOp::Flush => client.flush(&parsed.id),
        ClientOp::Stats => client.stats(&parsed.id),
        ClientOp::Trace => client.trace(&parsed.id),
        ClientOp::Shutdown => client.shutdown(&parsed.id),
    };
    let response = match response {
        Ok(response) => response,
        Err(e) => {
            eprintln!("chortle-serve: request failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match response {
        Response::MapOk {
            luts,
            depth,
            cache_generation,
            netlist,
            ..
        } => {
            eprintln!("mapped: {luts} LUTs, depth {depth} (cache generation {cache_generation})");
            print!("{netlist}");
            ExitCode::SUCCESS
        }
        Response::FlushOk {
            cache_generation, ..
        } => {
            eprintln!("cache flushed; generation {cache_generation}");
            ExitCode::SUCCESS
        }
        Response::StatsOk {
            report_json,
            uptime_s,
            queue_depth,
            queue_high_water,
            ..
        } => {
            eprintln!(
                "uptime {uptime_s}s, queue depth {queue_depth} (high water {queue_high_water})"
            );
            println!("{report_json}");
            ExitCode::SUCCESS
        }
        Response::TraceOk {
            capacity, requests, ..
        } => {
            eprintln!("{} of {capacity} remembered requests", requests.len());
            for r in requests {
                println!(
                    "{}\t{}\tqueue {}ns\trun {}ns\t{} LUTs depth {}",
                    r.id, r.outcome, r.queue_ns, r.run_ns, r.luts, r.depth
                );
            }
            ExitCode::SUCCESS
        }
        Response::ShutdownOk { .. } => {
            eprintln!("server is draining and will exit");
            ExitCode::SUCCESS
        }
        Response::Rejected { reason, detail, .. } => {
            eprintln!("chortle-serve: rejected ({reason}): {detail}");
            ExitCode::FAILURE
        }
    }
}

fn read_input(path: Option<&str>) -> Result<String, String> {
    match path {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
        None => {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            Ok(s)
        }
    }
}
