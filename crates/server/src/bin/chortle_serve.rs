//! `chortle-serve` — the resident chortle mapping daemon, plus a small
//! built-in client (`--connect`) so shell scripts and CI can speak the
//! protocol without writing JSON by hand.
//!
//! Daemon mode (the default) binds localhost TCP, prints
//! `listening on ADDR` to stderr once bound, and prints the final
//! aggregate telemetry report to stdout after a graceful shutdown —
//! so `chortle-serve > report.json` composes with `report-check`.
//! With `--stdio` the protocol itself owns stdout, and the final report
//! goes to stderr instead.
//!
//! Client mode (`--connect HOST:PORT`) reads BLIF from file arguments
//! or stdin, sends one `map` request (or one `map_batch` frame with
//! `--batch`), and prints the mapped netlists to stdout —
//! byte-identical to `chortle-map` with the same flags. Admin requests:
//! `--hello`, `--flush`, `--stats`, `--trace`, `--shutdown`. The wire
//! version defaults to v2; `--proto v1` pins the frozen v1 shapes.
//! Exit code 1 on any `rejected` response.

use std::io::Read;
use std::process::ExitCode;

use chortle_server::{
    print_serve_help, run_daemon, BatchReply, Client, FlushReply, HelloReply, MapReply, MapRequest,
    MetricsReply, ProtocolVersion, Rejection, ShutdownReply, StatsReply, TraceReply, MAX_PRIORITY,
};
use chortle_telemetry::log::{self, FieldValue, Level};

/// Installs a process-level panic hook that emits a structured log
/// event (with the crash-context ring flushed to stderr) before the
/// default hook prints its message — so an operator tailing the JSONL
/// log sees *what the daemon was doing* when a thread died, not just
/// the panic line. A no-op while logging is off. Worker panics are
/// still recovered by the scheduler's `catch_unwind` path; this hook
/// observes them on the way through.
fn install_panic_hook() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if log::enabled(Level::Error) {
            let payload = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
                .unwrap_or("non-string panic payload");
            let location = info
                .location()
                .map_or_else(|| "unknown".to_owned(), ToString::to_string);
            log::event(
                Level::Error,
                "serve.panic",
                "thread panicked",
                &[
                    ("payload", FieldValue::Str(payload)),
                    ("location", FieldValue::Str(&location)),
                    (
                        "ring_depth",
                        FieldValue::U64(log::ring_snapshot().len() as u64),
                    ),
                ],
            );
        }
        default_hook(info);
    }));
}

fn main() -> ExitCode {
    install_panic_hook();
    let mut args = std::env::args().skip(1).peekable();
    match args.peek().map(String::as_str) {
        Some("--version" | "-V") => {
            println!("chortle-serve {}", env!("CARGO_PKG_VERSION"));
            ExitCode::SUCCESS
        }
        Some("--connect") => {
            args.next();
            client_main(args)
        }
        Some("--help" | "-h") => {
            print_serve_help("chortle-serve");
            print_client_help();
            ExitCode::SUCCESS
        }
        _ => run_daemon("chortle-serve", args),
    }
}

/// What client mode should do once connected.
enum ClientOp {
    Map(Box<MapRequest>, Vec<String>, bool),
    Hello,
    Flush,
    Stats,
    Metrics,
    Trace,
    Shutdown,
}

struct ClientArgs {
    addr: String,
    id: String,
    version: ProtocolVersion,
    op: ClientOp,
}

fn print_client_help() {
    println!();
    println!("Client mode: chortle-serve --connect HOST:PORT [OPTIONS] [INPUT.blif...]");
    println!();
    println!("Sends one request to a running daemon. BLIF is read from INPUT.blif");
    println!("or stdin; the mapped netlist goes to stdout. With --batch, every");
    println!("INPUT.blif becomes one entry of a single op:\"map_batch\" frame and");
    println!("the netlists print in order. Exit code 1 on any rejected response.");
    println!();
    println!("Client options:");
    println!("  -k N                LUT input count (default 4)");
    println!("  --jobs N            mapper worker threads; 0 = all cores (default 1)");
    println!("  --cache MODE        DP cache: shared (default), fn, tree, or off");
    println!("  --objective GOAL    area (default) or depth");
    println!("  --no-optimize       skip the MIS-style optimization script");
    println!(
        "  --design            map a sequential design (.latch/.subckt) via op:\"map_design\""
    );
    println!("  --deadline-ms N     per-request deadline in milliseconds");
    println!("  --priority N        admission priority 0-9, higher first (v2; default 0)");
    println!("  --proto VERSION     wire protocol: v2 (default) or v1");
    println!("  --id ID             correlation id echoed in the response");
    println!("  --trace-id ID       end-to-end trace id echoed through response,");
    println!("                      op:\"trace\" ring, and server logs (v2)");
    println!("  --batch             send all inputs as one op:\"map_batch\" frame (v2)");
    println!("  --hello             print the server's versions and limits instead");
    println!("  --flush             discard the server's warm cache instead of mapping");
    println!("  --stats             print the server's aggregate report instead of mapping");
    println!("  --metrics           print the server's sliding-window metrics (v2)");
    println!("  --trace             print the server's recent-request trace ring instead");
    println!("  --shutdown          ask the server to drain and exit instead of mapping");
}

fn parse_client_args(
    addr: Option<String>,
    args: impl Iterator<Item = String>,
) -> Result<Option<ClientArgs>, String> {
    let Some(addr) = addr else {
        return Err("--connect requires a value HOST:PORT".into());
    };
    let mut req = MapRequest {
        jobs: 1,
        ..MapRequest::default()
    };
    let mut id = String::new();
    let mut version = ProtocolVersion::V2;
    let mut inputs = Vec::new();
    let mut batch = false;
    let mut admin = None;
    let mut args = args;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "-k" => req.k = parse_number(&value("-k")?, "-k")?,
            "--jobs" => req.jobs = parse_number(&value("--jobs")?, "--jobs")?,
            "--cache" => {
                req.cache = match value("--cache")?.as_str() {
                    "off" => chortle::CacheMode::Off,
                    "tree" => chortle::CacheMode::Tree,
                    "shared" => chortle::CacheMode::Shared,
                    "fn" => chortle::CacheMode::Fn,
                    other => {
                        return Err(format!(
                        "invalid value for --cache: {other:?} (expected off, tree, shared or fn)"
                    ))
                    }
                }
            }
            "--objective" => {
                req.objective = match value("--objective")?.as_str() {
                    "area" => chortle::Objective::Area,
                    "depth" => chortle::Objective::Depth,
                    other => {
                        return Err(format!(
                            "invalid value for --objective: {other:?} (expected area or depth)"
                        ))
                    }
                }
            }
            "--no-optimize" => req.optimize = false,
            "--design" => req.design = true,
            "--deadline-ms" => {
                req.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|_| "invalid value for --deadline-ms".to_owned())?,
                )
            }
            "--priority" => {
                let n = parse_number(&value("--priority")?, "--priority")?;
                if n > usize::from(MAX_PRIORITY) {
                    return Err(format!(
                        "invalid value for --priority: {n} is above the maximum {MAX_PRIORITY}"
                    ));
                }
                req.priority = n as u8;
            }
            "--proto" => {
                version = match value("--proto")?.as_str() {
                    "v1" | "1" => ProtocolVersion::V1,
                    "v2" | "2" => ProtocolVersion::V2,
                    other => {
                        return Err(format!(
                            "invalid value for --proto: {other:?} (expected v1 or v2)"
                        ))
                    }
                }
            }
            "--id" => id = value("--id")?,
            "--trace-id" => req.trace_id = value("--trace-id")?,
            "--batch" => batch = true,
            "--hello" => admin = Some(ClientOp::Hello),
            "--flush" => admin = Some(ClientOp::Flush),
            "--stats" => admin = Some(ClientOp::Stats),
            "--metrics" => admin = Some(ClientOp::Metrics),
            "--trace" => admin = Some(ClientOp::Trace),
            "--shutdown" => admin = Some(ClientOp::Shutdown),
            "--help" | "-h" => {
                print_serve_help("chortle-serve");
                print_client_help();
                return Ok(None);
            }
            other if !other.starts_with('-') => inputs.push(other.to_owned()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if !batch && inputs.len() > 1 {
        return Err(format!(
            "{} input files given without --batch; a plain map takes at most one",
            inputs.len()
        ));
    }
    if req.design && batch {
        return Err("--design cannot ride in a --batch frame; batch entries are plain maps".into());
    }
    if req.design && version == ProtocolVersion::V1 {
        return Err("--design requires protocol v2 (drop --proto v1)".into());
    }
    let op = admin.unwrap_or(ClientOp::Map(Box::new(req), inputs, batch));
    Ok(Some(ClientArgs {
        addr,
        id,
        version,
        op,
    }))
}

fn parse_number(value: &str, flag: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value for {flag}: {value:?} is not an integer"))
}

/// The reply enums are `#[non_exhaustive]`; a variant this binary does
/// not know about means it is older than the library it links.
fn unexpected_reply() -> ExitCode {
    eprintln!("chortle-serve: server sent a reply this client does not understand");
    ExitCode::FAILURE
}

fn report_rejection(rejection: &Rejection) -> ExitCode {
    match rejection.retry_after_ms {
        Some(ms) => eprintln!(
            "chortle-serve: rejected ({}): {} (retry after {ms}ms)",
            rejection.reason, rejection.detail
        ),
        None => eprintln!(
            "chortle-serve: rejected ({}): {}",
            rejection.reason, rejection.detail
        ),
    }
    ExitCode::FAILURE
}

fn client_main(mut args: impl Iterator<Item = String>) -> ExitCode {
    let addr = args.next();
    let parsed = match parse_client_args(addr, args) {
        Ok(Some(parsed)) => parsed,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("chortle-serve: {msg} (try --help)");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match Client::connect_versioned(&parsed.addr, parsed.version) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("chortle-serve: cannot connect to {}: {e}", parsed.addr);
            return ExitCode::FAILURE;
        }
    };
    let outcome = match parsed.op {
        ClientOp::Map(req, inputs, batch) => {
            return map_main(&mut client, &parsed.id, *req, &inputs, batch)
        }
        ClientOp::Hello => client.hello(&parsed.id).map(|reply| match reply {
            HelloReply::Hello {
                versions,
                quota,
                queue_depth,
                batch_limit,
            } => {
                eprintln!(
                    "server speaks {}; quota {quota}, queue {queue_depth}, batch limit {batch_limit}",
                    versions.join(", ")
                );
                ExitCode::SUCCESS
            }
            HelloReply::Rejected(r) => report_rejection(&r),
            _ => unexpected_reply(),
        }),
        ClientOp::Flush => client.flush(&parsed.id).map(|reply| match reply {
            FlushReply::Flushed { cache_generation } => {
                eprintln!("cache flushed; generation {cache_generation}");
                ExitCode::SUCCESS
            }
            FlushReply::Rejected(r) => report_rejection(&r),
            _ => unexpected_reply(),
        }),
        ClientOp::Stats => client.stats(&parsed.id).map(|reply| match reply {
            StatsReply::Stats {
                report_json,
                uptime_s,
                queue_depth,
                queue_high_water,
                warm,
                ..
            } => {
                eprintln!(
                    "uptime {uptime_s}s, queue depth {queue_depth} (high water {queue_high_water})"
                );
                eprintln!(
                    "warm cache: {} shapes ({:.1}% hit), {} fn classes ({:.1}% hit)",
                    warm.shapes,
                    warm.hit_rate() * 100.0,
                    warm.fn_entries,
                    warm.fn_hit_rate() * 100.0
                );
                println!("{report_json}");
                ExitCode::SUCCESS
            }
            StatsReply::Rejected(r) => report_rejection(&r),
            _ => unexpected_reply(),
        }),
        ClientOp::Metrics => client.metrics(&parsed.id).map(|reply| match reply {
            MetricsReply::Metrics(m) => {
                eprintln!(
                    "window {}s ({} observed): {:.2} qps, shed {:.1}%, \
                     cache hit {:.1}% / fn {:.1}%",
                    m.window_s,
                    m.seconds,
                    m.qps,
                    m.shed_rate * 100.0,
                    m.cache_hit_rate * 100.0,
                    m.fn_cache_hit_rate * 100.0
                );
                eprintln!(
                    "latency p50 {}ns p95 {}ns p99 {}ns; window {}/{}/{} \
                     accepted/completed/shed (cumulative {}/{}/{})",
                    m.p50_ns,
                    m.p95_ns,
                    m.p99_ns,
                    m.window_accepted,
                    m.window_completed,
                    m.window_shed,
                    m.cumulative_accepted,
                    m.cumulative_completed,
                    m.cumulative_shed
                );
                ExitCode::SUCCESS
            }
            MetricsReply::Rejected(r) => report_rejection(&r),
            _ => unexpected_reply(),
        }),
        ClientOp::Trace => client.trace(&parsed.id).map(|reply| match reply {
            TraceReply::Trace { capacity, requests } => {
                eprintln!("{} of {capacity} remembered requests", requests.len());
                for r in requests {
                    let trace = if r.trace_id.is_empty() {
                        String::new()
                    } else {
                        format!("\ttrace {}", r.trace_id)
                    };
                    println!(
                        "{}\t{}\tqueue {}ns\trun {}ns\t{} LUTs depth {}{trace}",
                        r.id, r.outcome, r.queue_ns, r.run_ns, r.luts, r.depth
                    );
                }
                ExitCode::SUCCESS
            }
            TraceReply::Rejected(r) => report_rejection(&r),
            _ => unexpected_reply(),
        }),
        ClientOp::Shutdown => client.shutdown(&parsed.id).map(|reply| match reply {
            ShutdownReply::Draining => {
                eprintln!("server is draining and will exit");
                ExitCode::SUCCESS
            }
            ShutdownReply::Rejected(r) => report_rejection(&r),
            _ => unexpected_reply(),
        }),
    };
    match outcome {
        Ok(code) => code,
        Err(e) => {
            eprintln!("chortle-serve: request failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn map_main(
    client: &mut Client,
    id: &str,
    template: MapRequest,
    inputs: &[String],
    batch: bool,
) -> ExitCode {
    if batch {
        let mut requests = Vec::new();
        for input in inputs {
            match read_input(Some(input)) {
                Ok(blif) => {
                    let mut req = template.clone();
                    req.blif = blif;
                    requests.push(req);
                }
                Err(msg) => {
                    eprintln!("chortle-serve: {msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if requests.is_empty() {
            // --batch with no file arguments: one entry from stdin.
            match read_input(None) {
                Ok(blif) => {
                    let mut req = template;
                    req.blif = blif;
                    requests.push(req);
                }
                Err(msg) => {
                    eprintln!("chortle-serve: {msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let reply = match client.map_batch(id, &requests) {
            Ok(reply) => reply,
            Err(e) => {
                eprintln!("chortle-serve: request failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match reply {
            BatchReply::Results(results) => {
                let mut code = ExitCode::SUCCESS;
                for (i, result) in results.iter().enumerate() {
                    match result {
                        MapReply::Mapped(m) => {
                            eprintln!(
                                "mapped [{i}]: {} LUTs, depth {} (cache generation {})",
                                m.luts, m.depth, m.cache_generation
                            );
                            print!("{}", m.netlist);
                        }
                        MapReply::Rejected(r) => {
                            eprintln!(
                                "chortle-serve: entry {i} rejected ({}): {}",
                                r.reason, r.detail
                            );
                            code = ExitCode::FAILURE;
                        }
                        _ => code = unexpected_reply(),
                    }
                }
                code
            }
            BatchReply::Rejected(r) => report_rejection(&r),
            _ => unexpected_reply(),
        }
    } else {
        let mut req = template;
        req.blif = match read_input(inputs.first().map(String::as_str)) {
            Ok(blif) => blif,
            Err(msg) => {
                eprintln!("chortle-serve: {msg}");
                return ExitCode::FAILURE;
            }
        };
        match client.map(id, &req) {
            Ok(MapReply::Mapped(m)) => {
                eprintln!(
                    "mapped: {} LUTs, depth {} (cache generation {})",
                    m.luts, m.depth, m.cache_generation
                );
                print!("{}", m.netlist);
                ExitCode::SUCCESS
            }
            Ok(MapReply::Rejected(r)) => report_rejection(&r),
            Ok(_) => unexpected_reply(),
            Err(e) => {
                eprintln!("chortle-serve: request failed: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

fn read_input(path: Option<&str>) -> Result<String, String> {
    match path {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
        None => {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            Ok(s)
        }
    }
}
