//! Per-client fair admission for the event-driven serving core.
//!
//! Replaces the PR-4 global `BoundedQueue`'s `queue_full` cliff with
//! a two-level policy (DESIGN.md §15):
//!
//! - **Per-client quotas**: each connection may have at most `quota`
//!   requests queued + in flight. A client that pipelines past its
//!   quota is shed with `over_quota` *without* starving anyone else —
//!   one greedy client can no longer fill the global queue.
//! - **Global capacity**: total queued work is still bounded
//!   (`capacity`); past it, admission sheds with `queue_full`.
//! - **Round-robin dispatch with priority preference**: workers pop
//!   the highest head-of-line priority among clients with pending
//!   work; among equal priorities, clients are served round-robin (the
//!   served client rotates to the back), so a saturating burst from N
//!   clients completes within one quota of each other — the fairness
//!   property `tests/server.rs` checks.
//! - **Shed hints instead of dead ends**: every shed carries a
//!   [`Shed`] with `retry_after_ms`, derived from the current backlog
//!   and an EWMA of observed service times — overload becomes "come
//!   back in N ms", not a hard wall.
//!
//! Zero-loss invariant (PR 4): once [`Admission::offer`] returns `Ok`,
//! the item *will* be popped and answered — `close()` stops admission
//! but never discards queued work; [`Admission::pop`] drains to empty
//! before returning `None`.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Why an offer was shed, plus the v2 hint payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Shed {
    /// Which limit was hit.
    pub reason: ShedReason,
    /// Suggested retry delay in milliseconds (backlog × EWMA service
    /// time ÷ workers, clamped to 1..=10_000).
    pub retry_after_ms: u64,
    /// The offering client's queued + in-flight count at shed time.
    pub client_queue_depth: usize,
}

/// The limit an offer ran into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ShedReason {
    /// The client's own quota was exhausted.
    OverQuota,
    /// The global queue was at capacity.
    QueueFull,
    /// The server is draining and admits nothing.
    Closed,
}

/// One popped unit of work: which client it belongs to and the item.
pub(crate) struct Popped<T> {
    /// The owning connection's id.
    pub cid: u64,
    /// The admitted item.
    pub item: T,
}

/// Per-client bookkeeping. A record exists only while the client has
/// queued or in-flight work — admission self-cleans, so thousands of
/// short-lived connections leave nothing behind.
struct ClientState<T> {
    /// FIFO of this client's queued items with their priorities.
    pending: VecDeque<(u8, T)>,
    /// Items popped by workers but not yet completed.
    in_flight: usize,
}

struct State<T> {
    clients: HashMap<u64, ClientState<T>>,
    /// Round-robin order over clients with non-empty `pending`; each
    /// cid appears at most once.
    rr: VecDeque<u64>,
    /// Total queued items across all clients.
    queued: usize,
    /// Total popped-but-not-completed items.
    in_flight: usize,
    /// Deepest `queued` has ever been.
    high_water: usize,
    closed: bool,
    /// EWMA of completed-request service time, seeding `retry_after_ms`
    /// hints. Starts at 2 ms — roughly a small warm-cache mapping — so
    /// the very first shed already gives a sane hint.
    avg_service_ns: u64,
}

/// The fair admission queue. Shared between the event loop (offers,
/// introspection) and the worker pool (pops, completions).
pub(crate) struct Admission<T> {
    state: Mutex<State<T>>,
    /// Signals workers that work arrived or the queue closed.
    ready: Condvar,
    capacity: usize,
    quota: usize,
    /// Worker count, for scaling retry hints.
    workers: usize,
}

impl<T> Admission<T> {
    pub fn new(capacity: usize, quota: usize, workers: usize) -> Self {
        Admission {
            state: Mutex::new(State {
                clients: HashMap::new(),
                rr: VecDeque::new(),
                queued: 0,
                in_flight: 0,
                high_water: 0,
                closed: false,
                avg_service_ns: 2_000_000,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            quota: quota.max(1),
            workers: workers.max(1),
        }
    }

    /// Computes the current retry hint from a locked state: how long
    /// the backlog should take to clear, spread across the workers.
    fn hint_ms(&self, state: &State<T>) -> u64 {
        let backlog = (state.queued + state.in_flight) as u64 + 1;
        let per_worker = backlog.div_ceil(self.workers as u64);
        (state.avg_service_ns.max(1_000_000) / 1_000_000)
            .saturating_mul(per_worker)
            .clamp(1, 10_000)
    }

    /// Offers one item on behalf of client `cid`. On admission returns
    /// the client's queued + in-flight depth *after* the push; on shed
    /// hands the item back with the typed reason and retry hint.
    pub fn offer(&self, cid: u64, priority: u8, item: T) -> Result<usize, (Shed, T)> {
        let mut state = self.state.lock().expect("admission poisoned");
        let outstanding = state
            .clients
            .get(&cid)
            .map_or(0, |c| c.pending.len() + c.in_flight);
        let shed = |state: &State<T>, reason| Shed {
            reason,
            retry_after_ms: self.hint_ms(state),
            client_queue_depth: outstanding,
        };
        if state.closed {
            return Err((shed(&state, ShedReason::Closed), item));
        }
        if outstanding >= self.quota {
            return Err((shed(&state, ShedReason::OverQuota), item));
        }
        if state.queued >= self.capacity {
            return Err((shed(&state, ShedReason::QueueFull), item));
        }
        let client = state.clients.entry(cid).or_insert_with(|| ClientState {
            pending: VecDeque::new(),
            in_flight: 0,
        });
        let newly_pending = client.pending.is_empty();
        client.pending.push_back((priority, item));
        if newly_pending {
            state.rr.push_back(cid);
        }
        state.queued += 1;
        state.high_water = state.high_water.max(state.queued);
        drop(state);
        self.ready.notify_one();
        Ok(outstanding + 1)
    }

    /// Blocks until work is available (or the queue is closed *and*
    /// drained — `None`). Picks the highest head-of-line priority in
    /// round-robin order and marks it in flight for its client.
    pub fn pop(&self) -> Option<Popped<T>> {
        let mut state = self.state.lock().expect("admission poisoned");
        loop {
            if state.queued > 0 {
                // Scan the rotation for the best head-of-line priority;
                // the earliest occurrence wins ties, so equal-priority
                // clients are served strictly round-robin.
                let mut best = 0usize;
                let mut best_priority = 0u8;
                for (i, cid) in state.rr.iter().enumerate() {
                    let head = state.clients[cid].pending.front().map_or(0, |(p, _)| *p);
                    if i == 0 || head > best_priority {
                        best = i;
                        best_priority = head;
                    }
                }
                let cid = state.rr.remove(best).expect("rr index in range");
                let client = state.clients.get_mut(&cid).expect("rr client exists");
                let (_, item) = client.pending.pop_front().expect("rr client has work");
                client.in_flight += 1;
                if !client.pending.is_empty() {
                    state.rr.push_back(cid);
                }
                state.queued -= 1;
                state.in_flight += 1;
                return Some(Popped { cid, item });
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .expect("admission poisoned while waiting");
        }
    }

    /// Marks one popped item finished, feeding its service time into
    /// the EWMA behind `retry_after_ms` hints. Call *after* the item's
    /// response frame has been queued for delivery — the event loop
    /// uses `outstanding == 0` as "safe to drop this connection".
    pub fn complete(&self, cid: u64, service_ns: u64) {
        let mut state = self.state.lock().expect("admission poisoned");
        state.avg_service_ns = (state.avg_service_ns * 7 + service_ns) / 8;
        state.in_flight = state.in_flight.saturating_sub(1);
        if let Some(client) = state.clients.get_mut(&cid) {
            client.in_flight = client.in_flight.saturating_sub(1);
            if client.pending.is_empty() && client.in_flight == 0 {
                state.clients.remove(&cid);
            }
        }
    }

    /// The client's queued + in-flight count (0 once everything it
    /// submitted has been completed).
    pub fn outstanding(&self, cid: u64) -> usize {
        let state = self.state.lock().expect("admission poisoned");
        state
            .clients
            .get(&cid)
            .map_or(0, |c| c.pending.len() + c.in_flight)
    }

    /// Total queued (not yet popped) items.
    pub fn len(&self) -> usize {
        self.state.lock().expect("admission poisoned").queued
    }

    /// Total queued + in-flight items across all clients.
    pub fn outstanding_total(&self) -> usize {
        let state = self.state.lock().expect("admission poisoned");
        state.queued + state.in_flight
    }

    /// Deepest the global queue has ever been.
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("admission poisoned").high_water
    }

    /// Stops admission (future offers shed `Closed`); queued work still
    /// drains through `pop`. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("admission poisoned");
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    /// The configured per-client quota.
    pub fn quota(&self) -> usize {
        self.quota
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_sheds_before_capacity() {
        let adm: Admission<u32> = Admission::new(100, 2, 1);
        assert_eq!(adm.offer(1, 0, 10), Ok(1));
        assert_eq!(adm.offer(1, 0, 11), Ok(2));
        let (shed, item) = adm.offer(1, 0, 12).unwrap_err();
        assert_eq!(shed.reason, ShedReason::OverQuota);
        assert_eq!(shed.client_queue_depth, 2);
        assert!(shed.retry_after_ms >= 1);
        assert_eq!(item, 12);
        // A different client still gets in.
        assert_eq!(adm.offer(2, 0, 20), Ok(1));
        assert_eq!(adm.len(), 3);
        assert_eq!(adm.high_water(), 3);
    }

    #[test]
    fn capacity_sheds_across_clients() {
        let adm: Admission<u32> = Admission::new(2, 10, 1);
        assert!(adm.offer(1, 0, 1).is_ok());
        assert!(adm.offer(2, 0, 2).is_ok());
        let (shed, _) = adm.offer(3, 0, 3).unwrap_err();
        assert_eq!(shed.reason, ShedReason::QueueFull);
        assert_eq!(shed.client_queue_depth, 0, "client 3 had nothing queued");
    }

    #[test]
    fn round_robin_interleaves_clients() {
        let adm: Admission<u32> = Admission::new(100, 10, 1);
        for i in 0..3 {
            adm.offer(1, 0, 100 + i).unwrap();
            adm.offer(2, 0, 200 + i).unwrap();
        }
        let order: Vec<u64> = (0..6).map(|_| adm.pop().unwrap().cid).collect();
        assert_eq!(order, [1, 2, 1, 2, 1, 2], "strict alternation");
    }

    #[test]
    fn priority_preempts_round_robin() {
        let adm: Admission<u32> = Admission::new(100, 10, 1);
        adm.offer(1, 0, 10).unwrap();
        adm.offer(2, 0, 20).unwrap();
        adm.offer(3, 5, 30).unwrap();
        let first = adm.pop().unwrap();
        assert_eq!((first.cid, first.item), (3, 30), "priority 5 jumps ahead");
        assert_eq!(adm.pop().unwrap().cid, 1);
        assert_eq!(adm.pop().unwrap().cid, 2);
    }

    #[test]
    fn close_drains_without_loss() {
        let adm: Admission<u32> = Admission::new(100, 10, 1);
        adm.offer(1, 0, 1).unwrap();
        adm.offer(1, 0, 2).unwrap();
        adm.close();
        assert_eq!(adm.offer(1, 0, 3).unwrap_err().0.reason, ShedReason::Closed);
        // Everything admitted before close still comes out...
        assert_eq!(adm.pop().unwrap().item, 1);
        assert_eq!(adm.pop().unwrap().item, 2);
        // ...and only then does pop report the end.
        assert!(adm.pop().is_none());
    }

    #[test]
    fn outstanding_tracks_in_flight_until_complete() {
        let adm: Admission<u32> = Admission::new(100, 10, 2);
        adm.offer(7, 0, 1).unwrap();
        assert_eq!(adm.outstanding(7), 1);
        let popped = adm.pop().unwrap();
        assert_eq!(adm.len(), 0);
        assert_eq!(adm.outstanding(7), 1, "in flight still counts");
        assert_eq!(adm.outstanding_total(), 1);
        adm.complete(popped.cid, 5_000_000);
        assert_eq!(adm.outstanding(7), 0);
        assert_eq!(adm.outstanding_total(), 0);
    }

    #[test]
    fn hints_scale_with_backlog_and_workers() {
        let one: Admission<u32> = Admission::new(100, 1, 1);
        one.offer(1, 0, 1).unwrap();
        let (shed_one, _) = one.offer(1, 0, 2).unwrap_err();
        let many: Admission<u32> = Admission::new(100, 1, 8);
        many.offer(1, 0, 1).unwrap();
        let (shed_many, _) = many.offer(1, 0, 2).unwrap_err();
        assert!(
            shed_one.retry_after_ms >= shed_many.retry_after_ms,
            "more workers clear the same backlog sooner ({} < {})",
            shed_one.retry_after_ms,
            shed_many.retry_after_ms
        );
    }
}
