//! The `chortle-serve` runtime: event loop, worker pool, warm cache,
//! fair admission, and graceful shutdown.
//!
//! ## Threading model
//!
//! One event-loop thread (the caller's thread in [`Server::run`]) owns
//! every connection: it accepts, reads, parses, admits, and writes —
//! see [`crate::event_loop`]. A fixed pool of worker threads pops
//! admitted jobs from the fair [`crate::admission::Admission`] queue,
//! runs the mapping pipeline, renders the response, and hands the
//! finished frame back to the loop. A client may pipeline requests
//! freely and receives exactly one line per request — or one line per
//! `map_batch` frame — with responses coalesced per poll iteration
//! into single writes (order may interleave across worker completion,
//! which is why responses echo the request `id`).
//!
//! Mapping parallelism is *not* per-request: every worker submits its
//! wavefront chunks into the mapper's process-wide work-stealing pool
//! (see `chortle`'s scheduler), so chunks from concurrent in-flight
//! requests interleave on the same deques and a burst of small requests
//! saturates the host instead of serializing behind one request's
//! waves. The per-request `CancelToken` (deadline) is honored
//! cooperatively at chunk boundaries, so one cancelled request never
//! stalls the pool for its neighbors.
//!
//! ## Admission
//!
//! Each connection may have at most `client_quota` requests queued or
//! in flight; total queued work is bounded by `queue_depth`. Workers
//! serve clients round-robin, preferring higher `priority` requests.
//! Sheds answer immediately — v2 rejections carry `retry_after_ms` and
//! `client_queue_depth` so clients back off instead of hammering.
//!
//! ## Shutdown
//!
//! A `shutdown` request (or stdin EOF in `--stdio` mode, or
//! [`ServerHandle::shutdown`]) flips the stopping flag and closes
//! admission. From that point new work is rejected with
//! `shutting_down`, queued and in-flight jobs drain to completion
//! (counted as `serve.drained`), their responses are delivered, and
//! [`Server::run`] returns the final aggregate [`ServerSummary`].

use std::collections::VecDeque;
use std::io::{self, BufRead};
use std::net::{Ipv4Addr, SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use chortle::WarmCache;
use chortle_telemetry::log::{self, FieldValue, Level};
use chortle_telemetry::{Report, Telemetry};

use crate::admission::Admission;
use crate::event_loop::{self, Completions, Job};
use crate::metrics::WindowAggregator;
use crate::proto::{self, BatchItem, MapPayload, RejectReason, RequestTrace, ServerLimits};
use crate::service;

/// Names of the aggregate counters, stages and histograms the server
/// reports — the closed `serve.*` counter namespace of telemetry schema
/// v1.4 (see [`chortle_telemetry::schema::SERVE_COUNTERS`]).
pub mod stats {
    /// Counter: TCP connections accepted (absent in `--stdio` mode).
    pub const CONNECTIONS: &str = "serve.connections";
    /// Counter: map requests admitted to the queue (batch entries count
    /// individually).
    pub const ACCEPTED: &str = "serve.accepted";
    /// Counter: map requests completed successfully.
    pub const COMPLETED: &str = "serve.completed";
    /// Counter: map requests shed at admission — the whole family
    /// (global `queue_full` plus per-client `over_quota`), keeping the
    /// pre-v1.4 meaning of "refused for load" intact.
    pub const REJECTED_QUEUE_FULL: &str = "serve.rejected_queue_full";
    /// Counter: map requests whose deadline expired (queued or mid-map).
    pub const REJECTED_DEADLINE: &str = "serve.rejected_deadline";
    /// Counter: malformed requests (protocol or BLIF).
    pub const REJECTED_BAD_REQUEST: &str = "serve.rejected_bad_request";
    /// Counter: map requests refused during shutdown.
    pub const REJECTED_SHUTDOWN: &str = "serve.rejected_shutdown";
    /// Counter: admitted requests completed *after* shutdown began —
    /// the graceful-drain guarantee, made visible.
    pub const DRAINED: &str = "serve.drained";
    /// Counter: warm-cache flush requests served.
    pub const FLUSHES: &str = "serve.flushes";
    /// Counter: `stats` introspection requests served.
    pub const STATS_REQUESTS: &str = "serve.stats_requests";
    /// Counter: `trace` introspection requests served.
    pub const TRACE_REQUESTS: &str = "serve.trace_requests";
    /// Counter: windowed `metrics` introspection requests served (v2).
    pub const METRICS_REQUESTS: &str = "serve.metrics_requests";
    /// Counter: `hello` version-negotiation requests served (v2).
    pub const HELLO_REQUESTS: &str = "serve.hello_requests";
    /// Counter: `map_batch` frames received (v2).
    pub const BATCH_FRAMES: &str = "serve.batch_frames";
    /// Counter: individual requests carried inside `map_batch` frames.
    pub const BATCH_REQUESTS: &str = "serve.batch_requests";
    /// Counter: response frames that shared a write with frames already
    /// buffered for the same connection (the small-frame fix).
    pub const COALESCED_FRAMES: &str = "serve.coalesced_frames";
    /// Counter: offers admitted by the fair admission queue.
    pub const ADMISSION_ADMITTED: &str = "serve.admission.admitted";
    /// Counter: offers shed because the client's quota was in use.
    pub const ADMISSION_SHED_OVER_QUOTA: &str = "serve.admission.shed_over_quota";
    /// Counter: offers shed because the global queue was at capacity.
    pub const ADMISSION_SHED_QUEUE_FULL: &str = "serve.admission.shed_queue_full";
    /// Counter: v2 rejections that carried a `retry_after_ms` hint.
    pub const ADMISSION_HINTED: &str = "serve.admission.hinted";
    /// Stage: wall time of each worker-executed request (queue wait
    /// excluded).
    pub const STAGE_REQUEST: &str = "serve.request";
    /// Histogram: nanoseconds each admitted job waited in the queue
    /// before a worker picked it up.
    pub const HIST_QUEUE_NS: &str = "serve.queue_ns";
    /// Histogram: nanoseconds each job spent executing on its worker —
    /// the same values echoed per response as `run_ns`, so clients can
    /// rebuild this histogram bucket-for-bucket.
    pub const HIST_RUN_NS: &str = "serve.run_ns";
    /// Histogram: the admitting client's queued + in-flight depth at
    /// each successful admission.
    pub const HIST_CLIENT_DEPTH: &str = "serve.admission.client_depth";
}

/// Server configuration. `#[non_exhaustive]` with a
/// [`ServeOptions::builder`], mirroring `MapOptions` — new knobs can
/// land without breaking embedders.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServeOptions {
    /// TCP port on 127.0.0.1 (0 picks an ephemeral port; ignored by
    /// [`serve_stdio`]).
    pub port: u16,
    /// Worker threads executing map requests (0 = host parallelism).
    pub workers: usize,
    /// Global admission queue capacity.
    pub queue_depth: usize,
    /// Per-client quota of queued + in-flight requests.
    pub client_quota: usize,
    /// Maximum requests per `map_batch` frame.
    pub batch_limit: usize,
    /// How many completed requests the `op: "trace"` ring remembers;
    /// older entries are evicted, so memory stays bounded.
    pub trace_capacity: usize,
    /// Address for the Prometheus text-exposition endpoint (e.g.
    /// `"127.0.0.1:9090"`); `None` (the default) serves no HTTP.
    pub metrics_addr: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            port: 0,
            workers: 0,
            queue_depth: 64,
            client_quota: 8,
            batch_limit: 64,
            trace_capacity: 128,
            metrics_addr: None,
        }
    }
}

impl ServeOptions {
    /// Starts a builder at the defaults (ephemeral port, host-sized
    /// worker pool, queue 64, quota 8, batch limit 64, trace ring 128).
    #[must_use]
    pub fn builder() -> ServeOptionsBuilder {
        ServeOptionsBuilder {
            options: ServeOptions::default(),
        }
    }
}

/// Builder for [`ServeOptions`] — the serving-side sibling of
/// `MapOptions::builder()`.
#[derive(Clone, Debug)]
pub struct ServeOptionsBuilder {
    options: ServeOptions,
}

impl ServeOptionsBuilder {
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port.
    #[must_use]
    pub fn port(mut self, port: u16) -> Self {
        self.options.port = port;
        self
    }

    /// Worker threads executing map requests; 0 = host parallelism.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.options.workers = workers;
        self
    }

    /// Global admission queue capacity (clamped to at least 1).
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.options.queue_depth = depth;
        self
    }

    /// Per-client quota of queued + in-flight requests (clamped to at
    /// least 1).
    #[must_use]
    pub fn client_quota(mut self, quota: usize) -> Self {
        self.options.client_quota = quota;
        self
    }

    /// Maximum requests per `map_batch` frame (clamped to at least 1).
    #[must_use]
    pub fn batch_limit(mut self, limit: usize) -> Self {
        self.options.batch_limit = limit;
        self
    }

    /// `op: "trace"` ring capacity (clamped to at least 1).
    #[must_use]
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.options.trace_capacity = capacity;
        self
    }

    /// Prometheus exposition endpoint address (`None` disables it).
    #[must_use]
    pub fn metrics_addr(mut self, addr: Option<String>) -> Self {
        self.options.metrics_addr = addr;
        self
    }

    /// Finalizes the options. Size knobs are clamped to at least 1 —
    /// a zero-capacity queue or quota would admit nothing, which is
    /// never what a caller means.
    #[must_use]
    pub fn build(mut self) -> ServeOptions {
        self.options.queue_depth = self.options.queue_depth.max(1);
        self.options.client_quota = self.options.client_quota.max(1);
        self.options.batch_limit = self.options.batch_limit.max(1);
        self.options.trace_capacity = self.options.trace_capacity.max(1);
        self.options
    }
}

/// What [`Server::run`] (and [`serve_stdio`]) return after the drain.
#[derive(Clone, Debug)]
pub struct ServerSummary {
    /// The aggregate server telemetry report (`serve.*` counters, the
    /// per-request stage, the latency and client-depth histograms) —
    /// schema-valid `chortle-telemetry/v1.7`.
    pub report: Report,
    /// Final warm-cache generation.
    pub cache_generation: u64,
    /// Distinct shape solutions left in the warm cache.
    pub cache_shapes: usize,
}

/// State shared by the event loop and the workers.
pub(crate) struct Shared {
    /// The fair admission queue feeding the workers.
    pub admission: Admission<Job>,
    /// Finished response frames travelling back to the delivery thread.
    pub completions: Completions,
    /// The process-wide warm DP cache.
    pub warm: WarmCache,
    pub telemetry: Telemetry,
    stopping: AtomicBool,
    /// When the server started — the `uptime_s` baseline of `stats`.
    pub started: Instant,
    /// The `op: "trace"` ring: the last `trace_capacity` completed
    /// requests, oldest first.
    pub ring: Mutex<VecDeque<RequestTrace>>,
    pub trace_capacity: usize,
    /// Completed-request traces evicted from the bounded ring since
    /// startup — the v2 `stats` field `trace_dropped`.
    pub trace_evicted: AtomicU64,
    /// The sliding-window metrics aggregator behind `op: "metrics"`
    /// and the Prometheus endpoint.
    pub window: WindowAggregator,
    /// The limits `hello` advertises (also the batch-size gate).
    pub limits: ServerLimits,
}

impl Shared {
    fn new(options: &ServeOptions, workers: usize) -> Self {
        let queue_depth = options.queue_depth.max(1);
        let quota = options.client_quota.max(1);
        let batch_limit = options.batch_limit.max(1);
        let telemetry = Telemetry::enabled();
        // With logging on, mirror log volume into the closed `log.*`
        // counter namespace of this server's own report.
        if log::enabled(Level::Error) {
            log::set_counter_sink(telemetry.clone());
        }
        Shared {
            admission: Admission::new(queue_depth, quota, workers),
            completions: Completions::new(),
            warm: WarmCache::new(),
            telemetry,
            stopping: AtomicBool::new(false),
            started: Instant::now(),
            ring: Mutex::new(VecDeque::with_capacity(options.trace_capacity.min(1024))),
            trace_capacity: options.trace_capacity.max(1),
            trace_evicted: AtomicU64::new(0),
            window: WindowAggregator::new(60),
            limits: ServerLimits {
                quota,
                queue_depth,
                batch_limit,
            },
        }
    }

    /// Remembers one completed request in the bounded trace ring,
    /// counting what the bound evicts.
    fn remember(&self, entry: RequestTrace) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.len() == self.trace_capacity {
            ring.pop_front();
            self.trace_evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(entry);
    }

    pub fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }

    /// Flips into drain mode exactly once: stop admitting, close the
    /// queue, wake the workers and the delivery thread.
    pub fn initiate_shutdown(&self) {
        if self.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        if log::enabled(Level::Info) {
            log::event(
                Level::Info,
                "serve.shutdown",
                "drain initiated: admission closed, in-flight work completing",
                &[
                    ("queued", FieldValue::U64(self.admission.len() as u64)),
                    (
                        "uptime_s",
                        FieldValue::U64(self.started.elapsed().as_secs()),
                    ),
                ],
            );
        }
        self.admission.close();
        self.completions.notify();
    }

    fn summary(&self) -> ServerSummary {
        ServerSummary {
            report: self.telemetry.snapshot(),
            cache_generation: self.warm.generation(),
            cache_shapes: self.warm.shapes(),
        }
    }
}

/// One worker: pop, execute, render, deliver, complete — until the
/// queue closes and drains.
fn worker_loop(shared: &Shared) {
    while let Some(popped) = shared.admission.pop() {
        let job = popped.item;
        let draining = shared.stopping();
        let start = Instant::now();
        let queue_wait = start.duration_since(job.admitted);
        let expired = job.deadline.is_some_and(|d| Instant::now() >= d);
        let result = if expired {
            Err((
                RejectReason::DeadlineExceeded,
                "deadline expired while queued".to_owned(),
            ))
        } else if job.req.design {
            service::execute_design(&job.req, &shared.warm, service::cancel_for(job.deadline))
        } else {
            service::execute_map(&job.req, &shared.warm, service::cancel_for(job.deadline))
        };
        let run = start.elapsed();
        let run_ns = u64::try_from(run.as_nanos()).unwrap_or(u64::MAX);
        let queue_ns = u64::try_from(queue_wait.as_nanos()).unwrap_or(u64::MAX);
        // Record the latency samples BEFORE queueing the response: a
        // client that has this response in hand may immediately ask
        // op:"stats" and must find its own request already bucketed
        // (loadgen asserts the rebuilt histogram matches
        // bucket-for-bucket).
        shared
            .telemetry
            .record_value(stats::HIST_QUEUE_NS, queue_ns);
        shared.telemetry.record_value(stats::HIST_RUN_NS, run_ns);
        shared
            .telemetry
            .record_stage(stats::STAGE_REQUEST, run.as_secs_f64());
        let item = match result {
            Ok(outcome) => {
                shared.telemetry.add_counter(stats::COMPLETED, 1);
                if draining {
                    shared.telemetry.add_counter(stats::DRAINED, 1);
                }
                shared.remember(RequestTrace {
                    id: job.id.clone(),
                    outcome: "ok".to_owned(),
                    queue_ns,
                    run_ns,
                    luts: outcome.luts,
                    depth: outcome.depth,
                    trace_id: job.req.trace_id.clone(),
                });
                BatchItem::Mapped(MapPayload {
                    luts: outcome.luts,
                    depth: outcome.depth,
                    cache_generation: shared.warm.generation(),
                    run_ns,
                    netlist: outcome.netlist,
                    report_json: outcome.report_json,
                    trace_id: job.req.trace_id.clone(),
                })
            }
            Err((reason, detail)) => {
                let counter = match reason {
                    RejectReason::DeadlineExceeded => Some(stats::REJECTED_DEADLINE),
                    RejectReason::BadRequest => Some(stats::REJECTED_BAD_REQUEST),
                    _ => None,
                };
                if let Some(name) = counter {
                    shared.telemetry.add_counter(name, 1);
                }
                shared.remember(RequestTrace {
                    id: job.id.clone(),
                    outcome: reason.as_str().to_owned(),
                    queue_ns,
                    run_ns,
                    luts: 0,
                    depth: 0,
                    trace_id: job.req.trace_id.clone(),
                });
                BatchItem::Rejected {
                    reason,
                    detail,
                    hint: None,
                }
            }
        };
        if log::enabled(Level::Debug) {
            let outcome = match &item {
                BatchItem::Mapped(_) => "ok",
                BatchItem::Rejected { reason, .. } => reason.as_str(),
            };
            log::event(
                Level::Debug,
                "serve.request",
                "request finished",
                &[
                    ("id", FieldValue::Str(&job.id)),
                    ("trace_id", FieldValue::Str(&job.req.trace_id)),
                    ("outcome", FieldValue::Str(outcome)),
                    ("queue_ns", FieldValue::U64(queue_ns)),
                    ("run_ns", FieldValue::U64(run_ns)),
                ],
            );
        }
        // Deliver the frame BEFORE completing: the event loop treats
        // "no outstanding work" as "every frame already pushed" when it
        // decides a connection is safe to drop.
        match &job.batch {
            None => {
                let frame = match &item {
                    BatchItem::Mapped(payload) if job.req.design => {
                        proto::render_map_design_ok(&job.id, payload)
                    }
                    BatchItem::Mapped(payload) => {
                        proto::render_map_ok(job.version, &job.id, payload)
                    }
                    BatchItem::Rejected {
                        reason,
                        detail,
                        hint,
                    } => {
                        proto::render_rejected(job.version, &job.id, *reason, detail, hint.as_ref())
                    }
                };
                shared.completions.push(job.cid, frame);
            }
            Some((state, index)) => {
                if state.store(*index, item) {
                    let frame = state.render();
                    shared.completions.push(state.cid, frame);
                }
            }
        }
        shared.admission.complete(popped.cid, run_ns);
    }
}

fn spawn_workers(shared: &Arc<Shared>, count: usize) -> Vec<std::thread::JoinHandle<()>> {
    (0..count)
        .map(|i| {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("chortle-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect()
}

fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    }
}

/// A bound, not-yet-running server. Construct with [`Server::bind`],
/// inspect [`Server::local_addr`], then consume with [`Server::run`].
pub struct Server {
    listener: TcpListener,
    /// The Prometheus exposition listener, when configured.
    metrics: Option<TcpListener>,
    shared: Arc<Shared>,
    workers: usize,
}

/// A clonable remote control for a running [`Server`] — lets tests and
/// embedders trigger the same graceful shutdown a `shutdown` request
/// does, and watch the warm cache.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Initiates graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Current warm-cache generation.
    pub fn cache_generation(&self) -> u64 {
        self.shared.warm.generation()
    }
}

impl Server {
    /// Binds `127.0.0.1:options.port` (port 0 picks an ephemeral port —
    /// read it back via [`Server::local_addr`]) and, when
    /// `options.metrics_addr` is set, the Prometheus exposition
    /// listener next to it.
    ///
    /// # Errors
    ///
    /// Propagates either bind failure (port in use, no loopback, …).
    pub fn bind(options: &ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, options.port))?;
        let metrics = match &options.metrics_addr {
            Some(addr) => Some(TcpListener::bind(addr.as_str())?),
            None => None,
        };
        let workers = resolve_workers(options.workers);
        Ok(Server {
            listener,
            metrics,
            shared: Arc::new(Shared::new(options, workers)),
            workers,
        })
    }

    /// The bound address (loopback; the port is the interesting part).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure (never expected on a
    /// bound listener).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound Prometheus exposition address, when one was
    /// configured via [`ServeOptions::metrics_addr`].
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().and_then(|m| m.local_addr().ok())
    }

    /// A remote control valid for this server's whole lifetime.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until a `shutdown` request (or [`ServerHandle::shutdown`])
    /// completes the drain; returns the aggregate summary.
    pub fn run(self) -> ServerSummary {
        let workers = spawn_workers(&self.shared, self.workers);
        event_loop::run(&self.listener, self.metrics.as_ref(), &self.shared);
        // The queue is closed (initiate_shutdown); wait for the drain.
        for handle in workers {
            handle.join().expect("worker panicked");
        }
        self.shared.summary()
    }
}

/// The shared daemon entry point behind `chortle-serve` and
/// `chortle-map serve`: parses `args` against the serve flag table,
/// binds (or goes stdio), prints `listening on ADDR` to stderr, serves
/// until shutdown, and prints the final aggregate report — to stdout in
/// TCP mode, to stderr in stdio mode (where the protocol owns stdout).
///
/// Returns the process exit code. `invocation` titles the help text.
pub fn run_daemon(invocation: &str, args: impl Iterator<Item = String>) -> std::process::ExitCode {
    use std::process::ExitCode;
    let parsed = match crate::args::ServeArgs::parse(invocation, args) {
        Ok(Some(parsed)) => parsed,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{invocation}: {msg} (try --help)");
            return ExitCode::FAILURE;
        }
    };
    // Logging is off unless a flag (or CHORTLE_LOG / CHORTLE_LOG_FILE)
    // turns it on — the quiet default keeps stderr and the final
    // report byte-identical to pre-v1.7 daemons.
    if let Err(msg) = log::init_from(parsed.log_level.as_deref(), parsed.log_file.as_deref()) {
        eprintln!("{invocation}: {msg}");
        return ExitCode::FAILURE;
    }
    let options = parsed.options();
    if parsed.stdio {
        let summary = serve_stdio(&options);
        eprintln!("{}", summary.report.to_json());
        return ExitCode::SUCCESS;
    }
    let server = match Server::bind(&options) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("{invocation}: cannot bind 127.0.0.1:{}: {e}", options.port);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!("listening on {addr}"),
        Err(e) => {
            eprintln!("{invocation}: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(addr) = server.metrics_addr() {
        eprintln!("metrics on http://{addr}/metrics");
    }
    let summary = server.run();
    println!("{}", summary.report.to_json());
    ExitCode::SUCCESS
}

/// Serves newline-delimited JSON on stdin/stdout — same protocol (both
/// versions), same admission, same worker pool, no socket. EOF on stdin
/// (or a `shutdown` request) starts the drain. Useful under process
/// supervisors and for piping.
///
/// Implementation: the caller's thread reads stdin (connection id 0); a
/// writer thread drains the completions queue to stdout, so pipelined
/// and batched requests stream answers as they finish, exactly like the
/// TCP loop.
pub fn serve_stdio(options: &ServeOptions) -> ServerSummary {
    let shared = Arc::new(Shared::new(options, resolve_workers(options.workers)));
    let workers = spawn_workers(&shared, resolve_workers(options.workers));
    let writer = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("chortle-serve-stdout".to_owned())
            .spawn(move || stdio_writer(&shared))
            .expect("spawn stdout writer")
    };
    for line in io::stdin().lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        event_loop::dispatch(&shared, 0, &line);
        if shared.stopping() {
            break;
        }
    }
    shared.initiate_shutdown();
    for handle in workers {
        handle.join().expect("worker panicked");
    }
    // All frames are pushed (workers joined); wake the writer so it
    // observes the drained state and exits after the final flush.
    shared.completions.notify();
    writer.join().expect("stdout writer panicked");
    shared.summary()
}

/// Drains completed frames to stdout until shutdown finishes.
fn stdio_writer(shared: &Shared) {
    use std::io::Write as _;
    let stdout = io::stdout();
    loop {
        let frames = shared.completions.drain();
        if !frames.is_empty() {
            let mut out = stdout.lock();
            for (_, frame) in &frames {
                let _ = out.write_all(frame.as_bytes());
                let _ = out.write_all(b"\n");
            }
            let _ = out.flush();
            continue;
        }
        // Order matters: outstanding first, queue second. Workers push
        // a job's frame before completing it, so once outstanding hits
        // zero every frame is either drained already or visible to the
        // emptiness check here.
        if shared.stopping()
            && shared.admission.outstanding_total() == 0
            && shared.completions.is_empty()
        {
            break;
        }
        shared.completions.wait(Duration::from_millis(2));
    }
}
