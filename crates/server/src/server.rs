//! The `chortle-serve` runtime: listener, connection readers, worker
//! pool, warm cache, and graceful shutdown.
//!
//! ## Threading model
//!
//! One accept loop (the caller's thread in [`Server::run`]) spawns a
//! detached reader thread per connection. Readers parse requests and
//! either answer immediately (admin ops, rejections) or push a job into
//! the bounded [`BoundedQueue`]; a fixed pool of worker threads pops
//! jobs and runs the mapping pipeline. Responses go back through a
//! per-connection mutexed writer, so a client may pipeline requests and
//! receives exactly one line per request (order may interleave across
//! *worker* completion, which is why responses echo the request `id`).
//!
//! Mapping parallelism is *not* per-request: every worker submits its
//! wavefront chunks into the mapper's process-wide work-stealing pool
//! (see `chortle`'s scheduler), so chunks from concurrent in-flight
//! requests interleave on the same deques and a burst of small requests
//! saturates the host instead of serializing behind one request's
//! waves. Per-request completion is tracked by each wave's latch, and
//! the per-request `CancelToken` (deadline or shutdown) is honored
//! cooperatively at chunk boundaries, so one cancelled request never
//! stalls the pool for its neighbors.
//!
//! ## Shutdown
//!
//! A `shutdown` request (or stdin EOF in `--stdio` mode) flips the
//! stopping flag, closes the queue, and wakes the accept loop with a
//! loopback self-connection. From that point new work is rejected with
//! `shutting_down`, queued and in-flight jobs drain to completion
//! (counted as `serve.drained`), workers exit on the drained queue, and
//! [`Server::run`] returns the final aggregate [`ServerSummary`].

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use chortle::WarmCache;
use chortle_telemetry::{Report, Telemetry};

use crate::proto::{
    parse_request, render_flush_ok, render_map_ok, render_rejected, render_shutdown_ok,
    render_stats_ok, render_trace_ok, MapRequest, Op, RejectReason, RequestTrace,
};
use crate::queue::{BoundedQueue, PushError};
use crate::service;

/// Names of the aggregate counters, stages and histograms the server
/// reports — the closed `serve.*` counter namespace of telemetry schema
/// v1.3 (see [`chortle_telemetry::schema::SERVE_COUNTERS`]).
pub mod stats {
    /// Counter: TCP connections accepted (absent in `--stdio` mode).
    pub const CONNECTIONS: &str = "serve.connections";
    /// Counter: map requests admitted to the queue.
    pub const ACCEPTED: &str = "serve.accepted";
    /// Counter: map requests completed successfully.
    pub const COMPLETED: &str = "serve.completed";
    /// Counter: map requests refused because the queue was full.
    pub const REJECTED_QUEUE_FULL: &str = "serve.rejected_queue_full";
    /// Counter: map requests whose deadline expired (queued or mid-map).
    pub const REJECTED_DEADLINE: &str = "serve.rejected_deadline";
    /// Counter: malformed requests (protocol or BLIF).
    pub const REJECTED_BAD_REQUEST: &str = "serve.rejected_bad_request";
    /// Counter: map requests refused during shutdown.
    pub const REJECTED_SHUTDOWN: &str = "serve.rejected_shutdown";
    /// Counter: admitted requests completed *after* shutdown began —
    /// the graceful-drain guarantee, made visible.
    pub const DRAINED: &str = "serve.drained";
    /// Counter: warm-cache flush requests served.
    pub const FLUSHES: &str = "serve.flushes";
    /// Counter: `stats` introspection requests served.
    pub const STATS_REQUESTS: &str = "serve.stats_requests";
    /// Counter: `trace` introspection requests served.
    pub const TRACE_REQUESTS: &str = "serve.trace_requests";
    /// Stage: wall time of each worker-executed request (queue wait
    /// excluded).
    pub const STAGE_REQUEST: &str = "serve.request";
    /// Histogram: nanoseconds each admitted job waited in the queue
    /// before a worker picked it up.
    pub const HIST_QUEUE_NS: &str = "serve.queue_ns";
    /// Histogram: nanoseconds each job spent executing on its worker —
    /// the same values echoed per response as `run_ns`, so clients can
    /// rebuild this histogram bucket-for-bucket.
    pub const HIST_RUN_NS: &str = "serve.run_ns";
}

/// Server configuration (transport-independent).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing map requests (0 = host parallelism).
    pub workers: usize,
    /// Admission queue capacity; pushes beyond it answer `queue_full`.
    pub queue_capacity: usize,
    /// How many completed requests the `op: "trace"` ring remembers;
    /// older entries are evicted, so memory stays bounded.
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 64,
            trace_capacity: 128,
        }
    }
}

/// What [`Server::run`] (and [`serve_stdio`]) return after the drain.
#[derive(Clone, Debug)]
pub struct ServerSummary {
    /// The aggregate server telemetry report (`serve.*` counters, the
    /// per-request stage, the queue-wait and run-time histograms) —
    /// schema-valid `chortle-telemetry/v1.3`.
    pub report: Report,
    /// Final warm-cache generation.
    pub cache_generation: u64,
    /// Distinct shape solutions left in the warm cache.
    pub cache_shapes: usize,
}

/// One queued map job: the request plus everything needed to answer it.
struct Job {
    id: String,
    req: MapRequest,
    deadline: Option<Instant>,
    /// When the job entered the queue — the start of its queue-wait
    /// measurement.
    admitted: Instant,
    out: Responder,
}

/// A clonable, mutexed line writer shared by all responders of one
/// connection.
#[derive(Clone)]
struct Responder {
    conn: Arc<Mutex<ResponderConn>>,
}

/// The per-connection write state: the sink plus one frame buffer that
/// is reused for every response on this connection (it grows to the
/// largest frame once, then every later send is allocation-free — the
/// per-frame allocation used to dominate warm serving of small
/// netlists).
struct ResponderConn {
    sink: Box<dyn Write + Send>,
    frame: String,
}

impl Responder {
    fn new(sink: Box<dyn Write + Send>) -> Self {
        Responder {
            conn: Arc::new(Mutex::new(ResponderConn {
                sink,
                frame: String::new(),
            })),
        }
    }

    /// Writes one response line. A single write call per response —
    /// split writes on a TCP stream invite Nagle/delayed-ACK stalls.
    /// Write errors are swallowed: a client that hung up forfeits its
    /// answers, never the server.
    fn send(&self, line: &str) {
        let mut conn = self.conn.lock().expect("responder poisoned");
        let ResponderConn { sink, frame } = &mut *conn;
        frame.clear();
        frame.push_str(line);
        frame.push('\n');
        let _ = sink.write_all(frame.as_bytes());
        let _ = sink.flush();
    }
}

/// State shared by the accept loop, connection readers, and workers.
struct Shared {
    queue: BoundedQueue<Job>,
    warm: WarmCache,
    telemetry: Telemetry,
    stopping: AtomicBool,
    /// When the server started — the `uptime_s` baseline of `stats`.
    started: Instant,
    /// The `op: "trace"` ring: the last `trace_capacity` completed
    /// requests, oldest first.
    ring: Mutex<VecDeque<RequestTrace>>,
    trace_capacity: usize,
    /// The listener's address, used to self-connect and wake the accept
    /// loop on shutdown (`None` in stdio mode — nothing to wake).
    addr: Option<SocketAddr>,
}

impl Shared {
    fn new(config: &ServeConfig, addr: Option<SocketAddr>) -> Self {
        Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            warm: WarmCache::new(),
            telemetry: Telemetry::enabled(),
            stopping: AtomicBool::new(false),
            started: Instant::now(),
            ring: Mutex::new(VecDeque::with_capacity(config.trace_capacity.min(1024))),
            trace_capacity: config.trace_capacity.max(1),
            addr,
        }
    }

    /// Remembers one completed request in the bounded trace ring.
    fn remember(&self, entry: RequestTrace) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.len() == self.trace_capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }

    /// Flips into drain mode exactly once: stop admitting, close the
    /// queue, wake the accept loop.
    fn initiate_shutdown(&self) {
        if self.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        self.queue.close();
        if let Some(addr) = self.addr {
            // The accept loop is (probably) parked in accept(); a
            // loopback connection wakes it to observe the flag. Failure
            // is harmless — the loop also checks per accepted stream.
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }
    }

    fn summary(&self) -> ServerSummary {
        ServerSummary {
            report: self.telemetry.snapshot(),
            cache_generation: self.warm.generation(),
            cache_shapes: self.warm.shapes(),
        }
    }
}

/// Handles one request line; `Break` means "stop reading this input"
/// (after a shutdown request).
fn dispatch(shared: &Shared, line: &str, out: &Responder) -> std::ops::ControlFlow<()> {
    use std::ops::ControlFlow::{Break, Continue};
    let telemetry = &shared.telemetry;
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(e) => {
            telemetry.add_counter(stats::REJECTED_BAD_REQUEST, 1);
            out.send(&render_rejected(&e.id, RejectReason::BadRequest, &e.detail));
            return Continue(());
        }
    };
    match request.op {
        Op::Map(req) => {
            if shared.stopping() {
                telemetry.add_counter(stats::REJECTED_SHUTDOWN, 1);
                out.send(&render_rejected(
                    &request.id,
                    RejectReason::ShuttingDown,
                    "server is draining and no longer admits work",
                ));
                return Continue(());
            }
            // The deadline clock starts at admission: time spent queued
            // counts against it.
            let deadline = req
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms));
            let job = Job {
                id: request.id,
                req,
                deadline,
                admitted: Instant::now(),
                out: out.clone(),
            };
            match shared.queue.try_push(job) {
                Ok(()) => telemetry.add_counter(stats::ACCEPTED, 1),
                Err(PushError::Full(job)) => {
                    telemetry.add_counter(stats::REJECTED_QUEUE_FULL, 1);
                    job.out.send(&render_rejected(
                        &job.id,
                        RejectReason::QueueFull,
                        "admission queue is full; retry later",
                    ));
                }
                Err(PushError::Closed(job)) => {
                    telemetry.add_counter(stats::REJECTED_SHUTDOWN, 1);
                    job.out.send(&render_rejected(
                        &job.id,
                        RejectReason::ShuttingDown,
                        "server is draining and no longer admits work",
                    ));
                }
            }
            Continue(())
        }
        Op::Flush => {
            let generation = shared.warm.flush();
            telemetry.add_counter(stats::FLUSHES, 1);
            out.send(&render_flush_ok(&request.id, generation));
            Continue(())
        }
        Op::Stats => {
            telemetry.add_counter(stats::STATS_REQUESTS, 1);
            out.send(&render_stats_ok(
                &request.id,
                shared.warm.generation(),
                shared.started.elapsed().as_secs(),
                shared.queue.len(),
                shared.queue.high_water(),
                &shared.telemetry.snapshot().to_json(),
            ));
            Continue(())
        }
        Op::Trace => {
            telemetry.add_counter(stats::TRACE_REQUESTS, 1);
            let entries: Vec<RequestTrace> = {
                let ring = shared.ring.lock().expect("trace ring poisoned");
                ring.iter().cloned().collect()
            };
            out.send(&render_trace_ok(
                &request.id,
                shared.trace_capacity,
                &entries,
            ));
            Continue(())
        }
        Op::Shutdown => {
            out.send(&render_shutdown_ok(&request.id));
            shared.initiate_shutdown();
            Break(())
        }
    }
}

/// One worker: pop, execute, respond — until the queue closes and
/// drains.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let draining = shared.stopping();
        let start = Instant::now();
        let queue_wait = start.duration_since(job.admitted);
        let expired = job.deadline.is_some_and(|d| Instant::now() >= d);
        let result = if expired {
            Err((
                RejectReason::DeadlineExceeded,
                "deadline expired while queued".to_owned(),
            ))
        } else {
            service::execute_map(&job.req, &shared.warm, service::cancel_for(job.deadline))
        };
        let run = start.elapsed();
        let run_ns = u64::try_from(run.as_nanos()).unwrap_or(u64::MAX);
        let queue_ns = u64::try_from(queue_wait.as_nanos()).unwrap_or(u64::MAX);
        // Record the latency samples BEFORE answering: a client that
        // has this response in hand may immediately ask op:"stats" and
        // must find its own request already bucketed (loadgen asserts
        // the rebuilt histogram matches bucket-for-bucket).
        shared
            .telemetry
            .record_value(stats::HIST_QUEUE_NS, queue_ns);
        shared.telemetry.record_value(stats::HIST_RUN_NS, run_ns);
        shared
            .telemetry
            .record_stage(stats::STAGE_REQUEST, run.as_secs_f64());
        match result {
            Ok(outcome) => {
                shared.telemetry.add_counter(stats::COMPLETED, 1);
                if draining {
                    shared.telemetry.add_counter(stats::DRAINED, 1);
                }
                shared.remember(RequestTrace {
                    id: job.id.clone(),
                    outcome: "ok".to_owned(),
                    queue_ns,
                    run_ns,
                    luts: outcome.luts,
                    depth: outcome.depth,
                });
                job.out.send(&render_map_ok(
                    &job.id,
                    outcome.luts,
                    outcome.depth,
                    shared.warm.generation(),
                    run_ns,
                    &outcome.netlist,
                    &outcome.report_json,
                ));
            }
            Err((reason, detail)) => {
                let counter = match reason {
                    RejectReason::DeadlineExceeded => Some(stats::REJECTED_DEADLINE),
                    RejectReason::BadRequest => Some(stats::REJECTED_BAD_REQUEST),
                    _ => None,
                };
                if let Some(name) = counter {
                    shared.telemetry.add_counter(name, 1);
                }
                shared.remember(RequestTrace {
                    id: job.id.clone(),
                    outcome: reason.as_str().to_owned(),
                    queue_ns,
                    run_ns,
                    luts: 0,
                    depth: 0,
                });
                job.out.send(&render_rejected(&job.id, reason, &detail));
            }
        }
    }
}

fn spawn_workers(shared: &Arc<Shared>, count: usize) -> Vec<std::thread::JoinHandle<()>> {
    (0..count)
        .map(|i| {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("chortle-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect()
}

fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    }
}

/// Reads one connection until EOF/shutdown, dispatching each line.
fn serve_connection(shared: Arc<Shared>, stream: TcpStream) {
    // Responses are small (or single bulk writes); latency matters more
    // than segment coalescing on a request/response protocol.
    let _ = stream.set_nodelay(true);
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let out = Responder::new(Box::new(writer));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if dispatch(&shared, &line, &out).is_break() {
            break;
        }
    }
}

/// A bound, not-yet-running server. Construct with [`Server::bind`],
/// inspect [`Server::local_addr`], then consume with [`Server::run`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
}

/// A clonable remote control for a running [`Server`] — lets tests and
/// embedders trigger the same graceful shutdown a `shutdown` request
/// does, and watch the warm cache.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Initiates graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Current warm-cache generation.
    pub fn cache_generation(&self) -> u64 {
        self.shared.warm.generation()
    }
}

impl Server {
    /// Binds `127.0.0.1:port` (`port` 0 picks an ephemeral port —
    /// read it back via [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port in use, no loopback, …).
    pub fn bind(port: u16, config: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared::new(config, Some(addr))),
            workers: resolve_workers(config.workers),
        })
    }

    /// The bound address (loopback; the port is the interesting part).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure (never expected on a
    /// bound listener).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A remote control valid for this server's whole lifetime.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until a `shutdown` request (or [`ServerHandle::shutdown`])
    /// completes the drain; returns the aggregate summary.
    pub fn run(self) -> ServerSummary {
        let workers = spawn_workers(&self.shared, self.workers);
        for stream in self.listener.incoming() {
            if self.shared.stopping() {
                break; // woken (possibly by the self-connection)
            }
            let Ok(stream) = stream else { continue };
            self.shared.telemetry.add_counter(stats::CONNECTIONS, 1);
            let shared = Arc::clone(&self.shared);
            // Detached on purpose: a reader blocked on a quiet client
            // must not block the drain. Workers finishing admitted jobs
            // are what shutdown waits for.
            let _ = std::thread::Builder::new()
                .name("chortle-serve-conn".to_owned())
                .spawn(move || serve_connection(shared, stream));
        }
        // The queue is closed (initiate_shutdown); wait for the drain.
        for handle in workers {
            handle.join().expect("worker panicked");
        }
        self.shared.summary()
    }
}

/// The shared daemon entry point behind `chortle-serve` and
/// `chortle-map serve`: parses `args` against the serve flag table,
/// binds (or goes stdio), prints `listening on ADDR` to stderr, serves
/// until shutdown, and prints the final aggregate report — to stdout in
/// TCP mode, to stderr in stdio mode (where the protocol owns stdout).
///
/// Returns the process exit code. `invocation` titles the help text.
pub fn run_daemon(invocation: &str, args: impl Iterator<Item = String>) -> std::process::ExitCode {
    use std::process::ExitCode;
    let parsed = match crate::args::ServeArgs::parse(invocation, args) {
        Ok(Some(parsed)) => parsed,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{invocation}: {msg} (try --help)");
            return ExitCode::FAILURE;
        }
    };
    if parsed.stdio {
        let summary = serve_stdio(&parsed.config());
        eprintln!("{}", summary.report.to_json());
        return ExitCode::SUCCESS;
    }
    let server = match Server::bind(parsed.port, &parsed.config()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("{invocation}: cannot bind 127.0.0.1:{}: {e}", parsed.port);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!("listening on {addr}"),
        Err(e) => {
            eprintln!("{invocation}: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    let summary = server.run();
    println!("{}", summary.report.to_json());
    ExitCode::SUCCESS
}

/// Serves newline-delimited JSON on stdin/stdout — same protocol, same
/// worker pool, no socket. EOF on stdin (or a `shutdown` request)
/// starts the drain. Useful under process supervisors and for piping.
pub fn serve_stdio(config: &ServeConfig) -> ServerSummary {
    let shared = Arc::new(Shared::new(config, None));
    let workers = spawn_workers(&shared, resolve_workers(config.workers));
    let out = Responder::new(Box::new(io::stdout()));
    for line in io::stdin().lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if dispatch(&shared, &line, &out).is_break() {
            break;
        }
    }
    shared.initiate_shutdown();
    for handle in workers {
        handle.join().expect("worker panicked");
    }
    shared.summary()
}
