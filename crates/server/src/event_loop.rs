//! The event-driven serving core: one thread owning every connection.
//!
//! ## Architecture (DESIGN.md §15)
//!
//! The PR-4 daemon spent a thread per connection, all contending on one
//! global queue. This loop replaces that with readiness-style polling
//! over non-blocking sockets: a single thread accepts, reads, parses,
//! admits, and writes — mapping work is the only thing that leaves the
//! thread, handed to the worker pool through [`Admission`] and handed
//! back as rendered response frames through [`Completions`].
//!
//! Each iteration:
//!
//! 1. **accept** every pending connection (unless draining);
//! 2. **read** whatever every socket has, dispatching each complete
//!    request line — admin ops answer inline, map work is offered to
//!    admission (shed answers also render inline);
//! 3. **snapshot** which connections look finished (peer EOF and no
//!    outstanding work) — *before* draining completions, so a frame
//!    completed between the snapshot and the drain still rides this
//!    iteration (workers push frames before marking work complete);
//! 4. **drain** completed frames into per-connection write buffers —
//!    frames landing on a non-empty buffer coalesce into the same
//!    write (`serve.coalesced_frames`);
//! 5. **flush** every buffer as far as the kernel allows;
//! 6. **drop** snapshotted connections whose buffers emptied;
//! 7. exit once draining and everything is answered and delivered.
//!
//! An idle iteration parks on the completions condvar — 200 µs while
//! recently active (keeps warm-path latency flat), stretching to 2 ms
//! once the loop has been quiet, so an idle daemon costs ~500 wakeups/s
//! instead of a spin. With no `poll(2)` in std this O(connections) scan
//! is the honest trade; the constant is one `read` syscall per open
//! connection per iteration.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use chortle_telemetry::log::{self, FieldValue, Level};
use chortle_telemetry::prom;

use crate::admission::ShedReason;
use crate::conn::Conn;
use crate::metrics::Cum;
use crate::proto::{
    self, parse_request, BatchItem, MapRequest, Op, ProtocolVersion, RejectReason, RequestTrace,
    ShedHint,
};
use crate::server::{stats, Shared};

/// One admitted unit of mapping work.
pub(crate) struct Job {
    /// Owning connection (0 in stdio mode).
    pub cid: u64,
    /// Protocol version the request spoke; the response mirrors it.
    pub version: ProtocolVersion,
    /// Correlation id (the frame's, also for batch entries).
    pub id: String,
    /// The parsed map request.
    pub req: MapRequest,
    /// Absolute deadline, counted from admission.
    pub deadline: Option<Instant>,
    /// When admission accepted the job (queue-wait baseline).
    pub admitted: Instant,
    /// For `map_batch` entries: the shared frame state and this entry's
    /// slot in the `results` array.
    pub batch: Option<(Arc<BatchState>, usize)>,
}

/// Shared assembly state of one in-flight `map_batch` frame. Entries
/// resolve independently (workers, shed-at-admission, deadlines);
/// whoever resolves the last one renders the single response frame.
pub(crate) struct BatchState {
    /// Owning connection.
    pub cid: u64,
    /// The batch frame's correlation id.
    pub id: String,
    /// Per-entry results, in request order.
    results: Mutex<Vec<Option<BatchItem>>>,
    /// Entries not yet resolved.
    remaining: AtomicUsize,
}

impl BatchState {
    fn new(cid: u64, id: String, len: usize) -> Self {
        BatchState {
            cid,
            id,
            results: Mutex::new(vec![None; len]),
            remaining: AtomicUsize::new(len),
        }
    }

    /// Records one entry's outcome; `true` means this was the last
    /// entry and the caller must render + deliver the frame.
    pub fn store(&self, index: usize, item: BatchItem) -> bool {
        {
            let mut results = self.results.lock().expect("batch results poisoned");
            results[index] = Some(item);
        }
        self.remaining.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Renders the completed frame (call only after `store` returned
    /// `true`).
    pub fn render(&self) -> String {
        let results = std::mem::take(&mut *self.results.lock().expect("batch results poisoned"));
        let items: Vec<BatchItem> = results
            .into_iter()
            .map(|slot| slot.expect("every batch entry resolved"))
            .collect();
        proto::render_batch_ok(&self.id, &items)
    }
}

/// Rendered response frames travelling from workers back to whichever
/// thread owns the connections (the event loop, or the stdio writer).
/// Also the loop's wake signal: `push` and shutdown both notify.
pub(crate) struct Completions {
    frames: Mutex<Vec<(u64, String)>>,
    signal: Condvar,
}

impl Completions {
    pub fn new() -> Self {
        Completions {
            frames: Mutex::new(Vec::new()),
            signal: Condvar::new(),
        }
    }

    /// Queues one rendered frame for connection `cid` and wakes the
    /// delivery thread. Workers call this *before*
    /// [`crate::admission::Admission::complete`] — the loop relies on
    /// "no outstanding work" implying "every frame already pushed".
    pub fn push(&self, cid: u64, frame: String) {
        let mut frames = self.frames.lock().expect("completions poisoned");
        frames.push((cid, frame));
        drop(frames);
        self.signal.notify_all();
    }

    /// Takes every queued frame, in push order.
    pub fn drain(&self) -> Vec<(u64, String)> {
        std::mem::take(&mut *self.frames.lock().expect("completions poisoned"))
    }

    pub fn is_empty(&self) -> bool {
        self.frames.lock().expect("completions poisoned").is_empty()
    }

    /// Parks until a frame arrives, a notify, or `timeout` — whichever
    /// comes first. Returns immediately if frames are already queued.
    pub fn wait(&self, timeout: Duration) {
        let frames = self.frames.lock().expect("completions poisoned");
        if frames.is_empty() {
            let _ = self
                .signal
                .wait_timeout(frames, timeout)
                .expect("completions poisoned while waiting");
        }
    }

    /// Wakes the delivery thread without a frame (shutdown).
    pub fn notify(&self) {
        self.signal.notify_all();
    }
}

/// Considered "recently active" for this long after the last progress —
/// poll fast (200 µs) inside the window, slow (2 ms) outside it.
const ACTIVE_WINDOW: Duration = Duration::from_millis(20);
const FAST_POLL: Duration = Duration::from_micros(200);
const IDLE_POLL: Duration = Duration::from_millis(2);

/// Runs the event loop until shutdown completes its drain. `metrics`
/// is the optional Prometheus exposition listener (`--metrics-addr`) —
/// scrapes are answered inline on this thread, one short-lived
/// HTTP/1.0 connection per scrape.
pub(crate) fn run(listener: &TcpListener, metrics: Option<&TcpListener>, shared: &Arc<Shared>) {
    listener
        .set_nonblocking(true)
        .expect("listener supports non-blocking mode");
    if let Some(metrics) = metrics {
        metrics
            .set_nonblocking(true)
            .expect("metrics listener supports non-blocking mode");
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_cid: u64 = 1;
    let mut lines: Vec<String> = Vec::new();
    let mut last_active = Instant::now();
    loop {
        let mut progressed = false;

        // 0. Once per second, roll the sliding metrics window forward
        // (the check is a lock + compare; the telemetry snapshot only
        // happens on an actual boundary).
        let sec = shared.started.elapsed().as_secs();
        if shared.window.needs_roll(sec) {
            let now = Cum::capture(&shared.telemetry.snapshot(), &shared.warm.stats());
            shared.window.observe(sec, &now);
        }

        // 0b. Answer any pending Prometheus scrapes.
        if let Some(metrics) = metrics {
            while let Ok((stream, _)) = metrics.accept() {
                serve_metrics_scrape(stream, shared);
                progressed = true;
            }
        }

        // 1. Accept everything pending (draining servers accept nothing
        // new; existing connections are still served out).
        if !shared.stopping() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        shared.telemetry.add_counter(stats::CONNECTIONS, 1);
                        if let Ok(conn) = Conn::new(stream) {
                            conns.insert(next_cid, conn);
                            next_cid += 1;
                            progressed = true;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // 2. Read + dispatch. Dispatch never touches the conn map — all
        // its output rides the completions queue, drained below in this
        // same iteration.
        let cids: Vec<u64> = conns.keys().copied().collect();
        for cid in cids {
            lines.clear();
            let conn = conns.get_mut(&cid).expect("cid snapshot is current");
            if conn.read_available(&mut lines) {
                progressed = true;
            }
            for line in &lines {
                if line.trim().is_empty() {
                    continue;
                }
                dispatch(shared, cid, line);
                progressed = true;
            }
        }

        // 3. Snapshot removal candidates BEFORE draining completions:
        // outstanding == 0 here guarantees their final frames are
        // already queued (workers push before completing) and will be
        // picked up by step 4.
        let candidates: Vec<u64> = conns
            .iter()
            .filter(|(cid, c)| {
                c.read_closed && (c.write_dead || shared.admission.outstanding(**cid) == 0)
            })
            .map(|(cid, _)| *cid)
            .collect();

        // 4. Drain completed frames into write buffers.
        for (cid, frame) in shared.completions.drain() {
            progressed = true;
            if let Some(conn) = conns.get_mut(&cid) {
                if conn.queue_frame(&frame) {
                    shared.telemetry.add_counter(stats::COALESCED_FRAMES, 1);
                }
            }
            // else: the peer hung up and was dropped — its answers are
            // forfeit (PR-4 rule: a lost client never hurts the server).
        }

        // 5. Flush as far as the kernel allows.
        for conn in conns.values_mut() {
            if conn.flush() {
                progressed = true;
            }
        }

        // 6. Drop candidates whose buffers emptied (or proved dead).
        for cid in candidates {
            if conns.get(&cid).is_some_and(Conn::finished) {
                conns.remove(&cid);
            }
        }

        // 7. Drain-complete exit: stopping, nothing queued or running,
        // no frames in flight, every delivered or undeliverable.
        if shared.stopping()
            && shared.admission.outstanding_total() == 0
            && shared.completions.is_empty()
            && conns.values().all(|c| c.flushed() || c.write_dead)
        {
            break;
        }

        // 8. Idle backoff.
        if progressed {
            last_active = Instant::now();
        } else {
            let timeout = if last_active.elapsed() < ACTIVE_WINDOW {
                FAST_POLL
            } else {
                IDLE_POLL
            };
            shared.completions.wait(timeout);
        }
    }
}

/// Handles one request line from connection `cid`. Admin operations are
/// answered inline (via the completions queue, drained in the same
/// iteration); map work goes through admission.
pub(crate) fn dispatch(shared: &Arc<Shared>, cid: u64, line: &str) {
    let telemetry = &shared.telemetry;
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(e) => {
            telemetry.add_counter(stats::REJECTED_BAD_REQUEST, 1);
            let frame =
                proto::render_rejected(e.version, &e.id, RejectReason::BadRequest, &e.detail, None);
            shared.completions.push(cid, frame);
            return;
        }
    };
    let version = request.version;
    match request.op {
        Op::Hello => {
            telemetry.add_counter(stats::HELLO_REQUESTS, 1);
            let frame = proto::render_hello_ok(&request.id, &shared.limits);
            shared.completions.push(cid, frame);
        }
        Op::Map(req) => {
            admit(shared, cid, version, &request.id, req, None);
        }
        Op::MapBatch(batch) => {
            telemetry.add_counter(stats::BATCH_FRAMES, 1);
            telemetry.add_counter(stats::BATCH_REQUESTS, batch.requests.len() as u64);
            if batch.requests.len() > shared.limits.batch_limit {
                telemetry.add_counter(stats::REJECTED_BAD_REQUEST, 1);
                let detail = format!(
                    "batch of {} exceeds the server's batch_limit of {}",
                    batch.requests.len(),
                    shared.limits.batch_limit
                );
                let frame = proto::render_rejected(
                    version,
                    &request.id,
                    RejectReason::BadRequest,
                    &detail,
                    None,
                );
                shared.completions.push(cid, frame);
                return;
            }
            let state = Arc::new(BatchState::new(
                cid,
                request.id.clone(),
                batch.requests.len(),
            ));
            for (index, req) in batch.requests.into_iter().enumerate() {
                admit(
                    shared,
                    cid,
                    version,
                    &request.id,
                    req,
                    Some((Arc::clone(&state), index)),
                );
            }
        }
        Op::Flush => {
            let generation = shared.warm.flush();
            telemetry.add_counter(stats::FLUSHES, 1);
            let frame = proto::render_flush_ok(version, &request.id, generation);
            shared.completions.push(cid, frame);
        }
        Op::Stats => {
            telemetry.add_counter(stats::STATS_REQUESTS, 1);
            let frame = proto::render_stats_ok(
                version,
                &request.id,
                &proto::StatsGauges {
                    cache_generation: shared.warm.generation(),
                    // Monotonic by construction: `started` is an
                    // `Instant`, so a stepping wall clock (NTP, DST)
                    // can never make uptime jump or run backwards.
                    uptime_s: shared.started.elapsed().as_secs(),
                    queue_depth: shared.admission.len(),
                    queue_high_water: shared.admission.high_water(),
                    trace_dropped: shared.trace_evicted.load(Ordering::Relaxed),
                },
                &shared.warm.stats(),
                &shared.telemetry.snapshot().to_json(),
            );
            shared.completions.push(cid, frame);
        }
        Op::Metrics => {
            telemetry.add_counter(stats::METRICS_REQUESTS, 1);
            // Roll first so a daemon without event-loop traffic (stdio
            // mode, or an idle loop) still ages its window before
            // answering.
            let sec = shared.started.elapsed().as_secs();
            let now = Cum::capture(&telemetry.snapshot(), &shared.warm.stats());
            shared.window.observe(sec, &now);
            let frame = proto::render_metrics_ok(&request.id, &shared.window.snapshot(&now));
            shared.completions.push(cid, frame);
        }
        Op::Trace => {
            telemetry.add_counter(stats::TRACE_REQUESTS, 1);
            let entries: Vec<RequestTrace> = {
                let ring = shared.ring.lock().expect("trace ring poisoned");
                ring.iter().cloned().collect()
            };
            let frame =
                proto::render_trace_ok(version, &request.id, shared.trace_capacity, &entries);
            shared.completions.push(cid, frame);
        }
        Op::Shutdown => {
            let frame = proto::render_shutdown_ok(version, &request.id);
            shared.completions.push(cid, frame);
            shared.initiate_shutdown();
            // Keep reading: pipelined frames behind the shutdown are
            // answered with `shutting_down` rather than silence.
        }
    }
}

/// Offers one map request (or batch entry) to admission; sheds are
/// answered immediately with the typed reason and — on v2 — the retry
/// hint. A shed batch entry resolves its slot inline.
fn admit(
    shared: &Arc<Shared>,
    cid: u64,
    version: ProtocolVersion,
    id: &str,
    req: MapRequest,
    batch: Option<(Arc<BatchState>, usize)>,
) {
    let telemetry = &shared.telemetry;
    if shared.stopping() {
        telemetry.add_counter(stats::REJECTED_SHUTDOWN, 1);
        resolve_rejected(
            shared,
            cid,
            version,
            id,
            batch,
            RejectReason::ShuttingDown,
            "server is draining and no longer admits work",
            None,
        );
        return;
    }
    // The deadline clock starts at admission: time spent queued counts
    // against it.
    let deadline = req
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let priority = req.priority;
    let job = Job {
        cid,
        version,
        id: id.to_owned(),
        req,
        deadline,
        admitted: Instant::now(),
        batch,
    };
    match shared.admission.offer(cid, priority, job) {
        Ok(depth) => {
            telemetry.add_counter(stats::ACCEPTED, 1);
            telemetry.add_counter(stats::ADMISSION_ADMITTED, 1);
            telemetry.record_value(stats::HIST_CLIENT_DEPTH, depth as u64);
        }
        Err((shed, job)) => {
            let hint = ShedHint {
                retry_after_ms: shed.retry_after_ms,
                client_queue_depth: shed.client_queue_depth,
            };
            let (reason, detail, hint) = match shed.reason {
                ShedReason::OverQuota => {
                    telemetry.add_counter(stats::REJECTED_QUEUE_FULL, 1);
                    telemetry.add_counter(stats::ADMISSION_SHED_OVER_QUOTA, 1);
                    (
                        RejectReason::OverQuota,
                        format!(
                            "client quota of {} queued or in-flight requests is in use; retry later",
                            shared.admission.quota()
                        ),
                        Some(hint),
                    )
                }
                ShedReason::QueueFull => {
                    telemetry.add_counter(stats::REJECTED_QUEUE_FULL, 1);
                    telemetry.add_counter(stats::ADMISSION_SHED_QUEUE_FULL, 1);
                    (
                        RejectReason::QueueFull,
                        "admission queue is full; retry later".to_owned(),
                        Some(hint),
                    )
                }
                ShedReason::Closed => {
                    telemetry.add_counter(stats::REJECTED_SHUTDOWN, 1);
                    (
                        RejectReason::ShuttingDown,
                        "server is draining and no longer admits work".to_owned(),
                        None,
                    )
                }
            };
            if hint.is_some() && version == ProtocolVersion::V2 {
                telemetry.add_counter(stats::ADMISSION_HINTED, 1);
            }
            if log::enabled(Level::Warn) {
                log::event(
                    Level::Warn,
                    "serve.admission",
                    "request shed",
                    &[
                        ("id", FieldValue::Str(&job.id)),
                        ("trace_id", FieldValue::Str(&job.req.trace_id)),
                        ("reason", FieldValue::Str(reason.as_str())),
                        (
                            "queue_depth",
                            FieldValue::U64(shared.admission.len() as u64),
                        ),
                    ],
                );
            }
            resolve_rejected(
                shared, cid, version, &job.id, job.batch, reason, &detail, hint,
            );
        }
    }
}

/// Delivers a rejection for a single request (a frame of its own) or a
/// batch entry (a slot in the shared frame).
#[allow(clippy::too_many_arguments)]
fn resolve_rejected(
    shared: &Arc<Shared>,
    cid: u64,
    version: ProtocolVersion,
    id: &str,
    batch: Option<(Arc<BatchState>, usize)>,
    reason: RejectReason,
    detail: &str,
    hint: Option<ShedHint>,
) {
    match batch {
        None => {
            let frame = proto::render_rejected(version, id, reason, detail, hint.as_ref());
            shared.completions.push(cid, frame);
        }
        Some((state, index)) => {
            let last = state.store(
                index,
                BatchItem::Rejected {
                    reason,
                    detail: detail.to_owned(),
                    hint,
                },
            );
            if last {
                let frame = state.render();
                shared.completions.push(state.cid, frame);
            }
        }
    }
}

/// Renders the Prometheus text exposition for one scrape: the full
/// aggregate report (counters as `counter`, latency histograms as
/// `summary`) plus live gauges — uptime, queue depths, trace-ring
/// drops, and the sliding-window rates.
fn exposition(shared: &Arc<Shared>) -> String {
    let report = shared.telemetry.snapshot();
    let warm = shared.warm.stats();
    let sec = shared.started.elapsed().as_secs();
    let now = Cum::capture(&report, &warm);
    shared.window.observe(sec, &now);
    let m = shared.window.snapshot(&now);
    let gauges: &[prom::Gauge<'_>] = &[
        (
            "serve.uptime_s",
            "Whole seconds since the daemon started (monotonic clock).",
            sec as f64,
        ),
        (
            "serve.queue_depth",
            "Jobs queued at scrape time.",
            shared.admission.len() as f64,
        ),
        (
            "serve.queue_high_water",
            "Deepest the admission queue has ever been.",
            shared.admission.high_water() as f64,
        ),
        (
            "serve.trace_ring_dropped",
            "Completed-request traces evicted from the bounded op:\"trace\" ring.",
            shared.trace_evicted.load(Ordering::Relaxed) as f64,
        ),
        (
            "serve.window_qps",
            "Completed requests per second over the sliding window.",
            m.qps,
        ),
        (
            "serve.window_shed_rate",
            "Shed fraction of admission attempts over the sliding window.",
            m.shed_rate,
        ),
        (
            "serve.window_cache_hit_rate",
            "Structural warm-cache hit rate over the sliding window.",
            m.cache_hit_rate,
        ),
        (
            "serve.window_fn_cache_hit_rate",
            "Functional warm-cache hit rate over the sliding window.",
            m.fn_cache_hit_rate,
        ),
    ];
    prom::render_exposition(&report, gauges)
}

/// Answers one Prometheus scrape connection, inline on the event-loop
/// thread. HTTP/1.0, `Connection: close`, 500 ms I/O timeouts so a
/// stalled scraper cannot wedge the loop for long. `GET /metrics` gets
/// the exposition; anything else a 404.
fn serve_metrics_scrape(stream: TcpStream, shared: &Arc<Shared>) {
    let mut stream = stream;
    // The accepted socket does not inherit the listener's non-blocking
    // mode on every platform — pin it to blocking with short timeouts.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 1024];
    let mut request = Vec::new();
    // Only the request line matters; read until we have it (or give
    // up at 8 KiB — no legitimate scraper sends that much).
    while !request.contains(&b'\n') && request.len() < 8192 {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => request.extend_from_slice(&buf[..n]),
        }
    }
    let line = String::from_utf8_lossy(&request);
    let line = line.lines().next().unwrap_or("");
    let target = line.strip_prefix("GET ").and_then(|r| r.split(' ').next());
    let (status, body) = if target == Some("/metrics") {
        ("200 OK", exposition(shared))
    } else {
        ("404 Not Found", "only GET /metrics is served\n".to_owned())
    };
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
}
