//! Public-API surface tests: accessors, displays and small behaviours not
//! exercised by the algorithmic suites.

use chortle_logic_opt::{
    factor, kernels, optimize_with, Cube, Factored, Literal, OptimizeOptions, Sop, SopNetwork,
};
use chortle_netlist::{Network, NodeOp};

#[test]
fn sop_network_accessors() {
    let mut net = SopNetwork::new();
    assert!(net.is_empty());
    let a = net.add_input("a");
    let b = net.add_input("b");
    let f = Sop::try_from_slices(&[&[(a, false), (b, true)]]).unwrap();
    let n = net.add_node(f.clone());
    net.add_output("z", Literal::positive(n));
    assert_eq!(net.len(), 3);
    assert_eq!(net.input_vars(), vec![a, b]);
    assert_eq!(net.node_vars(), vec![n]);
    assert_eq!(net.node_sop(n), Some(&f));
    assert_eq!(net.node_sop(a), None);
    assert_eq!(net.outputs().len(), 1);
    let counts = net.use_counts();
    assert_eq!(counts[a], (1, 0));
    assert_eq!(counts[b], (0, 1));
    assert_eq!(counts[n], (1, 0));
}

#[test]
fn factored_constants_and_eval() {
    assert_eq!(Factored::Const(true).literal_count(), 0);
    assert!(Factored::Const(true).eval(0));
    assert!(!Factored::Const(false).eval(0));
    let lit = Factored::Literal(Literal::negative(2));
    assert_eq!(lit.literal_count(), 1);
    assert!(lit.eval(0b000));
    assert!(!lit.eval(0b100));
}

#[test]
fn display_forms_are_readable() {
    let c = Cube::from_literals([Literal::positive(0), Literal::negative(3)]).unwrap();
    let s = format!("{c}");
    assert!(s.contains("v0") && s.contains("!v3"));
    assert_eq!(format!("{}", Cube::one()), "1");
    assert_eq!(format!("{}", Sop::zero()), "0");
    let f = Sop::from_cubes([c]);
    assert!(format!("{f}").contains('·'));
    let lit = Literal::positive(7);
    assert_eq!(format!("{lit}"), "v7");
    assert_eq!(Literal::from_code(lit.code()), lit);
}

#[test]
fn kernel_struct_exposes_cokernel() {
    let f = Sop::try_from_slices(&[&[(0, false), (2, false)], &[(1, false), (2, false)]]).unwrap();
    let ks = kernels(&f);
    // (a + b) with co-kernel c must appear.
    let found = ks.iter().any(|k| {
        k.co_kernel.literals() == [Literal::positive(2)]
            && k.kernel == Sop::try_from_slices(&[&[(0, false)], &[(1, false)]]).unwrap()
    });
    assert!(found, "kernels: {ks:?}");
}

#[test]
fn factor_of_deep_sop_matches_eval() {
    // A function whose quick factoring needs the literal fallback.
    let f = Sop::try_from_slices(&[
        &[(0, false), (1, false)],
        &[(0, false), (2, false)],
        &[(1, false), (2, false)],
        &[(3, true)],
    ])
    .unwrap();
    let t = factor(&f);
    for bits in 0..16u64 {
        assert_eq!(f.eval(bits), t.eval(bits));
    }
}

#[test]
fn optimize_options_toggles() {
    let mut net = Network::new();
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let g1 = net.add_gate(NodeOp::And, vec![a.into(), c.into()]);
    let g2 = net.add_gate(NodeOp::And, vec![b.into(), c.into()]);
    let z = net.add_gate(NodeOp::Or, vec![g1.into(), g2.into()]);
    net.add_output("z", z.into());

    let off = OptimizeOptions {
        kernel_extraction: false,
        cube_extraction: false,
        ..OptimizeOptions::default()
    };
    let (net_off, rep_off) = optimize_with(&net, &off).expect("optimizes");
    let (net_on, rep_on) = optimize_with(&net, &OptimizeOptions::default()).expect("optimizes");
    assert_eq!(rep_off.extracted, 0);
    assert!(rep_on.literals_after <= rep_off.literals_after);
    // Both stay correct.
    chortle_netlist::check_networks(&net, &net_off).unwrap();
    chortle_netlist::check_networks(&net, &net_on).unwrap();
}

#[test]
fn eliminate_threshold_controls_growth() {
    // A node used twice whose inlining grows literals: kept at threshold
    // 0, inlined at a generous threshold.
    let mut sn = SopNetwork::new();
    let a = sn.add_input("a");
    let b = sn.add_input("b");
    let c = sn.add_input("c");
    let d = sn.add_input("d");
    let t = sn.add_node(Sop::try_from_slices(&[&[(a, false), (b, false)], &[(c, false)]]).unwrap());
    let x = sn.add_node(Sop::try_from_slices(&[&[(t, false), (d, false)]]).unwrap());
    let y = sn.add_node(Sop::try_from_slices(&[&[(t, false), (d, true)]]).unwrap());
    sn.add_output("x", Literal::positive(x));
    sn.add_output("y", Literal::positive(y));

    let mut strict = sn.clone();
    assert_eq!(
        strict.eliminate(0),
        0,
        "growth must be refused at threshold 0"
    );
    let mut loose = sn.clone();
    assert_eq!(loose.eliminate(100), 1, "generous threshold inlines");
    for bits in 0..16u64 {
        assert_eq!(sn.eval_outputs(bits), loose.eval_outputs(bits));
    }
}
