//! Property-style tests for the algebraic optimization substrate: weak
//! division, kernels, factoring and the end-to-end script, on randomly
//! generated SOPs and networks.
//!
//! Random cases come from the in-repo [`SplitMix64`] generator (no
//! external property-testing dependency), so the suite runs fully offline
//! and reproduces bit-for-bit.

use chortle_logic_opt::{factor, is_level0_kernel, kernels, optimize, Cube, Literal, Sop};
use chortle_netlist::{check_networks, Network, NodeOp, Signal, SplitMix64};

/// Builds a random SOP over `vars` variables from a seed.
fn random_sop(seed: u64, vars: usize, max_cubes: usize) -> Sop {
    let mut rng = SplitMix64::new(seed);
    let n_cubes = rng.next_range(1, max_cubes + 1);
    let mut cubes = Vec::new();
    for _ in 0..n_cubes {
        let width = rng.next_range(1, vars.min(5) + 1);
        let mut chosen = std::collections::HashSet::new();
        let mut lits = Vec::new();
        let mut guard = 0;
        while lits.len() < width && guard < 50 {
            guard += 1;
            let v = rng.next_range(0, vars);
            if chosen.insert(v) {
                lits.push(Literal::with_phase(v, rng.next_bool(1, 3)));
            }
        }
        if let Some(c) = Cube::from_literals(lits) {
            cubes.push(c);
        }
    }
    Sop::from_cubes(cubes)
}

fn random_network(seed: u64, inputs: usize, gates: usize) -> Network {
    let mut rng = SplitMix64::new(seed);
    let mut net = Network::new();
    let mut signals: Vec<Signal> = (0..inputs)
        .map(|i| Signal::new(net.add_input(format!("i{i}"))))
        .collect();
    for g in 0..gates {
        let arity = rng.next_range(2, 5);
        let mut fanins: Vec<Signal> = Vec::new();
        let mut used = std::collections::HashSet::new();
        let mut guard = 0;
        while fanins.len() < arity && guard < 60 {
            guard += 1;
            let s = signals[rng.choose_index(&signals)];
            if used.insert(s.node()) {
                fanins.push(if rng.next_bool(1, 3) { !s } else { s });
            }
        }
        if fanins.len() < 2 {
            continue;
        }
        let op = if g % 2 == 0 { NodeOp::And } else { NodeOp::Or };
        signals.push(Signal::new(net.add_gate(op, fanins)));
    }
    for o in 0..rng.next_range(1, 4) {
        let s = signals[rng.choose_index(&signals)];
        net.add_output(format!("o{o}"), if rng.next_bool(1, 4) { !s } else { s });
    }
    net
}

#[test]
fn weak_division_identity_holds() {
    let mut rng = SplitMix64::new(0x50b_0001);
    for _ in 0..96 {
        let f = random_sop(rng.next_u64(), 8, 6);
        let d = random_sop(rng.next_u64(), 8, 3);
        let (q, r) = f.divide(&d);
        for bits in (0..512u64).step_by(7) {
            let bits = bits % 256;
            assert_eq!(
                f.eval(bits),
                (q.eval(bits) && d.eval(bits)) || r.eval(bits),
                "f = q*d + r violated at {bits:b}"
            );
        }
    }
}

#[test]
fn quotient_times_divisor_within_f() {
    // Algebraic division never over-approximates: q*d implies f.
    let mut rng = SplitMix64::new(0x50b_0002);
    for _ in 0..96 {
        let f = random_sop(rng.next_u64(), 8, 6);
        let d = random_sop(rng.next_u64(), 8, 3);
        let (q, _) = f.divide(&d);
        for bits in 0..256u64 {
            if q.eval(bits) && d.eval(bits) {
                assert!(f.eval(bits));
            }
        }
    }
}

#[test]
fn minimize_preserves_function() {
    let mut rng = SplitMix64::new(0x50b_0003);
    for _ in 0..96 {
        let f = random_sop(rng.next_u64(), 7, 8);
        let mut g = f.clone();
        g.minimize();
        assert!(g.num_cubes() <= f.num_cubes());
        for bits in 0..128u64 {
            assert_eq!(f.eval(bits), g.eval(bits));
        }
    }
}

#[test]
fn kernels_are_cube_free_even_divisors() {
    let mut rng = SplitMix64::new(0x50b_0004);
    for _ in 0..96 {
        let f = random_sop(rng.next_u64(), 7, 6);
        for k in kernels(&f) {
            assert!(
                k.kernel.is_cube_free(),
                "kernel {:?} not cube-free",
                k.kernel
            );
            let (q, _) = f.divide(&k.kernel);
            assert!(!q.is_zero(), "kernel {:?} does not divide f", k.kernel);
        }
    }
}

#[test]
fn level0_kernels_have_unique_literals() {
    let mut rng = SplitMix64::new(0x50b_0005);
    for _ in 0..96 {
        let f = random_sop(rng.next_u64(), 7, 6);
        for k in kernels(&f) {
            if is_level0_kernel(&k.kernel) {
                for (_, count) in k.kernel.literal_counts() {
                    assert_eq!(count, 1);
                }
            }
        }
    }
}

#[test]
fn factoring_preserves_function_and_never_grows() {
    let mut rng = SplitMix64::new(0x50b_0006);
    for _ in 0..96 {
        let f = random_sop(rng.next_u64(), 7, 7);
        let t = factor(&f);
        for bits in 0..128u64 {
            assert_eq!(
                f.eval(bits),
                t.eval(bits),
                "factored form differs at {bits:b}"
            );
        }
        assert!(t.literal_count() <= f.num_literals());
    }
}

#[test]
fn make_cube_free_factors_out_the_common_cube() {
    let mut rng = SplitMix64::new(0x50b_0007);
    for _ in 0..96 {
        let f = random_sop(rng.next_u64(), 7, 6);
        let (common, free) = f.make_cube_free();
        for bits in 0..128u64 {
            assert_eq!(f.eval(bits), common.eval(bits) && free.eval(bits));
        }
        if free.num_cubes() >= 2 {
            assert!(free.common_cube().is_empty());
        }
    }
}

#[test]
fn optimize_script_preserves_networks() {
    let mut rng = SplitMix64::new(0x50b_0008);
    for _ in 0..96 {
        let net = random_network(rng.next_u64(), 6, 12);
        let (optimized, report) = optimize(&net).unwrap();
        optimized.validate().unwrap();
        check_networks(&net, &optimized).unwrap();
        assert!(report.literals_after <= report.literals_before);
    }
}

#[test]
fn exact_minimization_is_equivalent_and_prime() {
    let mut rng = SplitMix64::new(0x50b_0009);
    for _ in 0..96 {
        let f = random_sop(rng.next_u64(), 6, 8);
        let g = chortle_logic_opt::minimize_exact(&f).unwrap();
        for bits in 0..64u64 {
            assert_eq!(
                f.eval(bits),
                g.eval(bits),
                "minimized cover differs at {bits:b}"
            );
        }
        assert!(g.num_cubes() <= f.num_cubes().max(1));
        // Irredundancy: removing any cube changes the function.
        if g.num_cubes() >= 2 {
            for drop in 0..g.num_cubes() {
                let reduced = Sop::from_cubes(
                    g.cubes()
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != drop)
                        .map(|(_, c)| c.clone()),
                );
                let differs = (0..64u64).any(|b| reduced.eval(b) != g.eval(b));
                assert!(differs, "cube {drop} is redundant in minimized cover");
            }
        }
    }
}

#[test]
fn heuristic_minimize_is_equivalent() {
    let mut rng = SplitMix64::new(0x50b_000a);
    for _ in 0..96 {
        let f = random_sop(rng.next_u64(), 7, 8);
        let g = chortle_logic_opt::heuristic_minimize(&f);
        for bits in 0..128u64 {
            assert_eq!(
                f.eval(bits),
                g.eval(bits),
                "heuristic cover differs at {bits:b}"
            );
        }
        assert!(g.num_cubes() <= f.num_cubes().max(1));
    }
}

#[test]
fn heuristic_never_more_cubes_than_exact_needs_primes() {
    // Exact gives the minimum cube count; the heuristic must be
    // equivalent and can only match or exceed it.
    let mut rng = SplitMix64::new(0x50b_000b);
    for _ in 0..96 {
        let f = random_sop(rng.next_u64(), 6, 6);
        let exact = chortle_logic_opt::minimize_exact(&f).unwrap();
        let heur = chortle_logic_opt::heuristic_minimize(&f);
        assert!(heur.num_cubes() >= exact.num_cubes());
        for bits in 0..64u64 {
            assert_eq!(exact.eval(bits), heur.eval(bits));
        }
    }
}

#[test]
fn covers_cube_matches_semantics() {
    let mut rng = SplitMix64::new(0x50b_000c);
    for _ in 0..96 {
        let f = random_sop(rng.next_u64(), 6, 5);
        let probe = random_sop(rng.next_u64(), 6, 1);
        if let Some(cube) = probe.cubes().first() {
            let covered = chortle_logic_opt::covers_cube(&f, cube);
            let semantic = (0..64u64).all(|b| !cube.eval(b) || f.eval(b));
            assert_eq!(covered, semantic);
        }
    }
}
