//! Factoring: turning a two-level SOP into a multi-level AND/OR expression
//! tree with (near-)minimal literal count.
//!
//! This is the last step of the MIS-style optimization script: the factored
//! forms become the AND/OR nodes of the network handed to technology
//! mapping. The algorithm is the classic kernel-driven *quick factoring*:
//! pick a level-0 kernel `d`, divide `f = q·d + r`, and recurse on `q`, `d`
//! and `r`.

use crate::cube::{Cube, Literal};
use crate::kernels::{is_level0_kernel, kernels};
use crate::sop::Sop;

/// A factored Boolean expression over literal leaves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Factored {
    /// A constant.
    Const(bool),
    /// A single literal.
    Literal(Literal),
    /// Product of sub-expressions.
    And(Vec<Factored>),
    /// Sum of sub-expressions.
    Or(Vec<Factored>),
}

impl Factored {
    /// Number of literal leaves — the factored literal count.
    ///
    /// # Examples
    ///
    /// ```
    /// use chortle_logic_opt::{factor, Sop};
    ///
    /// // f = a·c + a·d + b·c + b·d has 8 SOP literals but factors to
    /// // (a + b)(c + d) with 4.
    /// let f = Sop::try_from_slices(&[
    ///     &[(0, false), (2, false)],
    ///     &[(0, false), (3, false)],
    ///     &[(1, false), (2, false)],
    ///     &[(1, false), (3, false)],
    /// ]).unwrap();
    /// assert_eq!(factor(&f).literal_count(), 4);
    /// ```
    pub fn literal_count(&self) -> usize {
        match self {
            Factored::Const(_) => 0,
            Factored::Literal(_) => 1,
            Factored::And(xs) | Factored::Or(xs) => xs.iter().map(Self::literal_count).sum(),
        }
    }

    /// Evaluates the expression under an assignment (bit `v` = variable
    /// `v`).
    pub fn eval(&self, bits: u64) -> bool {
        match self {
            Factored::Const(v) => *v,
            Factored::Literal(l) => ((bits >> l.var()) & 1 == 1) != l.is_inverted(),
            Factored::And(xs) => xs.iter().all(|x| x.eval(bits)),
            Factored::Or(xs) => xs.iter().any(|x| x.eval(bits)),
        }
    }

    /// Builds an AND node, flattening nested ANDs and dropping constant
    /// trues; returns constant false if any operand is.
    fn and(xs: Vec<Factored>) -> Factored {
        let mut flat = Vec::new();
        for x in xs {
            match x {
                Factored::Const(false) => return Factored::Const(false),
                Factored::Const(true) => {}
                Factored::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Factored::Const(true),
            1 => flat.pop().expect("one element"),
            _ => Factored::And(flat),
        }
    }

    /// Builds an OR node with the dual simplifications of
    /// [`and`](Factored::and).
    fn or(xs: Vec<Factored>) -> Factored {
        let mut flat = Vec::new();
        for x in xs {
            match x {
                Factored::Const(true) => return Factored::Const(true),
                Factored::Const(false) => {}
                Factored::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Factored::Const(false),
            1 => flat.pop().expect("one element"),
            _ => Factored::Or(flat),
        }
    }
}

/// Factors an SOP into a multi-level AND/OR expression.
///
/// The result is functionally identical to `f` (verified exhaustively in
/// this module's tests) and typically has far fewer literals for SOPs with
/// shared sub-expressions.
pub fn factor(f: &Sop) -> Factored {
    if f.is_zero() {
        return Factored::Const(false);
    }
    if f.is_one() {
        return Factored::Const(true);
    }
    if f.is_single_cube() {
        return cube_to_factored(&f.cubes()[0]);
    }
    // Peel off the common cube first: f = c · f'.
    let (common, free) = f.make_cube_free();
    let inner = factor_cube_free(&free);
    if common.is_empty() {
        inner
    } else {
        Factored::and(vec![cube_to_factored(&common), inner])
    }
}

fn cube_to_factored(c: &Cube) -> Factored {
    match c.len() {
        0 => Factored::Const(true),
        1 => Factored::Literal(c.literals()[0]),
        _ => Factored::And(c.literals().iter().map(|&l| Factored::Literal(l)).collect()),
    }
}

fn factor_cube_free(f: &Sop) -> Factored {
    debug_assert!(f.num_cubes() >= 2);
    if is_level0_kernel(f) {
        // No proper divisors: f is a sum of variable-disjoint cubes.
        return Factored::or(f.cubes().iter().map(cube_to_factored).collect());
    }
    let divisor = choose_divisor(f);
    let divisor = match divisor {
        Some(d) => d,
        None => {
            // Fall back to dividing by the most frequent literal; always
            // strictly reduces because f is not level-0.
            return factor_by_best_literal(f);
        }
    };
    let (q, r) = f.divide(&divisor);
    debug_assert!(!q.is_zero(), "a kernel always divides its SOP");
    Factored::or(vec![
        Factored::and(vec![factor(&q), factor(&divisor)]),
        factor(&r),
    ])
}

/// Picks a level-0 kernel with maximal literal count as the divisor; `None`
/// if the only kernel is `f` itself.
fn choose_divisor(f: &Sop) -> Option<Sop> {
    kernels(f)
        .into_iter()
        .filter(|k| k.kernel != *f && is_level0_kernel(&k.kernel))
        .max_by_key(|k| (k.kernel.num_literals(), k.kernel.num_cubes()))
        .map(|k| k.kernel)
}

fn factor_by_best_literal(f: &Sop) -> Factored {
    let counts = f.literal_counts();
    let (&lit, _) = counts
        .iter()
        .max_by_key(|&(l, c)| (*c, std::cmp::Reverse(l.code())))
        .expect("non-constant SOP has literals");
    let d = Sop::from_cubes([Cube::from_literals([lit]).expect("single literal")]);
    let (q, r) = f.divide(&d);
    Factored::or(vec![
        Factored::and(vec![Factored::Literal(lit), factor(&q)]),
        factor(&r),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sop(cubes: &[&[(usize, bool)]]) -> Sop {
        Sop::try_from_slices(cubes).unwrap()
    }

    fn assert_equivalent(f: &Sop, t: &Factored, vars: usize) {
        for bits in 0..(1u64 << vars) {
            assert_eq!(f.eval(bits), t.eval(bits), "differ on {bits:b}");
        }
    }

    #[test]
    fn constants_factor_to_consts() {
        assert_eq!(factor(&Sop::zero()), Factored::Const(false));
        assert_eq!(factor(&Sop::one()), Factored::Const(true));
    }

    #[test]
    fn single_cube_is_and_of_literals() {
        let f = sop(&[&[(0, false), (2, true)]]);
        let t = factor(&f);
        assert_eq!(t.literal_count(), 2);
        assert_equivalent(&f, &t, 3);
    }

    #[test]
    fn distributive_example_saves_literals() {
        let f = sop(&[
            &[(0, false), (2, false)],
            &[(0, false), (3, false)],
            &[(1, false), (2, false)],
            &[(1, false), (3, false)],
        ]);
        let t = factor(&f);
        assert_equivalent(&f, &t, 4);
        assert_eq!(t.literal_count(), 4);
    }

    #[test]
    fn common_cube_peeled() {
        // f = ab·c + ab·d = ab(c + d)
        let f = sop(&[
            &[(0, false), (1, false), (2, false)],
            &[(0, false), (1, false), (3, false)],
        ]);
        let t = factor(&f);
        assert_eq!(t.literal_count(), 4);
        assert_equivalent(&f, &t, 4);
    }

    #[test]
    fn xor_shape_stays_two_level() {
        let f = sop(&[&[(0, false), (1, true)], &[(0, true), (1, false)]]);
        let t = factor(&f);
        assert_equivalent(&f, &t, 2);
        assert_eq!(t.literal_count(), 4);
    }

    #[test]
    fn larger_mixed_function() {
        // f = ade + bde + cde + af + bf
        let f = sop(&[
            &[(0, false), (3, false), (4, false)],
            &[(1, false), (3, false), (4, false)],
            &[(2, false), (3, false), (4, false)],
            &[(0, false), (5, false)],
            &[(1, false), (5, false)],
        ]);
        let t = factor(&f);
        assert_equivalent(&f, &t, 6);
        assert!(
            t.literal_count() <= f.num_literals(),
            "factoring must not increase literals: {} vs {}",
            t.literal_count(),
            f.num_literals()
        );
    }

    #[test]
    fn exhaustive_small_functions_equivalent() {
        // All 3-variable functions, built as minterm SOPs, must survive
        // factoring unchanged.
        for func in 0u16..256 {
            let mut cubes = Vec::new();
            for m in 0..8u64 {
                if (func >> m) & 1 == 1 {
                    let lits = (0..3).map(|v| Literal::with_phase(v, (m >> v) & 1 == 0));
                    cubes.push(Cube::from_literals(lits).unwrap());
                }
            }
            let f = Sop::from_cubes(cubes);
            let t = factor(&f);
            assert_equivalent(&f, &t, 3);
        }
    }
}
