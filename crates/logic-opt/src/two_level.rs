//! Exact two-level minimization (Quine–McCluskey with essential-prime
//! extraction and branch-and-bound covering).
//!
//! MIS' `simplify` runs two-level minimization on every node SOP; the
//! algebraic script in this crate uses the cheap single-cube-containment
//! pass by default and offers this exact minimizer for node functions of
//! bounded support (the classic table method is exponential in the
//! variable count).

use crate::cube::{Cube, Literal};
use crate::sop::Sop;

/// Maximum support size accepted by the exact minimizer.
pub const MAX_EXACT_VARS: usize = 12;

/// An implicant over `n` variables: `care` marks bound positions, `value`
/// their polarity (1 = positive literal).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Implicant {
    care: u32,
    value: u32,
}

impl Implicant {
    fn covers(self, minterm: u32) -> bool {
        (minterm & self.care) == self.value
    }

    fn to_cube(self, vars: usize) -> Cube {
        Cube::from_literals(
            (0..vars)
                .filter(|&v| self.care & (1 << v) != 0)
                .map(|v| Literal::with_phase(v, self.value & (1 << v) == 0)),
        )
        .expect("implicant positions are distinct")
    }
}

/// Computes all prime implicants of the on-set given as minterm values
/// over `vars` variables.
fn prime_implicants(minterms: &[u32], vars: usize) -> Vec<Implicant> {
    let full_care: u32 = if vars == 32 {
        u32::MAX
    } else {
        (1 << vars) - 1
    };
    let mut current: Vec<Implicant> = minterms
        .iter()
        .map(|&m| Implicant {
            care: full_care,
            value: m,
        })
        .collect();
    current.sort_by_key(|i| (i.care, i.value));
    current.dedup();
    let mut primes: Vec<Implicant> = Vec::new();
    while !current.is_empty() {
        let mut merged = std::collections::HashSet::new();
        let mut next = std::collections::HashSet::new();
        for (a_idx, &a) in current.iter().enumerate() {
            for &b in &current[a_idx + 1..] {
                if a.care != b.care {
                    continue;
                }
                let diff = a.value ^ b.value;
                if diff.count_ones() == 1 {
                    next.insert(Implicant {
                        care: a.care & !diff,
                        value: a.value & !diff,
                    });
                    merged.insert(a);
                    merged.insert(b);
                }
            }
        }
        for &i in &current {
            if !merged.contains(&i) {
                primes.push(i);
            }
        }
        let mut v: Vec<Implicant> = next.into_iter().collect();
        v.sort_by_key(|i| (i.care, i.value));
        current = v;
    }
    primes.sort_by_key(|i| (i.care, i.value));
    primes.dedup();
    primes
}

/// Selects a minimum-cube cover of `minterms` from `primes`:
/// essential primes first, then branch-and-bound over the residue (falls
/// back to greedy when the residue is large).
fn select_cover(primes: &[Implicant], minterms: &[u32]) -> Vec<Implicant> {
    let mut cover: Vec<Implicant> = Vec::new();
    let mut remaining: Vec<u32> = minterms.to_vec();
    // Essential primes: a minterm covered by exactly one prime.
    loop {
        let mut essential: Option<Implicant> = None;
        'scan: for &m in &remaining {
            let mut hit = None;
            for &p in primes {
                if p.covers(m) {
                    if hit.is_some() {
                        continue 'scan;
                    }
                    hit = Some(p);
                }
            }
            if let Some(p) = hit {
                if !cover.contains(&p) {
                    essential = Some(p);
                    break;
                }
            }
        }
        match essential {
            Some(p) => {
                cover.push(p);
                remaining.retain(|&m| !p.covers(m));
            }
            None => break,
        }
        if remaining.is_empty() {
            return cover;
        }
    }
    // Candidates that still cover something.
    let candidates: Vec<Implicant> = primes
        .iter()
        .copied()
        .filter(|p| !cover.contains(p) && remaining.iter().any(|&m| p.covers(m)))
        .collect();
    if remaining.is_empty() {
        return cover;
    }
    let extra = if candidates.len() <= 22 && remaining.len() <= 64 {
        exact_cover(&candidates, &remaining)
    } else {
        greedy_cover(&candidates, &remaining)
    };
    cover.extend(extra);
    cover
}

fn greedy_cover(candidates: &[Implicant], minterms: &[u32]) -> Vec<Implicant> {
    let mut remaining: Vec<u32> = minterms.to_vec();
    let mut picked = Vec::new();
    while !remaining.is_empty() {
        let best = candidates
            .iter()
            .copied()
            .max_by_key(|p| {
                (
                    remaining.iter().filter(|&&m| p.covers(m)).count(),
                    p.care.count_ones(), // tiebreak toward fewer literals? fewer = smaller care
                )
            })
            .expect("primes cover every minterm");
        picked.push(best);
        remaining.retain(|&m| !best.covers(m));
    }
    picked
}

/// Exhaustive minimum-cardinality cover by iterative-deepening search.
fn exact_cover(candidates: &[Implicant], minterms: &[u32]) -> Vec<Implicant> {
    // Bitset of minterm coverage per candidate.
    let masks: Vec<u64> = candidates
        .iter()
        .map(|p| {
            minterms
                .iter()
                .enumerate()
                .filter(|(_, &m)| p.covers(m))
                .fold(0u64, |acc, (i, _)| acc | (1 << i))
        })
        .collect();
    let full: u64 = if minterms.len() == 64 {
        u64::MAX
    } else {
        (1u64 << minterms.len()) - 1
    };
    fn search(
        masks: &[u64],
        covered: u64,
        full: u64,
        depth: usize,
        picked: &mut Vec<usize>,
        best: &mut Option<Vec<usize>>,
    ) {
        if covered == full {
            if best.as_ref().is_none_or(|b| picked.len() < b.len()) {
                *best = Some(picked.clone());
            }
            return;
        }
        if depth == 0 {
            return;
        }
        // Branch on the lowest uncovered minterm for pruning.
        let uncovered = (!covered & full).trailing_zeros() as usize;
        for (i, &m) in masks.iter().enumerate() {
            if m & (1u64 << uncovered) == 0 {
                continue;
            }
            picked.push(i);
            search(masks, covered | m, full, depth - 1, picked, best);
            picked.pop();
        }
    }
    for depth in 1..=candidates.len() {
        let mut best = None;
        let mut picked = Vec::new();
        search(&masks, 0, full, depth, &mut picked, &mut best);
        if let Some(idx) = best {
            return idx.into_iter().map(|i| candidates[i]).collect();
        }
    }
    greedy_cover(candidates, minterms)
}

/// Exactly minimizes a single-output SOP: returns an equivalent cover
/// with the minimum number of product terms (prime implicants).
///
/// # Errors
///
/// Returns the input unchanged (as `Err`) when its support exceeds
/// [`MAX_EXACT_VARS`] — use [`Sop::minimize`] for wide functions.
///
/// # Examples
///
/// ```
/// use chortle_logic_opt::{minimize_exact, Sop};
///
/// // a·b + a·!b + !a·b  minimizes to  a + b.
/// let f = Sop::try_from_slices(&[
///     &[(0, false), (1, false)],
///     &[(0, false), (1, true)],
///     &[(0, true), (1, false)],
/// ]).unwrap();
/// let g = minimize_exact(&f).unwrap();
/// assert_eq!(g.num_cubes(), 2);
/// assert_eq!(g.num_literals(), 2);
/// ```
pub fn minimize_exact(f: &Sop) -> Result<Sop, Sop> {
    let support = f.support();
    if support.len() > MAX_EXACT_VARS {
        return Err(f.clone());
    }
    if f.is_zero() {
        return Ok(Sop::zero());
    }
    if f.is_one() {
        return Ok(Sop::one());
    }
    // Compact the support to 0..n.
    let n = support.len();
    let to_local: std::collections::HashMap<usize, usize> =
        support.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let local = f.rename_vars(&|v| to_local[&v]);
    // On-set minterms.
    let minterms: Vec<u32> = (0..(1u32 << n)).filter(|&m| local.eval(m as u64)).collect();
    if minterms.len() == 1usize << n {
        return Ok(Sop::one());
    }
    if minterms.is_empty() {
        return Ok(Sop::zero());
    }
    let primes = prime_implicants(&minterms, n);
    let cover = select_cover(&primes, &minterms);
    let cubes = cover.into_iter().map(|p| p.to_cube(n));
    let minimized = Sop::from_cubes(cubes).rename_vars(&|v| support[v]);
    Ok(minimized)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sop(cubes: &[&[(usize, bool)]]) -> Sop {
        Sop::try_from_slices(cubes).unwrap()
    }

    fn assert_equiv(a: &Sop, b: &Sop, vars: usize) {
        for bits in 0..(1u64 << vars) {
            assert_eq!(a.eval(bits), b.eval(bits), "differ at {bits:b}");
        }
    }

    #[test]
    fn classic_consensus() {
        // ab + !ac + bc: the consensus term bc is redundant.
        let f = sop(&[
            &[(0, false), (1, false)],
            &[(0, true), (2, false)],
            &[(1, false), (2, false)],
        ]);
        let g = minimize_exact(&f).unwrap();
        assert_eq!(g.num_cubes(), 2);
        assert_equiv(&f, &g, 3);
    }

    #[test]
    fn xor_stays_two_cubes() {
        let f = sop(&[&[(0, false), (1, true)], &[(0, true), (1, false)]]);
        let g = minimize_exact(&f).unwrap();
        assert_eq!(g.num_cubes(), 2);
        assert_equiv(&f, &g, 2);
    }

    #[test]
    fn constants() {
        assert!(minimize_exact(&Sop::zero()).unwrap().is_zero());
        assert!(minimize_exact(&Sop::one()).unwrap().is_one());
        // Tautology expressed as a + !a.
        let f = sop(&[&[(0, false)], &[(0, true)]]);
        assert!(minimize_exact(&f).unwrap().is_one());
    }

    #[test]
    fn minterm_expansion_collapses() {
        // All 4 minterms of ab-space with a=1: collapses to literal a.
        let f = sop(&[
            &[(0, false), (1, false), (2, false)],
            &[(0, false), (1, false), (2, true)],
            &[(0, false), (1, true), (2, false)],
            &[(0, false), (1, true), (2, true)],
        ]);
        let g = minimize_exact(&f).unwrap();
        assert_eq!(g.num_cubes(), 1);
        assert_eq!(g.num_literals(), 1);
        assert_equiv(&f, &g, 3);
    }

    #[test]
    fn respects_sparse_support() {
        // Variables 3 and 7 only.
        let f = sop(&[&[(3, false), (7, false)], &[(3, false), (7, true)]]);
        let g = minimize_exact(&f).unwrap();
        assert_eq!(g.num_cubes(), 1);
        assert_eq!(g.support(), vec![3]);
    }

    #[test]
    fn wide_support_is_refused() {
        let cubes: Vec<Vec<(usize, bool)>> = (0..14).map(|v| vec![(v, false)]).collect();
        let refs: Vec<&[(usize, bool)]> = cubes.iter().map(|c| c.as_slice()).collect();
        let f = Sop::try_from_slices(&refs).unwrap();
        assert!(minimize_exact(&f).is_err());
    }

    #[test]
    fn nine_sym_like_symmetric_function() {
        // Threshold ">= 2 of 4": known minimum cover of C(4,2) = 6 cubes.
        let mut cubes = Vec::new();
        for i in 0..4usize {
            for j in (i + 1)..4 {
                cubes.push(vec![(i, false), (j, false)]);
            }
        }
        // Add redundant wider cubes.
        cubes.push(vec![(0, false), (1, false), (2, false)]);
        let refs: Vec<&[(usize, bool)]> = cubes.iter().map(|c| c.as_slice()).collect();
        let f = Sop::try_from_slices(&refs).unwrap();
        let g = minimize_exact(&f).unwrap();
        assert_eq!(g.num_cubes(), 6);
        assert_equiv(&f, &g, 4);
    }
}
