//! Greedy common-subexpression extraction (MIS' `gkx` / `gcx`).
//!
//! Kernel extraction finds multi-cube divisors shared across node SOPs and
//! turns the best one into a new node; cube extraction does the same for
//! single-cube divisors. Both passes repeat greedily while the total
//! literal count decreases — the objective the paper's "standard MIS II
//! script" minimizes before technology mapping.

use std::collections::HashMap;

use crate::cube::{Cube, Literal};
use crate::kernels::kernels;
use crate::network::SopNetwork;
use crate::sop::Sop;

/// Caps kernel enumeration per node to keep extraction fast on wide SOPs.
const MAX_KERNELS_PER_NODE: usize = 200;
/// Nodes with more cubes than this are skipped by kernel enumeration.
const MAX_CUBES_FOR_KERNELING: usize = 120;

/// Outcome of one extraction pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExtractReport {
    /// New nodes created.
    pub extracted: usize,
    /// Total SOP literals saved.
    pub literals_saved: usize,
}

/// Literal-count value of substituting divisor `d` into node SOP `f`:
/// `lits(f) - (lits(q) + cubes(q) + lits(r))`, or `None` when `d` does not
/// divide `f`.
fn substitution_value(f: &Sop, d: &Sop) -> Option<isize> {
    let (q, r) = f.divide(d);
    if q.is_zero() {
        return None;
    }
    let new_lits = q.num_literals() + q.num_cubes() + r.num_literals();
    Some(f.num_literals() as isize - new_lits as isize)
}

/// Substitutes divisor node `x` (defined as `d`) into `f`: `f = x·q + r`.
fn substitute(f: &Sop, d: &Sop, x: usize) -> Sop {
    let (q, r) = f.divide(d);
    debug_assert!(!q.is_zero());
    let x_cube = Cube::from_literals([Literal::positive(x)]).expect("fresh variable");
    let mut cubes: Vec<Cube> = q
        .cubes()
        .iter()
        .map(|c| c.product(&x_cube).expect("fresh variable cannot clash"))
        .collect();
    cubes.extend(r.cubes().iter().cloned());
    Sop::from_cubes(cubes)
}

/// One greedy kernel-extraction sweep: finds the kernel with the best total
/// literal saving across all nodes, extracts it as a new node, substitutes
/// it everywhere it pays, and repeats until no kernel saves literals.
///
/// Returns the number of extractions and literals saved.
///
/// # Examples
///
/// ```
/// use chortle_logic_opt::{extract_kernels, Literal, Sop, SopNetwork};
///
/// let mut net = SopNetwork::new();
/// let vars: Vec<usize> = (0..4).map(|i| net.add_input(format!("i{i}"))).collect();
/// // Two nodes sharing the divisor (a + b).
/// let f = Sop::try_from_slices(&[
///     &[(vars[0], false), (vars[2], false)],
///     &[(vars[1], false), (vars[2], false)],
/// ]).unwrap();
/// let g = Sop::try_from_slices(&[
///     &[(vars[0], false), (vars[3], false)],
///     &[(vars[1], false), (vars[3], false)],
/// ]).unwrap();
/// let nf = net.add_node(f);
/// let ng = net.add_node(g);
/// net.add_output("f", Literal::positive(nf));
/// net.add_output("g", Literal::positive(ng));
///
/// let report = extract_kernels(&mut net);
/// assert_eq!(report.extracted, 1);
/// ```
pub fn extract_kernels(net: &mut SopNetwork) -> ExtractReport {
    let mut report = ExtractReport::default();
    loop {
        // Candidate kernels across all nodes, deduplicated by SOP value.
        let mut candidates: HashMap<Sop, Vec<usize>> = HashMap::new();
        for var in net.node_vars() {
            let sop = net.node_sop(var).expect("node var").clone();
            if sop.num_cubes() < 2 || sop.num_cubes() > MAX_CUBES_FOR_KERNELING {
                continue;
            }
            for k in kernels(&sop).into_iter().take(MAX_KERNELS_PER_NODE) {
                if k.kernel.num_cubes() < 2 {
                    continue;
                }
                candidates.entry(k.kernel).or_default().push(var);
            }
        }
        // Evaluate each candidate's total saving.
        type BestKernel = (isize, Sop, Vec<(usize, isize)>);
        let mut best: Option<BestKernel> = None;
        for (kernel, mut users) in candidates {
            users.sort_unstable();
            users.dedup();
            let mut uses = Vec::new();
            let mut total: isize = -(kernel.num_literals() as isize);
            for &var in &users {
                let f = net.node_sop(var).expect("node");
                if let Some(v) = substitution_value(f, &kernel) {
                    if v > 0 {
                        uses.push((var, v));
                        total += v;
                    }
                }
            }
            if uses.is_empty() || total <= 0 {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bt, bk, _)) => total > *bt || (total == *bt && kernel < *bk),
            };
            if better {
                best = Some((total, kernel, uses));
            }
        }
        let Some((total, kernel, uses)) = best else {
            break;
        };
        let x = net.add_node(kernel.clone());
        for (var, _) in uses {
            let f = net.node_sop(var).expect("node").clone();
            net.set_node_sop(var, substitute(&f, &kernel, x));
        }
        report.extracted += 1;
        report.literals_saved += total as usize;
    }
    report
}

/// One greedy cube-extraction sweep: finds the multi-literal cube shared by
/// the most product terms (weighted by literal savings), extracts it as a
/// new single-cube node, and repeats.
pub fn extract_cubes(net: &mut SopNetwork) -> ExtractReport {
    let mut report = ExtractReport::default();
    loop {
        // Candidate cubes: pairwise intersections of cubes within each
        // node (cross-node sharing is found because the intersection cube
        // is matched against every node below).
        let mut candidates: HashMap<Cube, ()> = HashMap::new();
        for var in net.node_vars() {
            let sop = net.node_sop(var).expect("node");
            let cubes = sop.cubes();
            for i in 0..cubes.len() {
                for j in (i + 1)..cubes.len().min(i + 40) {
                    let inter = cubes[i].intersection(&cubes[j]);
                    if inter.len() >= 2 {
                        candidates.insert(inter, ());
                    }
                }
            }
        }
        let mut best: Option<(isize, Cube, Vec<usize>)> = None;
        for (cube, ()) in candidates {
            let mut uses = Vec::new();
            let mut total: isize = -(cube.len() as isize);
            for var in net.node_vars() {
                let f = net.node_sop(var).expect("node");
                let covered = f.cubes().iter().filter(|c| cube.covers(c)).count() as isize;
                if covered >= 1 {
                    // Each covered cube replaces `len` literals by one.
                    let v = covered * (cube.len() as isize - 1);
                    if v > 0 {
                        uses.push(var);
                        total += v;
                    }
                }
            }
            if uses.is_empty() || total <= 0 {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bt, bc, _)) => total > *bt || (total == *bt && cube < *bc),
            };
            if better {
                best = Some((total, cube, uses));
            }
        }
        let Some((total, cube, uses)) = best else {
            break;
        };
        let x = net.add_node(Sop::from_cubes([cube.clone()]));
        let x_cube = Cube::from_literals([Literal::positive(x)]).expect("fresh variable");
        for var in uses {
            let f = net.node_sop(var).expect("node").clone();
            let cubes: Vec<Cube> = f
                .cubes()
                .iter()
                .map(|c| {
                    if cube.covers(c) {
                        c.without(&cube)
                            .product(&x_cube)
                            .expect("fresh variable cannot clash")
                    } else {
                        c.clone()
                    }
                })
                .collect();
            net.set_node_sop(var, Sop::from_cubes(cubes));
        }
        report.extracted += 1;
        report.literals_saved += total as usize;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sop(cubes: &[&[(usize, bool)]]) -> Sop {
        Sop::try_from_slices(cubes).unwrap()
    }

    fn check_preserved(net: &SopNetwork, reference: &SopNetwork, inputs: usize) {
        for bits in 0..(1u64 << inputs) {
            assert_eq!(
                net.eval_outputs(bits),
                reference.eval_outputs(bits),
                "outputs differ on {bits:b}"
            );
        }
    }

    #[test]
    fn kernel_extraction_saves_literals() {
        let mut net = SopNetwork::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let d = net.add_input("d");
        let e = net.add_input("e");
        // f = ac + bc + ad + bd (kernel a+b used twice, or c+d twice)
        let nf = net.add_node(sop(&[
            &[(a, false), (c, false)],
            &[(b, false), (c, false)],
            &[(a, false), (d, false)],
            &[(b, false), (d, false)],
        ]));
        // g = ae + be shares a+b.
        let ng = net.add_node(sop(&[&[(a, false), (e, false)], &[(b, false), (e, false)]]));
        net.add_output("f", Literal::positive(nf));
        net.add_output("g", Literal::positive(ng));

        let before = net.clone();
        let lits_before = net.literal_count();
        let report = extract_kernels(&mut net);
        assert!(report.extracted >= 1);
        assert!(net.literal_count() < lits_before);
        check_preserved(&net, &before, 5);
    }

    #[test]
    fn cube_extraction_factors_shared_products() {
        let mut net = SopNetwork::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let d = net.add_input("d");
        // f = abc + abd + ab!d : shared cube ab used three times, so
        // extraction saves a literal (two uses would only break even).
        let nf = net.add_node(sop(&[
            &[(a, false), (b, false), (c, false)],
            &[(a, false), (b, false), (d, false)],
            &[(a, false), (b, false), (c, true), (d, true)],
        ]));
        net.add_output("f", Literal::positive(nf));

        let before = net.clone();
        let report = extract_cubes(&mut net);
        assert_eq!(report.extracted, 1);
        check_preserved(&net, &before, 4);
    }

    #[test]
    fn no_extraction_when_nothing_shared() {
        let mut net = SopNetwork::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let nf = net.add_node(sop(&[&[(a, false)], &[(b, false)]]));
        net.add_output("f", Literal::positive(nf));
        assert_eq!(extract_kernels(&mut net).extracted, 0);
        assert_eq!(extract_cubes(&mut net).extracted, 0);
    }

    #[test]
    fn substitution_value_model() {
        // f = ac + bc, d = a + b: new form = x·c → lits 2, old 4, q = {c}
        // value = 4 - (1 + 1 + 0) = 2.
        let f = sop(&[&[(0, false), (2, false)], &[(1, false), (2, false)]]);
        let d = sop(&[&[(0, false)], &[(1, false)]]);
        assert_eq!(substitution_value(&f, &d), Some(2));
        let unrelated = sop(&[&[(3, false)], &[(4, false)]]);
        assert_eq!(substitution_value(&f, &unrelated), None);
    }
}
