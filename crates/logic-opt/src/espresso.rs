//! Heuristic two-level minimization in the espresso style.
//!
//! The real MIS `simplify` ran espresso on each node. This module
//! implements the two central espresso loops — EXPAND (grow each cube to
//! a prime by dropping literals) and IRREDUNDANT (drop cubes covered by
//! the rest) — on top of a recursive tautology checker, with no bound on
//! the variable count (unlike the exact Quine–McCluskey minimizer in
//! [`crate::minimize_exact`], which enumerates minterms).

use crate::cube::{Cube, Literal};
use crate::sop::Sop;

/// Returns the cofactor of `f` with respect to a single literal: the
/// cubes compatible with `lit`, with `lit`'s variable removed.
fn cofactor_literal(f: &Sop, lit: Literal) -> Sop {
    let mut cubes = Vec::new();
    for c in f.cubes() {
        if c.has(lit.complement()) {
            continue; // incompatible with the assignment
        }
        let reduced = Cube::from_literals(
            c.literals()
                .iter()
                .copied()
                .filter(|l| l.var() != lit.var()),
        )
        .expect("removing literals cannot create contradictions");
        cubes.push(reduced);
    }
    Sop::from_cubes(cubes)
}

/// Recursive tautology check: is `f` true under every assignment?
///
/// Uses the classic espresso reductions: true if any cube is empty
/// (constant-true term); false if there are no cubes; a unate variable
/// whose phase never helps can be dropped; otherwise Shannon-split on the
/// most frequent variable.
pub(crate) fn is_tautology(f: &Sop) -> bool {
    if f.is_one() {
        return true;
    }
    if f.is_zero() {
        return false;
    }
    // Unate reduction / variable selection: count phases per variable.
    let counts = f.literal_counts();
    let mut vars: std::collections::HashMap<usize, (usize, usize)> =
        std::collections::HashMap::new();
    for (lit, n) in &counts {
        let e = vars.entry(lit.var()).or_insert((0, 0));
        if lit.is_inverted() {
            e.1 += n;
        } else {
            e.0 += n;
        }
    }
    // A function with a unate variable v is a tautology iff the cofactor
    // with v's literal *removed in its present phase* is — equivalently,
    // cubes containing the unate literal can never cover the opposite
    // half alone, so check the cofactor against the absent phase.
    if let Some((&v, &(pos, neg))) = vars.iter().find(|(_, &(p, n))| p == 0 || n == 0) {
        let lit = if pos == 0 {
            // Only negative literals: on the v=1 half those cubes die.
            Literal::positive(v)
        } else {
            let _ = neg;
            Literal::negative(v)
        };
        return is_tautology(&cofactor_literal(f, lit));
    }
    // Binate: split on the most frequent variable.
    let (&v, _) = vars
        .iter()
        .max_by_key(|(_, &(p, n))| p + n)
        .expect("non-constant SOP has variables");
    is_tautology(&cofactor_literal(f, Literal::positive(v)))
        && is_tautology(&cofactor_literal(f, Literal::negative(v)))
}

/// Whether `f` covers every minterm of `cube` (`cube ⇒ f`).
///
/// Equivalent to: the cofactor of `f` by `cube` is a tautology.
pub fn covers_cube(f: &Sop, cube: &Cube) -> bool {
    let mut g = f.clone();
    for &lit in cube.literals() {
        g = cofactor_literal(&g, lit);
        if g.is_zero() {
            return false;
        }
    }
    is_tautology(&g)
}

/// EXPAND: grows each cube of `f` toward a prime implicant by removing
/// literals whose removal keeps the cube inside the function. Cubes are
/// processed largest-first, and containment is re-checked against the
/// evolving cover.
fn expand(f: &Sop) -> Sop {
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    cubes.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let reference = f.clone();
    let mut out: Vec<Cube> = Vec::with_capacity(cubes.len());
    for cube in cubes {
        let mut current = cube;
        loop {
            let mut grown = false;
            for &lit in current.clone().literals() {
                let candidate =
                    Cube::from_literals(current.literals().iter().copied().filter(|&l| l != lit))
                        .expect("subset of a cube");
                if covers_cube(&reference, &candidate) {
                    current = candidate;
                    grown = true;
                    break;
                }
            }
            if !grown {
                break;
            }
        }
        out.push(current);
    }
    Sop::from_cubes(out)
}

/// IRREDUNDANT: removes cubes covered by the rest of the cover.
fn irredundant(f: &Sop) -> Sop {
    let mut kept: Vec<Cube> = f.cubes().to_vec();
    // Largest cubes are most likely to be essential; try dropping the
    // smallest first.
    kept.sort_by_key(Cube::len);
    let mut i = kept.len();
    while i > 0 {
        i -= 1;
        let candidate = kept[i].clone();
        let rest = Sop::from_cubes(
            kept.iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| c.clone()),
        );
        if !rest.is_zero() && covers_cube(&rest, &candidate) {
            kept.remove(i);
        }
    }
    Sop::from_cubes(kept)
}

/// Heuristically minimizes an SOP: one EXPAND pass (cubes become primes)
/// followed by IRREDUNDANT (redundant primes dropped). Unlike
/// [`crate::minimize_exact`] there is no support-size limit; unlike
/// espresso proper there is no REDUCE/iterate loop, so the result is a
/// prime irredundant cover but not necessarily a minimum one.
///
/// # Examples
///
/// ```
/// use chortle_logic_opt::{heuristic_minimize, Sop};
///
/// // ab + a!b + !ab  →  a + b.
/// let f = Sop::try_from_slices(&[
///     &[(0, false), (1, false)],
///     &[(0, false), (1, true)],
///     &[(0, true), (1, false)],
/// ]).unwrap();
/// let g = heuristic_minimize(&f);
/// assert_eq!(g.num_cubes(), 2);
/// assert_eq!(g.num_literals(), 2);
/// ```
pub fn heuristic_minimize(f: &Sop) -> Sop {
    if f.is_zero() || f.is_one() {
        return f.clone();
    }
    let mut g = f.clone();
    g.minimize();
    let expanded = expand(&g);
    let mut reduced = irredundant(&expanded);
    reduced.minimize();
    reduced
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sop(cubes: &[&[(usize, bool)]]) -> Sop {
        Sop::try_from_slices(cubes).unwrap()
    }

    fn assert_equiv(a: &Sop, b: &Sop, vars: usize) {
        for bits in 0..(1u64 << vars) {
            assert_eq!(a.eval(bits), b.eval(bits), "differ at {bits:b}");
        }
    }

    #[test]
    fn tautology_basics() {
        assert!(is_tautology(&Sop::one()));
        assert!(!is_tautology(&Sop::zero()));
        // a + !a is a tautology.
        assert!(is_tautology(&sop(&[&[(0, false)], &[(0, true)]])));
        // a + b is not.
        assert!(!is_tautology(&sop(&[&[(0, false)], &[(1, false)]])));
        // ab + a!b + !a is a tautology.
        assert!(is_tautology(&sop(&[
            &[(0, false), (1, false)],
            &[(0, false), (1, true)],
            &[(0, true)],
        ])));
    }

    #[test]
    fn covers_cube_detects_containment() {
        // f = a + bc covers cube abc and cube a!b, but not cube b.
        let f = sop(&[&[(0, false)], &[(1, false), (2, false)]]);
        let abc = Cube::from_literals([
            Literal::positive(0),
            Literal::positive(1),
            Literal::positive(2),
        ])
        .unwrap();
        let a_nb = Cube::from_literals([Literal::positive(0), Literal::negative(1)]).unwrap();
        let b = Cube::from_literals([Literal::positive(1)]).unwrap();
        assert!(covers_cube(&f, &abc));
        assert!(covers_cube(&f, &a_nb));
        assert!(!covers_cube(&f, &b));
    }

    #[test]
    fn consensus_term_removed() {
        // ab + !ac + bc: bc is redundant.
        let f = sop(&[
            &[(0, false), (1, false)],
            &[(0, true), (2, false)],
            &[(1, false), (2, false)],
        ]);
        let g = heuristic_minimize(&f);
        assert_eq!(g.num_cubes(), 2);
        assert_equiv(&f, &g, 3);
    }

    #[test]
    fn expansion_reaches_primes() {
        // All four minterms with a=1 expand to the single literal a.
        let f = sop(&[
            &[(0, false), (1, false), (2, false)],
            &[(0, false), (1, false), (2, true)],
            &[(0, false), (1, true), (2, false)],
            &[(0, false), (1, true), (2, true)],
        ]);
        let g = heuristic_minimize(&f);
        assert_eq!(g.num_cubes(), 1);
        assert_eq!(g.num_literals(), 1);
        assert_equiv(&f, &g, 3);
    }

    #[test]
    fn wide_support_is_handled() {
        // 20 variables — far beyond the exact minimizer's bound.
        let cubes: Vec<Vec<(usize, bool)>> = (0..20)
            .map(|v| vec![(v, false), ((v + 1) % 20, false)])
            .collect();
        let refs: Vec<&[(usize, bool)]> = cubes.iter().map(|c| c.as_slice()).collect();
        let f = Sop::try_from_slices(&refs).unwrap();
        let g = heuristic_minimize(&f);
        assert!(g.num_cubes() <= f.num_cubes());
        // Spot-check equivalence on random assignments.
        let mut rng = chortle_netlist::SplitMix64::new(5);
        for _ in 0..2000 {
            let bits = rng.next_u64() & ((1 << 20) - 1);
            assert_eq!(f.eval(bits), g.eval(bits), "differ at {bits:b}");
        }
    }

    #[test]
    fn xor_is_already_prime_irredundant() {
        let f = sop(&[&[(0, false), (1, true)], &[(0, true), (1, false)]]);
        let g = heuristic_minimize(&f);
        assert_eq!(g, f);
    }
}
