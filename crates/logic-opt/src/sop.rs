//! Sums of products and algebraic (weak) division.

use std::collections::HashMap;
use std::fmt;

use crate::cube::{Cube, Literal};

/// A sum of products: a set of [`Cube`]s, kept sorted and duplicate-free.
///
/// The empty SOP is the constant false; an SOP containing the empty cube is
/// treated as constant true by the algebraic operators.
///
/// # Examples
///
/// ```
/// use chortle_logic_opt::{Cube, Literal, Sop};
///
/// // f = a·b + a·c
/// let f = Sop::try_from_slices(&[&[(0, false), (1, false)], &[(0, false), (2, false)]])
///     .unwrap();
/// assert_eq!(f.num_cubes(), 2);
/// assert_eq!(f.num_literals(), 4);
/// assert_eq!(f.common_cube().literals(), &[Literal::positive(0)]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Sop {
    cubes: Vec<Cube>,
}

impl Sop {
    /// The constant-false SOP (no cubes).
    pub fn zero() -> Self {
        Sop::default()
    }

    /// The constant-true SOP (the single empty cube).
    pub fn one() -> Self {
        Sop {
            cubes: vec![Cube::one()],
        }
    }

    /// Builds an SOP from cubes, sorting and deduplicating.
    pub fn from_cubes<I: IntoIterator<Item = Cube>>(cubes: I) -> Self {
        let mut v: Vec<Cube> = cubes.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Sop { cubes: v }
    }

    /// Convenience constructor from `(var, inverted)` pair slices; returns
    /// `None` if any cube is contradictory.
    pub fn try_from_slices(cubes: &[&[(usize, bool)]]) -> Option<Self> {
        let mut v = Vec::with_capacity(cubes.len());
        for lits in cubes {
            v.push(Cube::from_literals(
                lits.iter().map(|&(var, inv)| Literal::with_phase(var, inv)),
            )?);
        }
        Some(Sop::from_cubes(v))
    }

    /// The cubes in sorted order.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes (product terms).
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Total literal count — the cost function of algebraic optimization.
    pub fn num_literals(&self) -> usize {
        self.cubes.iter().map(Cube::len).sum()
    }

    /// `true` if the SOP is the constant false.
    pub fn is_zero(&self) -> bool {
        self.cubes.is_empty()
    }

    /// `true` if the SOP contains the constant-true cube (and therefore is
    /// the constant true).
    pub fn is_one(&self) -> bool {
        self.cubes.iter().any(Cube::is_empty)
    }

    /// `true` if the SOP is a single cube.
    pub fn is_single_cube(&self) -> bool {
        self.cubes.len() == 1
    }

    /// Adds a cube, keeping the invariants.
    pub fn insert(&mut self, cube: Cube) {
        if let Err(pos) = self.cubes.binary_search(&cube) {
            self.cubes.insert(pos, cube);
        }
    }

    /// Removes single-cube containment: drops any cube covered by another
    /// cube of the SOP. (If constant-true is present, everything else
    /// collapses.)
    ///
    /// # Examples
    ///
    /// ```
    /// use chortle_logic_opt::Sop;
    /// let mut f = Sop::try_from_slices(&[&[(0, false)], &[(0, false), (1, false)]]).unwrap();
    /// f.minimize();
    /// assert_eq!(f.num_cubes(), 1); // a·b absorbed by a
    /// ```
    pub fn minimize(&mut self) {
        if self.is_one() {
            *self = Sop::one();
            return;
        }
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
        'outer: for (i, c) in cubes.iter().enumerate() {
            for (j, other) in cubes.iter().enumerate() {
                if i != j && other.covers(c) && (other.len() < c.len() || j < i) {
                    continue 'outer;
                }
            }
            kept.push(c.clone());
        }
        self.cubes = kept;
    }

    /// The largest cube dividing every cube of the SOP (the intersection of
    /// all cubes); the empty cube for a cube-free or empty SOP.
    pub fn common_cube(&self) -> Cube {
        let mut it = self.cubes.iter();
        let first = match it.next() {
            Some(c) => c.clone(),
            None => return Cube::one(),
        };
        it.fold(first, |acc, c| acc.intersection(c))
    }

    /// Whether the SOP is *cube-free*: no single literal divides every
    /// cube, and the SOP has at least two cubes.
    pub fn is_cube_free(&self) -> bool {
        self.cubes.len() >= 2 && self.common_cube().is_empty()
    }

    /// Divides out the common cube, returning `(common, cube_free_part)`.
    pub fn make_cube_free(&self) -> (Cube, Sop) {
        let common = self.common_cube();
        if common.is_empty() {
            return (Cube::one(), self.clone());
        }
        let free = Sop::from_cubes(self.cubes.iter().map(|c| c.without(&common)));
        (common, free)
    }

    /// The quotient of dividing by a single cube: `{ c \ d : d ⊆ c }`.
    pub fn divide_by_cube(&self, d: &Cube) -> Sop {
        Sop::from_cubes(
            self.cubes
                .iter()
                .filter(|c| d.covers(c))
                .map(|c| c.without(d)),
        )
    }

    /// Weak (algebraic) division by `divisor`: returns `(quotient,
    /// remainder)` with `self = quotient * divisor + remainder` and the
    /// product quotient×divisor having no variable overlap per term.
    ///
    /// A divisor that is constant false yields quotient false and remainder
    /// `self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use chortle_logic_opt::Sop;
    /// // f = a·c + a·d + b·c + b·d + e ; d = a + b  -> q = c + d, r = e
    /// let f = Sop::try_from_slices(&[
    ///     &[(0, false), (2, false)],
    ///     &[(0, false), (3, false)],
    ///     &[(1, false), (2, false)],
    ///     &[(1, false), (3, false)],
    ///     &[(4, false)],
    /// ]).unwrap();
    /// let d = Sop::try_from_slices(&[&[(0, false)], &[(1, false)]]).unwrap();
    /// let (q, r) = f.divide(&d);
    /// assert_eq!(q, Sop::try_from_slices(&[&[(2, false)], &[(3, false)]]).unwrap());
    /// assert_eq!(r, Sop::try_from_slices(&[&[(4, false)]]).unwrap());
    /// ```
    pub fn divide(&self, divisor: &Sop) -> (Sop, Sop) {
        if divisor.is_zero() {
            return (Sop::zero(), self.clone());
        }
        let mut quotient: Option<Sop> = None;
        for d in &divisor.cubes {
            let qi = self.divide_by_cube(d);
            quotient = Some(match quotient {
                None => qi,
                Some(q) => q.intersect_cubes(&qi),
            });
            if quotient.as_ref().is_some_and(Sop::is_zero) {
                break;
            }
        }
        let quotient = quotient.unwrap_or_else(Sop::zero);
        if quotient.is_zero() {
            return (Sop::zero(), self.clone());
        }
        // remainder = self - quotient*divisor
        let mut product: Vec<Cube> = Vec::new();
        for q in &quotient.cubes {
            for d in &divisor.cubes {
                if let Some(p) = q.product(d) {
                    product.push(p);
                }
            }
        }
        let product = Sop::from_cubes(product);
        let remainder = Sop::from_cubes(
            self.cubes
                .iter()
                .filter(|c| !product.cubes.contains(c))
                .cloned(),
        );
        (quotient, remainder)
    }

    /// Set intersection of cube lists (both operands sorted).
    fn intersect_cubes(&self, other: &Sop) -> Sop {
        Sop {
            cubes: self
                .cubes
                .iter()
                .filter(|c| other.cubes.binary_search(c).is_ok())
                .cloned()
                .collect(),
        }
    }

    /// Occurrence count of every literal across the cubes.
    pub fn literal_counts(&self) -> HashMap<Literal, usize> {
        let mut counts = HashMap::new();
        for c in &self.cubes {
            for &l in c.literals() {
                *counts.entry(l).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Variables referenced anywhere in the SOP, ascending and unique.
    pub fn support(&self) -> Vec<usize> {
        let mut vars: Vec<usize> = self
            .cubes
            .iter()
            .flat_map(|c| c.literals().iter().map(|l| l.var()))
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Largest variable index referenced, or `None` if no literals.
    pub fn max_var(&self) -> Option<usize> {
        self.cubes.iter().filter_map(Cube::max_var).max()
    }

    /// Evaluates the SOP under an assignment (bit `v` = variable `v`).
    pub fn eval(&self, bits: u64) -> bool {
        self.cubes.iter().any(|c| c.eval(bits))
    }

    /// Renames variables through `map` (old index → new index).
    ///
    /// # Panics
    ///
    /// Panics if a cube becomes contradictory (two old variables mapping to
    /// the same new variable with opposite phases).
    pub fn rename_vars(&self, map: &dyn Fn(usize) -> usize) -> Sop {
        Sop::from_cubes(self.cubes.iter().map(|c| {
            Cube::from_literals(
                c.literals()
                    .iter()
                    .map(|l| Literal::with_phase(map(l.var()), l.is_inverted())),
            )
            .expect("variable renaming must not create contradictions")
        }))
    }
}

impl fmt::Debug for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c:?}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sop(cubes: &[&[(usize, bool)]]) -> Sop {
        Sop::try_from_slices(cubes).unwrap()
    }

    #[test]
    fn constants() {
        assert!(Sop::zero().is_zero());
        assert!(Sop::one().is_one());
        assert!(!Sop::one().is_zero());
    }

    #[test]
    fn minimize_removes_contained() {
        let mut f = sop(&[&[(0, false)], &[(0, false), (1, false)], &[(2, true)]]);
        f.minimize();
        assert_eq!(f, sop(&[&[(0, false)], &[(2, true)]]));
    }

    #[test]
    fn minimize_handles_duplicates_of_equal_size() {
        let mut f = sop(&[&[(0, false), (1, false)]]);
        f.insert(Cube::from_literals([Literal::positive(0), Literal::positive(1)]).unwrap());
        f.minimize();
        assert_eq!(f.num_cubes(), 1);
    }

    #[test]
    fn cube_free_detection() {
        let f = sop(&[&[(0, false), (1, false)], &[(0, false), (2, false)]]);
        assert!(!f.is_cube_free());
        let (common, free) = f.make_cube_free();
        assert_eq!(common.literals(), &[Literal::positive(0)]);
        assert!(free.is_cube_free());
    }

    #[test]
    fn divide_by_cube_picks_covered_terms() {
        // f = abc + abd + e, divide by ab
        let f = sop(&[
            &[(0, false), (1, false), (2, false)],
            &[(0, false), (1, false), (3, false)],
            &[(4, false)],
        ]);
        let ab = Cube::from_literals([Literal::positive(0), Literal::positive(1)]).unwrap();
        let q = f.divide_by_cube(&ab);
        assert_eq!(q, sop(&[&[(2, false)], &[(3, false)]]));
    }

    #[test]
    fn weak_division_identity() {
        // f / f = 1 with remainder 0 whenever f is a single cube... check a
        // multi-cube identity: (a+b)/(a+b) = 1, r = 0.
        let f = sop(&[&[(0, false)], &[(1, false)]]);
        let (q, r) = f.divide(&f);
        assert!(q.is_one());
        assert!(r.is_zero());
    }

    #[test]
    fn weak_division_no_common_part() {
        let f = sop(&[&[(0, false)]]);
        let d = sop(&[&[(1, false)]]);
        let (q, r) = f.divide(&d);
        assert!(q.is_zero());
        assert_eq!(r, f);
    }

    #[test]
    fn division_reconstructs_function() {
        // f = q*d + r must hold functionally.
        let f = sop(&[
            &[(0, false), (2, false)],
            &[(1, false), (2, false)],
            &[(0, false), (3, false)],
            &[(1, false), (3, false)],
            &[(4, true)],
        ]);
        let d = sop(&[&[(0, false)], &[(1, false)]]);
        let (q, r) = f.divide(&d);
        for bits in 0..32u64 {
            let lhs = f.eval(bits);
            let rhs = (q.eval(bits) && d.eval(bits)) || r.eval(bits);
            assert_eq!(lhs, rhs, "bits={bits:05b}");
        }
    }

    #[test]
    fn literal_counts_and_support() {
        let f = sop(&[&[(0, false), (3, true)], &[(0, false)]]);
        let counts = f.literal_counts();
        assert_eq!(counts[&Literal::positive(0)], 2);
        assert_eq!(counts[&Literal::negative(3)], 1);
        assert_eq!(f.support(), vec![0, 3]);
        assert_eq!(f.max_var(), Some(3));
    }

    #[test]
    fn rename_vars_applies_map() {
        let f = sop(&[&[(0, false), (1, true)]]);
        let g = f.rename_vars(&|v| v + 10);
        assert_eq!(g, sop(&[&[(10, false), (11, true)]]));
    }

    #[test]
    fn eval_is_or_of_cubes() {
        let f = sop(&[&[(0, false)], &[(1, true)]]);
        assert!(f.eval(0b01));
        assert!(f.eval(0b00));
        assert!(!f.eval(0b10));
    }
}
