//! The multi-level SOP network manipulated by the optimization script.
//!
//! A [`SopNetwork`] is a set of named primary inputs plus internal nodes,
//! each carrying a sum-of-products over a *global* variable space in which
//! variable `v` is item `v` (input or node). Optimization passes rewrite
//! node SOPs in place; [`SopNetwork::to_network`] factors every node and
//! emits the AND/OR [`Network`] consumed by technology mapping.

use std::collections::HashMap;

use chortle_netlist::{Network, NetworkError, NodeOp, Signal};

use crate::cube::{Cube, Literal};
use crate::factor::{factor, Factored};
use crate::sop::Sop;

/// An item of the global variable space.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Item {
    /// A primary input with its name.
    Input(String),
    /// An internal node defined by an SOP over the global space.
    Node(Sop),
}

/// A multi-level network of SOP nodes over a shared variable space.
///
/// # Examples
///
/// ```
/// use chortle_logic_opt::{Literal, Sop, SopNetwork};
///
/// let mut net = SopNetwork::new();
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let f = Sop::try_from_slices(&[&[(a, false), (b, false)]]).unwrap();
/// let n = net.add_node(f);
/// net.add_output("z", Literal::positive(n));
/// assert_eq!(net.literal_count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SopNetwork {
    items: Vec<Item>,
    outputs: Vec<(String, Literal)>,
}

impl SopNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        SopNetwork::default()
    }

    /// Adds a primary input; returns its global variable index.
    pub fn add_input(&mut self, name: impl Into<String>) -> usize {
        self.items.push(Item::Input(name.into()));
        self.items.len() - 1
    }

    /// Adds an internal node with the given SOP; returns its global
    /// variable index.
    ///
    /// # Panics
    ///
    /// Panics if the SOP references a variable index that does not exist
    /// yet and is not the node itself (self-reference is always invalid).
    pub fn add_node(&mut self, sop: Sop) -> usize {
        let idx = self.items.len();
        if let Some(max) = sop.max_var() {
            assert!(max < idx, "node SOP references undefined variable v{max}");
        }
        self.items.push(Item::Node(sop));
        idx
    }

    /// Declares a primary output driven by `literal`.
    pub fn add_output(&mut self, name: impl Into<String>, literal: Literal) {
        assert!(
            literal.var() < self.items.len(),
            "output references undefined item"
        );
        self.outputs.push((name.into(), literal));
    }

    /// Number of items (inputs + nodes).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the network has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Indexes of the primary inputs.
    pub fn input_vars(&self) -> Vec<usize> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, it)| matches!(it, Item::Input(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// The SOP of node `var`, or `None` for inputs.
    pub fn node_sop(&self, var: usize) -> Option<&Sop> {
        match &self.items[var] {
            Item::Node(s) => Some(s),
            Item::Input(_) => None,
        }
    }

    /// Replaces the SOP of node `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is a primary input.
    pub fn set_node_sop(&mut self, var: usize, sop: Sop) {
        match &mut self.items[var] {
            Item::Node(s) => *s = sop,
            Item::Input(_) => panic!("cannot assign an SOP to a primary input"),
        }
    }

    /// Indexes of all internal nodes.
    pub fn node_vars(&self) -> Vec<usize> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, it)| matches!(it, Item::Node(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Total SOP literal count over all nodes — the optimization cost.
    pub fn literal_count(&self) -> usize {
        self.items
            .iter()
            .map(|it| match it {
                Item::Node(s) => s.num_literals(),
                Item::Input(_) => 0,
            })
            .sum()
    }

    /// The declared outputs.
    pub fn outputs(&self) -> &[(String, Literal)] {
        &self.outputs
    }

    /// Applies single-cube-containment minimization to every node.
    pub fn minimize_nodes(&mut self) {
        for item in &mut self.items {
            if let Item::Node(s) = item {
                s.minimize();
            }
        }
    }

    /// Imports an AND/OR [`Network`]: each gate becomes an SOP node (AND →
    /// one cube, OR → one single-literal cube per fanin).
    pub fn from_network(network: &Network) -> Self {
        let mut out = SopNetwork::new();
        let mut var_of = vec![usize::MAX; network.len()];
        for (id, node) in network.nodes() {
            let var = match node.op() {
                NodeOp::Input => out.add_input(
                    node.name()
                        .map(str::to_owned)
                        .unwrap_or_else(|| format!("n{}", id.index())),
                ),
                NodeOp::Const(v) => out.add_node(if v { Sop::one() } else { Sop::zero() }),
                NodeOp::And => {
                    let cube =
                        Cube::from_literals(node.fanins().iter().map(|s| {
                            Literal::with_phase(var_of[s.node().index()], s.is_inverted())
                        }))
                        .expect("network gates reference distinct nodes");
                    out.add_node(Sop::from_cubes([cube]))
                }
                NodeOp::Or => {
                    let cubes = node.fanins().iter().map(|s| {
                        Cube::from_literals([Literal::with_phase(
                            var_of[s.node().index()],
                            s.is_inverted(),
                        )])
                        .expect("single literal cube")
                    });
                    out.add_node(Sop::from_cubes(cubes))
                }
            };
            var_of[id.index()] = var;
        }
        for o in network.outputs() {
            out.add_output(
                o.name.clone(),
                Literal::with_phase(var_of[o.signal.node().index()], o.signal.is_inverted()),
            );
        }
        out
    }

    /// Fanout count of every item: positive-phase uses in node SOPs plus
    /// output drivers (either phase).
    pub fn use_counts(&self) -> Vec<(usize, usize)> {
        // (positive uses, negative uses)
        let mut counts = vec![(0usize, 0usize); self.items.len()];
        for item in &self.items {
            if let Item::Node(s) = item {
                for c in s.cubes() {
                    for l in c.literals() {
                        if l.is_inverted() {
                            counts[l.var()].1 += 1;
                        } else {
                            counts[l.var()].0 += 1;
                        }
                    }
                }
            }
        }
        for (_, l) in &self.outputs {
            if l.is_inverted() {
                counts[l.var()].1 += 1;
            } else {
                counts[l.var()].0 += 1;
            }
        }
        counts
    }

    /// Inlines ("eliminates") internal nodes whose substitution into their
    /// consumers does not grow the total literal count by more than
    /// `threshold` (MIS' `eliminate` with a value threshold).
    ///
    /// Only positive-phase uses can be inlined algebraically; nodes with
    /// inverted uses or output drivers keep their definition (but positive
    /// uses may still be substituted away when the node then becomes dead).
    ///
    /// Returns the number of nodes eliminated.
    pub fn eliminate(&mut self, threshold: isize) -> usize {
        let mut eliminated = 0;
        // Repeat until a fixed point: inlining can enable more inlining.
        loop {
            let mut progress = false;
            let counts = self.use_counts();
            #[allow(clippy::needless_range_loop)] // items are mutated inside
            for var in 0..self.items.len() {
                let sop = match &self.items[var] {
                    Item::Node(s) => s.clone(),
                    Item::Input(_) => continue,
                };
                let (pos, neg) = counts[var];
                // Inline only pure positive-phase, non-output nodes whose
                // SOP would not blow up the consumers.
                if neg > 0 || pos == 0 {
                    continue;
                }
                if self.outputs.iter().any(|(_, l)| l.var() == var) {
                    continue;
                }
                if sop.is_zero() || sop.is_one() {
                    // Constants always inline (handled below uniformly).
                } else {
                    // Exact literal delta of distributing the node's SOP
                    // into every consuming cube: a cube of length L whose
                    // literal x is replaced by an m-cube SOP with λ
                    // literals becomes m cubes totalling m(L-1) + λ
                    // literals; the node's own λ literals disappear.
                    let m = sop.num_cubes() as isize;
                    let lam = sop.num_literals() as isize;
                    let mut value = -lam;
                    let x = Literal::positive(var);
                    for item in &self.items {
                        if let Item::Node(s) = item {
                            for c in s.cubes() {
                                if c.has(x) {
                                    let len = c.len() as isize;
                                    value += m * (len - 1) + lam - len;
                                }
                            }
                        }
                    }
                    let _ = pos;
                    if value > threshold {
                        continue;
                    }
                }
                if self.inline_node(var, &sop) {
                    eliminated += 1;
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        eliminated
    }

    /// Substitutes node `var`'s SOP into every positive use. Returns `true`
    /// if all uses were removed (the node is then dead and emptied).
    fn inline_node(&mut self, var: usize, sop: &Sop) -> bool {
        let lit = Literal::positive(var);
        let mut all_inlined = true;
        for i in 0..self.items.len() {
            if i == var {
                continue;
            }
            let consumer = match &self.items[i] {
                Item::Node(s) if s.literal_counts().contains_key(&lit) => s.clone(),
                _ => continue,
            };
            let mut new_cubes: Vec<Cube> = Vec::new();
            for c in consumer.cubes() {
                if c.has(lit) {
                    let rest = c.without(&Cube::from_literals([lit]).expect("lit cube"));
                    for d in sop.cubes() {
                        if let Some(p) = rest.product(d) {
                            new_cubes.push(p);
                        }
                    }
                    // sop == 0 simply drops the cube; contradictions drop
                    // the offending product.
                } else {
                    new_cubes.push(c.clone());
                }
            }
            let mut new_sop = Sop::from_cubes(new_cubes);
            new_sop.minimize();
            self.items[i] = Item::Node(new_sop);
        }
        // Outputs referencing the node keep it alive.
        if self.outputs.iter().any(|(_, l)| l.var() == var) {
            all_inlined = false;
        }
        if all_inlined {
            self.items[var] = Item::Node(Sop::zero());
        }
        all_inlined
    }

    /// Evaluates every output on an input assignment (bit `i` of `bits` is
    /// the value of the `i`-th primary input in declaration order).
    ///
    /// Useful for equivalence checks in tests; networks must be acyclic.
    pub fn eval_outputs(&self, bits: u64) -> Vec<bool> {
        let order = self.topological_order().expect("acyclic network");
        let mut values = vec![false; self.items.len()];
        let mut input_no = 0usize;
        // Assign inputs in declaration order first.
        for (i, item) in self.items.iter().enumerate() {
            if matches!(item, Item::Input(_)) {
                values[i] = (bits >> input_no) & 1 == 1;
                input_no += 1;
            }
        }
        for &i in &order {
            if let Item::Node(s) = &self.items[i] {
                let mut v = false;
                'cubes: for c in s.cubes() {
                    for l in c.literals() {
                        if values[l.var()] == l.is_inverted() {
                            continue 'cubes;
                        }
                    }
                    v = true;
                    break;
                }
                values[i] = v;
            }
        }
        self.outputs
            .iter()
            .map(|(_, l)| values[l.var()] != l.is_inverted())
            .collect()
    }

    /// Topological order of items (dependencies first); `None` on a cycle.
    fn topological_order(&self) -> Option<Vec<usize>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.items.len()];
        let mut order = Vec::with_capacity(self.items.len());
        for root in 0..self.items.len() {
            if marks[root] != Mark::White {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (i, ref mut child)) = stack.last_mut() {
                if marks[i] == Mark::Black {
                    stack.pop();
                    continue;
                }
                marks[i] = Mark::Grey;
                let deps: Vec<usize> = match &self.items[i] {
                    Item::Input(_) => Vec::new(),
                    Item::Node(s) => s.support(),
                };
                if *child < deps.len() {
                    let d = deps[*child];
                    *child += 1;
                    match marks[d] {
                        Mark::White => stack.push((d, 0)),
                        Mark::Grey => return None,
                        Mark::Black => {}
                    }
                } else {
                    marks[i] = Mark::Black;
                    order.push(i);
                    stack.pop();
                }
            }
        }
        Some(order)
    }

    /// Items reachable from the primary outputs (plus all inputs).
    fn live_items(&self) -> Vec<bool> {
        let mut live = vec![false; self.items.len()];
        let mut stack: Vec<usize> = self.outputs.iter().map(|(_, l)| l.var()).collect();
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut live[i], true) {
                continue;
            }
            if let Item::Node(s) = &self.items[i] {
                stack.extend(s.support());
            }
        }
        for (i, item) in self.items.iter().enumerate() {
            if matches!(item, Item::Input(_)) {
                live[i] = true; // primary inputs are always emitted
            }
        }
        live
    }

    /// Factors every node and emits the AND/OR [`Network`] for technology
    /// mapping. Dead nodes (unreachable from any output) are swept; all
    /// primary inputs are preserved.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::Structure`] if the SOP network contains a
    /// combinational cycle (which optimization passes never create).
    pub fn to_network(&self) -> Result<Network, NetworkError> {
        let order = self
            .topological_order()
            .ok_or_else(|| NetworkError::Structure("cycle in SOP network".into()))?;
        let live = self.live_items();
        let mut net = Network::new();
        // Each item maps to a polarized signal in the output network.
        let mut signal_of: HashMap<usize, Signal> = HashMap::new();
        // Primary inputs first, in declaration order, so the emitted
        // network's input list matches the SOP network's.
        for (i, item) in self.items.iter().enumerate() {
            if let Item::Input(name) = item {
                let id = net.add_input(name.clone());
                signal_of.insert(i, Signal::new(id));
            }
        }
        for &i in &order {
            if !live[i] {
                continue;
            }
            match &self.items[i] {
                Item::Input(_) => {}
                Item::Node(sop) => {
                    let tree = factor(sop);
                    let sig = emit_factored(&tree, &signal_of, &mut net);
                    signal_of.insert(i, sig);
                }
            }
        }
        for (name, lit) in &self.outputs {
            let sig = signal_of[&lit.var()];
            net.add_output(
                name.clone(),
                sig.with_inversion(sig.is_inverted() ^ lit.is_inverted()),
            );
        }
        Ok(net)
    }
}

/// Emits gates for a factored expression; returns the polarized signal of
/// its value.
fn emit_factored(tree: &Factored, signal_of: &HashMap<usize, Signal>, net: &mut Network) -> Signal {
    match tree {
        Factored::Const(v) => Signal::new(net.add_const(*v)),
        Factored::Literal(l) => {
            let s = signal_of[&l.var()];
            s.with_inversion(s.is_inverted() ^ l.is_inverted())
        }
        Factored::And(xs) | Factored::Or(xs) => {
            let op = if matches!(tree, Factored::And(_)) {
                NodeOp::And
            } else {
                NodeOp::Or
            };
            let mut fanins: Vec<Signal> = xs
                .iter()
                .map(|x| emit_factored(x, signal_of, net))
                .collect();
            // Deduplicate identical fanin nodes (can arise from factoring
            // degenerate SOPs); contradictory pairs collapse to constants.
            let mut seen = std::collections::HashSet::new();
            fanins.retain(|s| seen.insert(*s));
            if fanins.iter().any(|s| seen.contains(&!*s)) {
                return Signal::new(net.add_const(op == NodeOp::Or));
            }
            if fanins.len() == 1 {
                return fanins[0];
            }
            Signal::new(net.add_gate(op, fanins))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chortle_netlist::NodeOp;

    fn sop(cubes: &[&[(usize, bool)]]) -> Sop {
        Sop::try_from_slices(cubes).unwrap()
    }

    #[test]
    fn roundtrip_from_network() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g1 = net.add_gate(NodeOp::And, vec![a.into(), Signal::inverted(b)]);
        let g2 = net.add_gate(NodeOp::Or, vec![g1.into(), c.into()]);
        net.add_output("z", Signal::inverted(g2));

        let sop_net = SopNetwork::from_network(&net);
        let back = sop_net.to_network().expect("acyclic");
        back.validate().expect("valid");
        let f1 = net.signal_function(net.outputs()[0].signal).unwrap();
        let f2 = back.signal_function(back.outputs()[0].signal).unwrap();
        assert_eq!(f1, f2);
    }

    #[test]
    fn eval_outputs_matches_structure() {
        let mut n = SopNetwork::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_node(sop(&[&[(a, false), (b, true)]])); // a & !b
        n.add_output("z", Literal::positive(f));
        n.add_output("nz", Literal::negative(f));
        assert_eq!(n.eval_outputs(0b01), vec![true, false]);
        assert_eq!(n.eval_outputs(0b11), vec![false, true]);
    }

    #[test]
    fn eliminate_inlines_small_nodes() {
        let mut n = SopNetwork::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let t = n.add_node(sop(&[&[(a, false), (b, false)]])); // t = ab
        let z = n.add_node(sop(&[&[(t, false), (c, false)]])); // z = tc
        n.add_output("z", Literal::positive(z));

        let before: Vec<bool> = (0..8).map(|bits| n.eval_outputs(bits)[0]).collect();
        let removed = n.eliminate(0);
        assert_eq!(removed, 1);
        let after: Vec<bool> = (0..8).map(|bits| n.eval_outputs(bits)[0]).collect();
        assert_eq!(before, after);
        // z's SOP is now abc directly.
        assert_eq!(
            n.node_sop(z).unwrap(),
            &sop(&[&[(a, false), (b, false), (c, false)]])
        );
    }

    #[test]
    fn eliminate_keeps_inverted_uses() {
        let mut n = SopNetwork::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let t = n.add_node(sop(&[&[(a, false), (b, false)]]));
        let z = n.add_node(sop(&[&[(t, true)]])); // z = !t — not inlinable
        n.add_output("z", Literal::positive(z));
        assert_eq!(n.eliminate(0), 0);
        assert!(n.node_sop(t).is_some());
    }

    #[test]
    fn to_network_handles_inverted_outputs() {
        let mut n = SopNetwork::new();
        let a = n.add_input("a");
        let f = n.add_node(sop(&[&[(a, true)]])); // f = !a
        n.add_output("z", Literal::negative(f)); // z = !f = a
        let net = n.to_network().expect("acyclic");
        let t = net.signal_function(net.outputs()[0].signal).unwrap();
        assert!(t.eval(1));
        assert!(!t.eval(0));
    }

    #[test]
    fn detects_cycles() {
        let mut n = SopNetwork::new();
        let a = n.add_input("a");
        let f = n.add_node(sop(&[&[(a, false)]]));
        // Manually create a cycle by rewriting f to depend on itself.
        n.set_node_sop(f, sop(&[&[(f, false)]]));
        assert!(n.to_network().is_err());
    }

    #[test]
    fn literal_count_sums_nodes() {
        let mut n = SopNetwork::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        n.add_node(sop(&[&[(a, false), (b, false)], &[(a, true)]]));
        assert_eq!(n.literal_count(), 3);
    }
}
