//! Literals and cubes — the atoms of algebraic logic optimization.
//!
//! A [`Literal`] is a variable with a phase; a [`Cube`] is a product of
//! literals over distinct variables. Variables are plain indexes into
//! whatever space the surrounding structure defines (a node's fanins, or
//! the global signal space of a [`SopNetwork`](crate::SopNetwork)).
//!
//! Algebraic optimization treats `x` and `!x` as unrelated literals, which
//! is exactly what makes division, kernels and factoring fast.

use std::fmt;

/// A polarized variable: variable index plus phase.
///
/// # Examples
///
/// ```
/// use chortle_logic_opt::Literal;
///
/// let a = Literal::positive(0);
/// let na = Literal::negative(0);
/// assert_eq!(a.var(), na.var());
/// assert_eq!(a.complement(), na);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal(u32);

impl Literal {
    /// The positive-phase literal of variable `var`.
    pub fn positive(var: usize) -> Self {
        Literal((var as u32) << 1)
    }

    /// The negative-phase literal of variable `var`.
    pub fn negative(var: usize) -> Self {
        Literal(((var as u32) << 1) | 1)
    }

    /// A literal with an explicit phase flag.
    pub fn with_phase(var: usize, inverted: bool) -> Self {
        if inverted {
            Literal::negative(var)
        } else {
            Literal::positive(var)
        }
    }

    /// The literal's variable index.
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the literal is negative-phase.
    pub fn is_inverted(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite-phase literal of the same variable.
    pub fn complement(self) -> Self {
        Literal(self.0 ^ 1)
    }

    /// A dense code usable as an array index: `var * 2 + phase`.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`code`](Literal::code).
    pub fn from_code(code: usize) -> Self {
        Literal(code as u32)
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_inverted() {
            write!(f, "!v{}", self.var())
        } else {
            write!(f, "v{}", self.var())
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A product term: a set of literals over distinct variables, kept sorted.
///
/// The empty cube is the constant-true product (the algebraic "1").
///
/// # Examples
///
/// ```
/// use chortle_logic_opt::{Cube, Literal};
///
/// let ab = Cube::from_literals([Literal::positive(0), Literal::positive(1)]).unwrap();
/// let a = Cube::from_literals([Literal::positive(0)]).unwrap();
/// assert!(a.covers(&ab)); // fewer literals cover more minterms
/// assert_eq!(ab.without(&a).literals(), &[Literal::positive(1)]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Cube {
    literals: Vec<Literal>,
}

impl Cube {
    /// The constant-true cube (no literals).
    pub fn one() -> Self {
        Cube::default()
    }

    /// Builds a cube from literals; returns `None` if two literals of
    /// opposite phase share a variable (a contradictory, empty product).
    ///
    /// Duplicate literals are collapsed.
    pub fn from_literals<I: IntoIterator<Item = Literal>>(literals: I) -> Option<Self> {
        let mut lits: Vec<Literal> = literals.into_iter().collect();
        lits.sort_unstable();
        lits.dedup();
        for pair in lits.windows(2) {
            if pair[0].var() == pair[1].var() {
                return None; // x and !x in one product
            }
        }
        Some(Cube { literals: lits })
    }

    /// The cube's literals in ascending order.
    pub fn literals(&self) -> &[Literal] {
        &self.literals
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// `true` for the constant-true cube.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Whether `self` contains the given literal.
    pub fn has(&self, lit: Literal) -> bool {
        self.literals.binary_search(&lit).is_ok()
    }

    /// Whether every literal of `self` appears in `other` — algebraically,
    /// `self` *covers* `other` (divides it evenly as a cube).
    pub fn covers(&self, other: &Cube) -> bool {
        let mut it = other.literals.iter();
        'outer: for lit in &self.literals {
            for cand in it.by_ref() {
                if cand == lit {
                    continue 'outer;
                }
                if cand > lit {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// The cube `self / other`: literals of `self` not in `other`.
    ///
    /// Meaningful when [`covers`](Cube::covers) holds for `other` over
    /// `self`; otherwise it simply drops the shared literals.
    pub fn without(&self, other: &Cube) -> Cube {
        Cube {
            literals: self
                .literals
                .iter()
                .copied()
                .filter(|l| !other.has(*l))
                .collect(),
        }
    }

    /// The largest cube dividing both `self` and `other` (literal
    /// intersection).
    pub fn intersection(&self, other: &Cube) -> Cube {
        Cube {
            literals: self
                .literals
                .iter()
                .copied()
                .filter(|l| other.has(*l))
                .collect(),
        }
    }

    /// The product `self * other`; `None` if the product is contradictory.
    pub fn product(&self, other: &Cube) -> Option<Cube> {
        Cube::from_literals(self.literals.iter().chain(&other.literals).copied())
    }

    /// Evaluates the cube under an assignment (bit `v` of `bits` = value of
    /// variable `v`).
    pub fn eval(&self, bits: u64) -> bool {
        self.literals
            .iter()
            .all(|l| ((bits >> l.var()) & 1 == 1) != l.is_inverted())
    }

    /// Largest variable index referenced, or `None` for the empty cube.
    pub fn max_var(&self) -> Option<usize> {
        self.literals.last().map(|l| l.var())
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.literals.is_empty() {
            return write!(f, "1");
        }
        for (i, l) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{l:?}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits.iter().map(|&(v, inv)| Literal::with_phase(v, inv))).unwrap()
    }

    #[test]
    fn contradiction_is_none() {
        let lits = [Literal::positive(3), Literal::negative(3)];
        assert!(Cube::from_literals(lits).is_none());
    }

    #[test]
    fn duplicates_collapse() {
        let c = Cube::from_literals([Literal::positive(1), Literal::positive(1)]).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn covers_is_subset_of_literals() {
        let ab = cube(&[(0, false), (1, false)]);
        let abc = cube(&[(0, false), (1, false), (2, true)]);
        assert!(ab.covers(&abc));
        assert!(!abc.covers(&ab));
        assert!(Cube::one().covers(&ab));
        // Different phases never cover.
        let a = cube(&[(0, false)]);
        let na = cube(&[(0, true)]);
        assert!(!a.covers(&na));
    }

    #[test]
    fn without_and_intersection() {
        let abc = cube(&[(0, false), (1, true), (2, false)]);
        let b = cube(&[(1, true)]);
        assert_eq!(abc.without(&b), cube(&[(0, false), (2, false)]));
        assert_eq!(abc.intersection(&b), b);
    }

    #[test]
    fn product_merges_or_contradicts() {
        let a = cube(&[(0, false)]);
        let b = cube(&[(1, true)]);
        assert_eq!(a.product(&b).unwrap(), cube(&[(0, false), (1, true)]));
        let na = cube(&[(0, true)]);
        assert!(a.product(&na).is_none());
    }

    #[test]
    fn eval_respects_phase() {
        let c = cube(&[(0, false), (2, true)]);
        assert!(c.eval(0b001));
        assert!(!c.eval(0b101));
        assert!(!c.eval(0b000));
        assert!(Cube::one().eval(0));
    }
}
