//! Kernel extraction (Brayton–McMullen).
//!
//! A *kernel* of an SOP `f` is a cube-free quotient `f / c` for some cube
//! `c` (the *co-kernel*). Kernels are the carriers of multi-cube common
//! subexpressions: two SOPs share a multi-cube divisor iff the intersection
//! of one kernel from each has two or more cubes.
//!
//! *Level-0* kernels contain no kernels other than themselves — no literal
//! appears in two of their cubes. The MIS library construction in the paper
//! (Section 4.1) is built from level-0 kernels with at most K literals.

use crate::cube::Cube;
use crate::sop::Sop;

/// A kernel together with its co-kernel cube.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Kernel {
    /// The cube whose quotient produced the kernel.
    pub co_kernel: Cube,
    /// The cube-free quotient.
    pub kernel: Sop,
}

/// Computes all kernels of `f` (including `f` itself, made cube-free, with
/// its common cube as co-kernel).
///
/// Returns an empty list for SOPs with fewer than two cubes (they have no
/// cube-free quotients).
///
/// # Examples
///
/// ```
/// use chortle_logic_opt::{kernels, Sop};
///
/// // f = a·c + a·d + b·c + b·d
/// let f = Sop::try_from_slices(&[
///     &[(0, false), (2, false)],
///     &[(0, false), (3, false)],
///     &[(1, false), (2, false)],
///     &[(1, false), (3, false)],
/// ]).unwrap();
/// let ks = kernels(&f);
/// let ab = Sop::try_from_slices(&[&[(0, false)], &[(1, false)]]).unwrap();
/// let cd = Sop::try_from_slices(&[&[(2, false)], &[(3, false)]]).unwrap();
/// assert!(ks.iter().any(|k| k.kernel == ab));
/// assert!(ks.iter().any(|k| k.kernel == cd));
/// ```
pub fn kernels(f: &Sop) -> Vec<Kernel> {
    let mut out = Vec::new();
    if f.num_cubes() < 2 {
        return out;
    }
    let (common, free) = f.make_cube_free();
    out.push(Kernel {
        co_kernel: common.clone(),
        kernel: free.clone(),
    });
    // Literals that can still seed a quotient, in ascending code order.
    let lits = sorted_multi_literals(&free);
    kernel_rec(&free, &common, &lits, 0, &mut out);
    dedup_kernels(&mut out);
    out
}

/// Literals appearing in at least two cubes, ascending by code.
fn sorted_multi_literals(f: &Sop) -> Vec<crate::cube::Literal> {
    let counts = f.literal_counts();
    let mut lits: Vec<_> = counts
        .into_iter()
        .filter(|&(_, c)| c >= 2)
        .map(|(l, _)| l)
        .collect();
    lits.sort_unstable();
    lits
}

fn kernel_rec(
    g: &Sop,
    co_kernel: &Cube,
    lits: &[crate::cube::Literal],
    start: usize,
    out: &mut Vec<Kernel>,
) {
    for (i, &lit) in lits.iter().enumerate().skip(start) {
        let cube_lit = Cube::from_literals([lit]).expect("single literal cube");
        let quotient = g.divide_by_cube(&cube_lit);
        if quotient.num_cubes() < 2 {
            continue;
        }
        let (extra, free) = quotient.make_cube_free();
        // Skip if the co-kernel extension contains a literal earlier in the
        // order — that kernel is found via the earlier literal.
        let full_extra = extra
            .product(&cube_lit)
            .expect("literal not in quotient common cube");
        if full_extra.literals().iter().any(|l| lits[..i].contains(l)) {
            continue;
        }
        let new_co = co_kernel
            .product(&full_extra)
            .expect("co-kernel cubes are variable-disjoint");
        out.push(Kernel {
            co_kernel: new_co.clone(),
            kernel: free.clone(),
        });
        kernel_rec(&free, &new_co, lits, i + 1, out);
    }
}

fn dedup_kernels(ks: &mut Vec<Kernel>) {
    ks.sort_by(|a, b| (&a.kernel, &a.co_kernel).cmp(&(&b.kernel, &b.co_kernel)));
    ks.dedup();
}

/// Whether `k` is a level-0 kernel: cube-free and no literal occurring in
/// more than one cube.
///
/// # Examples
///
/// ```
/// use chortle_logic_opt::{is_level0_kernel, Sop};
///
/// let ab_c = Sop::try_from_slices(&[&[(0, false), (1, false)], &[(2, false)]]).unwrap();
/// assert!(is_level0_kernel(&ab_c)); // a·b + c
///
/// let shared = Sop::try_from_slices(&[&[(0, false), (1, false)], &[(0, false), (2, false)]]);
/// assert!(!is_level0_kernel(&shared.unwrap())); // a·b + a·c has a in two cubes
/// ```
pub fn is_level0_kernel(k: &Sop) -> bool {
    if k.num_cubes() < 2 || !k.is_cube_free() {
        return false;
    }
    k.literal_counts().values().all(|&c| c == 1)
}

/// The level-0 kernels of `f`: kernels that contain no kernels other than
/// themselves.
pub fn level0_kernels(f: &Sop) -> Vec<Kernel> {
    kernels(f)
        .into_iter()
        .filter(|k| is_level0_kernel(&k.kernel))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sop(cubes: &[&[(usize, bool)]]) -> Sop {
        Sop::try_from_slices(cubes).unwrap()
    }

    #[test]
    fn single_cube_has_no_kernels() {
        let f = sop(&[&[(0, false), (1, false)]]);
        assert!(kernels(&f).is_empty());
    }

    #[test]
    fn textbook_example() {
        // f = adf + aef + bdf + bef + cdf + cef + g
        //   = (a+b+c)(d+e)f + g
        let f = sop(&[
            &[(0, false), (3, false), (5, false)],
            &[(0, false), (4, false), (5, false)],
            &[(1, false), (3, false), (5, false)],
            &[(1, false), (4, false), (5, false)],
            &[(2, false), (3, false), (5, false)],
            &[(2, false), (4, false), (5, false)],
            &[(6, false)],
        ]);
        let ks = kernels(&f);
        let abc = sop(&[&[(0, false)], &[(1, false)], &[(2, false)]]);
        let de = sop(&[&[(3, false)], &[(4, false)]]);
        assert!(ks.iter().any(|k| k.kernel == abc), "missing a+b+c");
        assert!(ks.iter().any(|k| k.kernel == de), "missing d+e");
        // f itself is cube-free (g has no shared cube), so it is a kernel
        // with co-kernel 1.
        assert!(ks.iter().any(|k| k.co_kernel.is_empty() && k.kernel == f));
    }

    #[test]
    fn kernel_division_reconstructs() {
        let f = sop(&[
            &[(0, false), (2, false)],
            &[(0, false), (3, false)],
            &[(1, false), (2, false)],
            &[(1, false), (3, false)],
        ]);
        for k in kernels(&f) {
            let (q, r) = f.divide(&k.kernel);
            assert!(!q.is_zero(), "kernel must divide f");
            for bits in 0..16u64 {
                assert_eq!(
                    f.eval(bits),
                    (q.eval(bits) && k.kernel.eval(bits)) || r.eval(bits)
                );
            }
        }
    }

    #[test]
    fn level0_filtering() {
        let f = sop(&[
            &[(0, false), (2, false)],
            &[(0, false), (3, false)],
            &[(1, false), (2, false)],
            &[(1, false), (3, false)],
        ]);
        for k in level0_kernels(&f) {
            assert!(is_level0_kernel(&k.kernel));
        }
        // (a+b) and (c+d) are level-0; f itself is not.
        let ab = sop(&[&[(0, false)], &[(1, false)]]);
        assert!(level0_kernels(&f).iter().any(|k| k.kernel == ab));
        assert!(!is_level0_kernel(&f));
    }

    #[test]
    fn kernels_of_xor_shape() {
        // f = a·!b + !a·b is cube-free and level-0.
        let f = sop(&[&[(0, false), (1, true)], &[(0, true), (1, false)]]);
        assert!(is_level0_kernel(&f));
        let ks = kernels(&f);
        assert!(ks.iter().any(|k| k.kernel == f));
    }
}
