//! The "standard MIS II script": the optimization pipeline both mappers'
//! input networks go through in the paper's evaluation (Section 4.2).
//!
//! The sequence mirrors the classic algebraic script: sweep/eliminate small
//! nodes, simplify each node SOP, greedily extract common kernels and
//! cubes, then factor every node into the AND/OR form handed to technology
//! mapping.

use chortle_netlist::{Network, NetworkError};
use chortle_telemetry::Telemetry;

use crate::extract::{extract_cubes, extract_kernels};
use crate::network::SopNetwork;

/// Names of the stages and counters the optimization script reports into
/// its [`Telemetry`] sink (see the repository's `DESIGN.md` §10).
pub mod stats {
    /// Stage: node elimination (MIS' `eliminate`).
    pub const STAGE_ELIMINATE: &str = "opt.eliminate";
    /// Stage: cheap per-node SOP minimization (both passes).
    pub const STAGE_MINIMIZE: &str = "opt.minimize";
    /// Stage: exact two-level minimization (when enabled).
    pub const STAGE_EXACT: &str = "opt.exact";
    /// Stage: espresso-style heuristic minimization (when enabled).
    pub const STAGE_HEURISTIC: &str = "opt.heuristic";
    /// Stage: greedy kernel extraction.
    pub const STAGE_KERNELS: &str = "opt.kernels";
    /// Stage: greedy cube extraction.
    pub const STAGE_CUBES: &str = "opt.cubes";
    /// Stage: factoring the SOP network back into an AND/OR network.
    pub const STAGE_FACTOR: &str = "opt.factor";
    /// Counter: nodes eliminated by inlining.
    pub const ELIMINATED: &str = "opt.eliminated";
    /// Counter: kernels + cubes extracted as new nodes.
    pub const EXTRACTED: &str = "opt.extracted";
    /// Counter: SOP literals removed by the whole script.
    pub const LITERALS_SAVED: &str = "opt.literals_saved";
}

/// Tuning knobs of [`optimize_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptimizeOptions {
    /// Literal-growth threshold for node elimination (MIS' `eliminate`
    /// value); nodes whose inlining grows the network by more than this
    /// stay.
    pub eliminate_threshold: isize,
    /// Run greedy kernel extraction.
    pub kernel_extraction: bool,
    /// Run greedy cube extraction.
    pub cube_extraction: bool,
    /// Run exact two-level minimization on every node whose support fits
    /// [`crate::MAX_EXACT_VARS`] (MIS' `simplify`); the cheap
    /// single-cube-containment pass runs regardless.
    pub exact_node_minimization: bool,
    /// Run espresso-style heuristic minimization (EXPAND + IRREDUNDANT)
    /// on every node — no support bound, prime irredundant covers.
    pub heuristic_node_minimization: bool,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            eliminate_threshold: 0,
            kernel_extraction: true,
            cube_extraction: true,
            exact_node_minimization: false,
            heuristic_node_minimization: false,
        }
    }
}

/// Optimization summary returned next to the network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimizeReport {
    /// SOP literals before optimization.
    pub literals_before: usize,
    /// SOP literals after extraction (before factoring).
    pub literals_after: usize,
    /// Nodes eliminated by inlining.
    pub eliminated: usize,
    /// Kernels + cubes extracted as new nodes.
    pub extracted: usize,
}

/// Runs the default optimization script on a network.
///
/// # Errors
///
/// Propagates [`NetworkError`] from network reconstruction (which only
/// fails on cyclic inputs).
///
/// # Examples
///
/// ```
/// use chortle_netlist::{Network, NodeOp, Signal};
/// use chortle_logic_opt::optimize;
///
/// let mut net = Network::new();
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let c = net.add_input("c");
/// // z = (a AND c) OR (b AND c) — optimizes toward (a OR b) AND c.
/// let g1 = net.add_gate(NodeOp::And, vec![a.into(), c.into()]);
/// let g2 = net.add_gate(NodeOp::And, vec![b.into(), c.into()]);
/// let z = net.add_gate(NodeOp::Or, vec![g1.into(), g2.into()]);
/// net.add_output("z", z.into());
///
/// let (optimized, report) = optimize(&net)?;
/// assert!(report.literals_after <= report.literals_before);
/// assert_eq!(optimized.num_outputs(), 1);
/// # Ok::<(), chortle_netlist::NetworkError>(())
/// ```
pub fn optimize(network: &Network) -> Result<(Network, OptimizeReport), NetworkError> {
    optimize_with(network, &OptimizeOptions::default())
}

/// Runs the optimization script with explicit options.
///
/// # Errors
///
/// Propagates [`NetworkError`] from network reconstruction.
pub fn optimize_with(
    network: &Network,
    options: &OptimizeOptions,
) -> Result<(Network, OptimizeReport), NetworkError> {
    optimize_with_telemetry(network, options, &Telemetry::disabled())
}

/// [`optimize_with`] reporting per-stage wall times and counters into a
/// [`Telemetry`] sink (stage names in [`stats`]). A disabled sink makes
/// this identical to [`optimize_with`].
///
/// # Errors
///
/// Propagates [`NetworkError`] from network reconstruction.
pub fn optimize_with_telemetry(
    network: &Network,
    options: &OptimizeOptions,
    telemetry: &Telemetry,
) -> Result<(Network, OptimizeReport), NetworkError> {
    let mut sop_net = SopNetwork::from_network(network);
    optimize_sop_network_with_telemetry(&mut sop_net, options, telemetry)
}

/// Optimizes a [`SopNetwork`] in place (for callers that start from SOPs,
/// like the benchmark-circuit generators) and emits the factored network.
///
/// # Errors
///
/// Propagates [`NetworkError`] from network reconstruction.
pub fn optimize_sop_network(
    sop_net: &mut SopNetwork,
    options: &OptimizeOptions,
) -> Result<(Network, OptimizeReport), NetworkError> {
    optimize_sop_network_with_telemetry(sop_net, options, &Telemetry::disabled())
}

/// [`optimize_sop_network`] reporting into a [`Telemetry`] sink.
///
/// # Errors
///
/// Propagates [`NetworkError`] from network reconstruction.
pub fn optimize_sop_network_with_telemetry(
    sop_net: &mut SopNetwork,
    options: &OptimizeOptions,
    telemetry: &Telemetry,
) -> Result<(Network, OptimizeReport), NetworkError> {
    let mut report = OptimizeReport {
        literals_before: sop_net.literal_count(),
        ..OptimizeReport::default()
    };
    {
        let _s = telemetry.span(stats::STAGE_ELIMINATE);
        report.eliminated = sop_net.eliminate(options.eliminate_threshold);
    }
    {
        let _s = telemetry.span(stats::STAGE_MINIMIZE);
        sop_net.minimize_nodes();
    }
    if options.exact_node_minimization {
        let _s = telemetry.span(stats::STAGE_EXACT);
        for var in sop_net.node_vars() {
            let sop = sop_net.node_sop(var).expect("node").clone();
            if let Ok(min) = crate::two_level::minimize_exact(&sop) {
                if min.num_literals() <= sop.num_literals() {
                    sop_net.set_node_sop(var, min);
                }
            }
        }
    }
    if options.heuristic_node_minimization {
        let _s = telemetry.span(stats::STAGE_HEURISTIC);
        for var in sop_net.node_vars() {
            let sop = sop_net.node_sop(var).expect("node").clone();
            let min = crate::espresso::heuristic_minimize(&sop);
            if min.num_literals() <= sop.num_literals() {
                sop_net.set_node_sop(var, min);
            }
        }
    }
    if options.kernel_extraction {
        let _s = telemetry.span(stats::STAGE_KERNELS);
        report.extracted += extract_kernels(sop_net).extracted;
    }
    if options.cube_extraction {
        let _s = telemetry.span(stats::STAGE_CUBES);
        report.extracted += extract_cubes(sop_net).extracted;
    }
    let net = {
        let _s = telemetry.span(stats::STAGE_FACTOR);
        sop_net.minimize_nodes();
        report.literals_after = sop_net.literal_count();
        sop_net.to_network()?
    };
    telemetry.add_counter(stats::ELIMINATED, report.eliminated as u64);
    telemetry.add_counter(stats::EXTRACTED, report.extracted as u64);
    telemetry.add_counter(
        stats::LITERALS_SAVED,
        report.literals_before.saturating_sub(report.literals_after) as u64,
    );
    Ok((net, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chortle_netlist::{NodeOp, Signal};

    /// Exhaustively checks that optimization preserved all output
    /// functions.
    fn assert_preserved(before: &Network, after: &Network) {
        assert_eq!(before.num_outputs(), after.num_outputs());
        for (o1, o2) in before.outputs().iter().zip(after.outputs()) {
            assert_eq!(o1.name, o2.name);
            let f1 = before.signal_function(o1.signal).expect("small");
            let f2 = after.signal_function(o2.signal).expect("small");
            assert_eq!(f1, f2, "function of output {} changed", o1.name);
        }
    }

    #[test]
    fn optimize_preserves_functions() {
        let mut net = Network::new();
        let inputs: Vec<_> = (0..5).map(|i| net.add_input(format!("i{i}"))).collect();
        let g1 = net.add_gate(NodeOp::And, vec![inputs[0].into(), inputs[2].into()]);
        let g2 = net.add_gate(NodeOp::And, vec![inputs[1].into(), inputs[2].into()]);
        let g3 = net.add_gate(NodeOp::Or, vec![g1.into(), g2.into()]);
        let g4 = net.add_gate(NodeOp::And, vec![g3.into(), Signal::inverted(inputs[3])]);
        let g5 = net.add_gate(NodeOp::Or, vec![g4.into(), inputs[4].into()]);
        net.add_output("x", g3.into());
        net.add_output("y", Signal::inverted(g5));

        let (optimized, report) = optimize(&net).expect("optimizes");
        optimized.validate().expect("valid");
        assert!(report.literals_after <= report.literals_before);
        assert_preserved(&net, &optimized);
    }

    #[test]
    fn optimize_reduces_shared_logic() {
        // Two outputs both containing the divisor (a + b).
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let d = net.add_input("d");
        let g1 = net.add_gate(NodeOp::And, vec![a.into(), c.into()]);
        let g2 = net.add_gate(NodeOp::And, vec![b.into(), c.into()]);
        let x = net.add_gate(NodeOp::Or, vec![g1.into(), g2.into()]);
        let g3 = net.add_gate(NodeOp::And, vec![a.into(), d.into()]);
        let g4 = net.add_gate(NodeOp::And, vec![b.into(), d.into()]);
        let y = net.add_gate(NodeOp::Or, vec![g3.into(), g4.into()]);
        net.add_output("x", x.into());
        net.add_output("y", y.into());

        let (optimized, _) = optimize(&net).expect("optimizes");
        assert_preserved(&net, &optimized);
        // Factored form needs at most as many literals as the original.
        assert!(optimized.literal_count() <= net.literal_count());
    }

    #[test]
    fn optimize_handles_constants() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let k = net.add_const(true);
        let g = net.add_gate(NodeOp::And, vec![a.into(), k.into()]);
        net.add_output("z", g.into());
        let (optimized, _) = optimize(&net).expect("optimizes");
        assert_preserved(&net, &optimized);
    }

    #[test]
    fn optimize_with_exact_simplify_preserves_functions() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        // ab + a!b + !ab (consensus-rich) feeding further logic.
        let g1 = net.add_gate(NodeOp::And, vec![a.into(), b.into()]);
        let g2 = net.add_gate(NodeOp::And, vec![a.into(), Signal::inverted(b)]);
        let g3 = net.add_gate(NodeOp::And, vec![Signal::inverted(a), b.into()]);
        let o = net.add_gate(NodeOp::Or, vec![g1.into(), g2.into(), g3.into()]);
        let z = net.add_gate(NodeOp::And, vec![o.into(), c.into()]);
        net.add_output("z", z.into());
        let options = OptimizeOptions {
            exact_node_minimization: true,
            ..OptimizeOptions::default()
        };
        let (optimized, report) = optimize_with(&net, &options).expect("optimizes");
        assert_preserved(&net, &optimized);
        assert!(report.literals_after <= report.literals_before);
    }

    #[test]
    fn optimize_with_heuristic_simplify_preserves_functions() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g1 = net.add_gate(NodeOp::And, vec![a.into(), b.into()]);
        let g2 = net.add_gate(NodeOp::And, vec![Signal::inverted(a), c.into()]);
        let g3 = net.add_gate(NodeOp::And, vec![b.into(), c.into()]); // consensus
        let z = net.add_gate(NodeOp::Or, vec![g1.into(), g2.into(), g3.into()]);
        net.add_output("z", z.into());
        let options = OptimizeOptions {
            heuristic_node_minimization: true,
            ..OptimizeOptions::default()
        };
        let (optimized, report) = optimize_with(&net, &options).expect("optimizes");
        assert_preserved(&net, &optimized);
        assert!(report.literals_after <= report.literals_before);
    }

    #[test]
    fn optimize_single_wire() {
        let mut net = Network::new();
        let a = net.add_input("a");
        net.add_output("z", Signal::inverted(a));
        let (optimized, _) = optimize(&net).expect("optimizes");
        assert_preserved(&net, &optimized);
    }
}
