//! Algebraic logic-optimization substrate for the Chortle reproduction.
//!
//! The DAC 1990 Chortle paper assumes its input networks "have already gone
//! through logic optimization" by the standard MIS II script. This crate
//! supplies that substrate:
//!
//! * [`Cube`] / [`Sop`] — product terms and sums of products with weak
//!   (algebraic) division,
//! * [`kernels`] / [`level0_kernels`] — Brayton–McMullen kernel extraction
//!   (level-0 kernels also seed the MIS K≥4 library in the paper's
//!   Section 4.1),
//! * [`factor`] — kernel-driven factoring into AND/OR trees,
//! * [`SopNetwork`] — the multi-level SOP network rewritten by the passes,
//! * [`extract_kernels`] / [`extract_cubes`] — greedy common-subexpression
//!   extraction,
//! * [`optimize`] — the end-to-end script producing the optimized AND/OR
//!   [`Network`](chortle_netlist::Network) both mappers consume.
//!
//! # Examples
//!
//! ```
//! use chortle_netlist::{Network, NodeOp};
//! use chortle_logic_opt::optimize;
//!
//! let mut net = Network::new();
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let g = net.add_gate(NodeOp::Or, vec![a.into(), b.into()]);
//! net.add_output("z", g.into());
//! let (optimized, report) = optimize(&net)?;
//! assert_eq!(optimized.num_outputs(), 1);
//! assert!(report.literals_after <= report.literals_before);
//! # Ok::<(), chortle_netlist::NetworkError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cube;
mod espresso;
mod extract;
mod factor;
mod kernels;
mod network;
mod script;
mod sop;
mod two_level;

pub use cube::{Cube, Literal};
pub use espresso::{covers_cube, heuristic_minimize};
pub use extract::{extract_cubes, extract_kernels, ExtractReport};
pub use factor::{factor, Factored};
pub use kernels::{is_level0_kernel, kernels, level0_kernels, Kernel};
pub use network::SopNetwork;
pub use script::{
    optimize, optimize_sop_network, optimize_sop_network_with_telemetry, optimize_with,
    optimize_with_telemetry, stats, OptimizeOptions, OptimizeReport,
};
pub use sop::Sop;
pub use two_level::{minimize_exact, MAX_EXACT_VARS};
