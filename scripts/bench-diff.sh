#!/usr/bin/env bash
# Compare two benchmark snapshots (BENCH_map.json or BENCH_serve.json)
# and fail when a guarded metric regresses beyond the threshold.
#
#   ./scripts/bench-diff.sh BASELINE.json CURRENT.json [THRESHOLD_PCT]
#
# Typical flow: copy the committed snapshot aside, regenerate it, diff:
#
#   cp results/BENCH_map.json /tmp/base.json
#   cargo run --release -p chortle-bench --bin perf
#   ./scripts/bench-diff.sh /tmp/base.json results/BENCH_map.json 25
#
# Exit codes: 0 = no guarded regression, 1 = regression or usage error.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${1:?usage: bench-diff.sh BASELINE.json CURRENT.json [THRESHOLD_PCT]}"
current="${2:?usage: bench-diff.sh BASELINE.json CURRENT.json [THRESHOLD_PCT]}"
threshold="${3:-25}"

exec cargo run -q --release -p chortle-bench --bin bench-diff -- \
    "$baseline" "$current" --threshold "$threshold"
