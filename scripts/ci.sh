#!/usr/bin/env bash
# Tier-1 gate: everything here must pass offline (no network, no
# external dev-dependencies) before a change lands.
#
#   ./scripts/ci.sh            # full gate
#   ./scripts/ci.sh --quick    # skip the release build (fmt+clippy+test)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

if [[ "$quick" == 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "==> telemetry report smoke (--report json | report-check)"
printf '.model smoke\n.inputs a b c\n.outputs y\n.names a b t\n11 1\n.names t c y\n1- 1\n-1 1\n.end\n' \
  | cargo run -q -p chortle-cli --bin chortle-map -- --report json --jobs 2 \
  | cargo run -q -p chortle-cli --bin report-check

echo "ci: all green"
