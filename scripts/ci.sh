#!/usr/bin/env bash
# Tier-1 gate: everything here must pass offline (no network, no
# external dev-dependencies) before a change lands.
#
#   ./scripts/ci.sh            # full gate
#   ./scripts/ci.sh --quick    # skip the release build (fmt+clippy+test)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

if [[ "$quick" == 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

smoke_blif='.model smoke\n.inputs a b c\n.outputs y\n.names a b t\n11 1\n.names t c y\n1- 1\n-1 1\n.end\n'

echo "==> telemetry report smoke (--report json | report-check)"
report="$(printf "$smoke_blif" \
  | cargo run -q -p chortle-cli --bin chortle-map -- --report json --jobs 2)"
printf '%s\n' "$report" | cargo run -q -p chortle-cli --bin report-check
printf '%s' "$report" | grep -q '"cache.hits"' \
  || { echo "ci: report is missing the cache counters" >&2; exit 1; }

echo "==> cache identity smoke (--cache off vs shared, jobs 1 vs 4)"
ref="$(printf "$smoke_blif" \
  | cargo run -q -p chortle-cli --bin chortle-map -- --cache off)"
for mode_jobs in "tree 1" "shared 1" "shared 4"; do
  set -- $mode_jobs
  out="$(printf "$smoke_blif" \
    | cargo run -q -p chortle-cli --bin chortle-map -- --cache "$1" --jobs "$2")"
  [[ "$out" == "$ref" ]] \
    || { echo "ci: --cache $1 --jobs $2 changed the circuit" >&2; exit 1; }
done

echo "ci: all green"
