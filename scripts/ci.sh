#!/usr/bin/env bash
# Tier-1 gate: everything here must pass offline (no network, no
# external dev-dependencies) before a change lands.
#
#   ./scripts/ci.sh            # full gate
#   ./scripts/ci.sh --quick    # skip the release build (fmt+clippy+test)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

if [[ "$quick" == 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

smoke_blif='.model smoke\n.inputs a b c\n.outputs y\n.names a b t\n11 1\n.names t c y\n1- 1\n-1 1\n.end\n'

echo "==> telemetry report smoke (--report json | report-check)"
report="$(printf "$smoke_blif" \
  | cargo run -q -p chortle-cli --bin chortle-map -- --report json --jobs 2)"
printf '%s\n' "$report" | cargo run -q -p chortle-cli --bin report-check
printf '%s' "$report" | grep -q '"cache.hits"' \
  || { echo "ci: report is missing the cache counters" >&2; exit 1; }

echo "==> chrome trace smoke (--trace | report-check --chrome-trace)"
trace_tmp="$(mktemp -d)"
printf "$smoke_blif" | cargo run -q -p chortle-cli --bin chortle-map -- \
  --trace "$trace_tmp/run.json" --jobs 2 > /dev/null
cargo run -q -p chortle-cli --bin report-check -- --chrome-trace \
  < "$trace_tmp/run.json"
grep -q '"ph":"B"' "$trace_tmp/run.json" \
  || { echo "ci: trace file has no begin events" >&2; exit 1; }
rm -rf "$trace_tmp"

echo "==> cache identity smoke (--cache off vs tree/shared/fn, jobs 1 vs 4)"
ref="$(printf "$smoke_blif" \
  | cargo run -q -p chortle-cli --bin chortle-map -- --cache off)"
for mode_jobs in "tree 1" "shared 1" "shared 4" "fn 1" "fn 4"; do
  set -- $mode_jobs
  out="$(printf "$smoke_blif" \
    | cargo run -q -p chortle-cli --bin chortle-map -- --cache "$1" --jobs "$2")"
  [[ "$out" == "$ref" ]] \
    || { echo "ci: --cache $1 --jobs $2 changed the circuit" >&2; exit 1; }
done

echo "==> don't-care packing smoke (--pack dc, equivalence-checked in-process)"
# The dc post-pass proves equivalence internally (it refuses to emit an
# unproven merge); here we check the other contract: it never increases
# the LUT count.
packed="$(printf "$smoke_blif" \
  | cargo run -q -p chortle-cli --bin chortle-map -- --cache fn --pack dc)"
ref_luts="$(printf '%s\n' "$ref" | grep -c '^\.names')"
packed_luts="$(printf '%s\n' "$packed" | grep -c '^\.names')"
[[ "$packed_luts" -le "$ref_luts" ]] \
  || { echo "ci: --pack dc grew the circuit ($ref_luts -> $packed_luts LUTs)" >&2; exit 1; }

echo "==> chunked scheduler identity smoke (--chunk 1/auto/64, jobs 4 vs sequential)"
for chunk in 1 auto 64; do
  out="$(printf "$smoke_blif" \
    | cargo run -q -p chortle-cli --bin chortle-map -- --jobs 4 --chunk "$chunk")"
  [[ "$out" == "$ref" ]] \
    || { echo "ci: --chunk $chunk --jobs 4 changed the circuit" >&2; exit 1; }
done

echo "==> serve smoke (daemon on an ephemeral port vs offline CLI)"
serve_tmp="$(mktemp -d)"
serve_pid=""
cleanup_serve() {
  [[ -n "$serve_pid" ]] && kill "$serve_pid" 2>/dev/null
  [[ -n "${design_pid:-}" ]] && kill "$design_pid" 2>/dev/null
  [[ -n "${obs_pid:-}" ]] && kill "$obs_pid" 2>/dev/null
  rm -rf "$serve_tmp" "${design_tmp:-}" "${obs_tmp:-}"
}
trap cleanup_serve EXIT

cargo run -q -p chortle-server --bin chortle-serve -- --port 0 --workers 2 \
  > "$serve_tmp/report.json" 2> "$serve_tmp/daemon.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^listening on //p' "$serve_tmp/daemon.log" | head -n1)"
  [[ -n "$addr" ]] && break
  sleep 0.1
done
[[ -n "$addr" ]] \
  || { echo "ci: chortle-serve never reported a listening address" >&2; exit 1; }

# Three concurrent clients with different option mixes; each response
# netlist must be byte-identical to the offline CLI under the same flags.
client_flags=("-k 4 --cache shared --jobs 1" \
              "-k 5 --cache off --jobs 2 --objective depth" \
              "-k 4 --cache tree --no-optimize")
client_pids=()
for i in 0 1 2; do
  printf "$smoke_blif" | cargo run -q -p chortle-server --bin chortle-serve -- \
    --connect "$addr" ${client_flags[$i]} \
    > "$serve_tmp/serve_$i.blif" 2>/dev/null &
  client_pids+=($!)
done
for pid in "${client_pids[@]}"; do
  wait "$pid" || { echo "ci: a serve client failed" >&2; exit 1; }
done
for i in 0 1 2; do
  printf "$smoke_blif" | cargo run -q -p chortle-cli --bin chortle-map -- \
    ${client_flags[$i]} > "$serve_tmp/cli_$i.blif"
  cmp -s "$serve_tmp/serve_$i.blif" "$serve_tmp/cli_$i.blif" \
    || { echo "ci: serve response $i (${client_flags[$i]}) differs from the CLI" >&2; exit 1; }
done

# Mixed-version session against the same live daemon: a v1 client (the
# frozen wire shape) and a v2 op:"map_batch" frame, each byte-identical
# to the offline CLI under the same flags.
printf "$smoke_blif" > "$serve_tmp/smoke.blif"
printf "$smoke_blif" | cargo run -q -p chortle-server --bin chortle-serve -- \
  --connect "$addr" --proto v1 ${client_flags[0]} \
  > "$serve_tmp/serve_v1.blif" 2>/dev/null \
  || { echo "ci: the v1 client failed" >&2; exit 1; }
cmp -s "$serve_tmp/serve_v1.blif" "$serve_tmp/cli_0.blif" \
  || { echo "ci: the v1 response differs from the CLI" >&2; exit 1; }
cargo run -q -p chortle-server --bin chortle-serve -- \
  --connect "$addr" --batch ${client_flags[1]} \
  "$serve_tmp/smoke.blif" "$serve_tmp/smoke.blif" \
  > "$serve_tmp/serve_batch.blif" 2>/dev/null \
  || { echo "ci: the map_batch client failed" >&2; exit 1; }
cat "$serve_tmp/cli_1.blif" "$serve_tmp/cli_1.blif" > "$serve_tmp/cli_batch.blif"
cmp -s "$serve_tmp/serve_batch.blif" "$serve_tmp/cli_batch.blif" \
  || { echo "ci: the batched responses differ from the CLI" >&2; exit 1; }
# The negotiation summary is human chatter, so it lands on stderr.
cargo run -q -p chortle-server --bin chortle-serve -- --connect "$addr" --hello \
  2>&1 | grep -q 'chortle-serve/v2' \
  || { echo "ci: op:\"hello\" did not negotiate v2" >&2; exit 1; }

# Live introspection: op:"stats" must answer a schema-valid aggregate
# report with the latency histograms, without disturbing the workers.
cargo run -q -p chortle-server --bin chortle-serve -- --connect "$addr" --stats \
  > "$serve_tmp/stats.json" 2>/dev/null \
  || { echo "ci: the stats request was rejected" >&2; exit 1; }
cargo run -q -p chortle-cli --bin report-check < "$serve_tmp/stats.json"
for needle in '"serve.run_ns"' '"serve.queue_ns"' '"serve.stats_requests"'; do
  grep -q "$needle" "$serve_tmp/stats.json" \
    || { echo "ci: live stats report is missing $needle" >&2; exit 1; }
done

# Graceful shutdown: the daemon must drain, print a schema-valid final
# report to stdout, and exit 0 within the timeout.
cargo run -q -p chortle-server --bin chortle-serve -- --connect "$addr" --shutdown 2>/dev/null
for _ in $(seq 1 100); do
  kill -0 "$serve_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
  echo "ci: chortle-serve did not exit after --shutdown" >&2; exit 1
fi
wait "$serve_pid" \
  || { echo "ci: chortle-serve exited non-zero" >&2; exit 1; }
serve_pid=""
cargo run -q -p chortle-cli --bin report-check < "$serve_tmp/report.json"
grep -q '"serve.completed","value":6' "$serve_tmp/report.json" \
  || { echo "ci: final serve report did not count 6 completed requests" >&2; exit 1; }
grep -q '"serve.batch_frames","value":1' "$serve_tmp/report.json" \
  || { echo "ci: final serve report did not count the map_batch frame" >&2; exit 1; }

echo "==> sequential-design smoke (--design CLI, per-cloud identity, op:\"map_design\")"
# A hierarchical two-model design with two registers: .subckt flattening,
# cloud cutting and reassembly all on the line (DESIGN.md 17).
design_blif='.model seq\n.inputs a b c e\n.outputs z w\n.latch d0 q0 re clk 0\n.latch d1 q1 re clk 0\n.subckt stage p=a q=b r=t\n.names t c d0\n1- 1\n-1 1\n.subckt stage p=q0 q=e r=d1\n.names q1 c z\n11 1\n.names a w\n1 1\n.end\n.model stage\n.inputs p q\n.outputs r\n.names p q r\n11 1\n.end\n'
design_tmp="$(mktemp -d)"
printf "$design_blif" > "$design_tmp/seq.blif"
cargo run -q -p chortle-cli --bin chortle-map -- -k 4 --design --jobs 2 \
  --clouds "$design_tmp/clouds" "$design_tmp/seq.blif" > "$design_tmp/mapped.blif"
grep -q '^\.latch' "$design_tmp/mapped.blif" \
  || { echo "ci: the mapped design lost its latches" >&2; exit 1; }
# Every cloud the pipeline mapped must be byte-identical to an offline
# chortle-map run handed that cloud's standalone BLIF.
cloud_count=0
for cloud in "$design_tmp"/clouds/cloud*.blif; do
  case "$cloud" in *.mapped.blif) continue ;; esac
  cargo run -q -p chortle-cli --bin chortle-map -- -k 4 "$cloud" \
    > "${cloud%.blif}.offline.blif"
  cmp -s "${cloud%.blif}.mapped.blif" "${cloud%.blif}.offline.blif" \
    || { echo "ci: $cloud diverged from the offline mapper" >&2; exit 1; }
  cloud_count=$((cloud_count + 1))
done
[[ "$cloud_count" -ge 2 ]] \
  || { echo "ci: expected >= 2 clouds, saw $cloud_count" >&2; exit 1; }
# The assembled netlist must round-trip: it is itself sequential BLIF
# the design path accepts.
cargo run -q -p chortle-cli --bin chortle-map -- -k 4 --design \
  "$design_tmp/mapped.blif" > /dev/null \
  || { echo "ci: the assembled netlist does not re-parse as a design" >&2; exit 1; }

# op:"map_design" against a dedicated daemon (the main daemon's final
# report above pins exact request counts), byte-identical to the
# offline --design run under the same flags.
cargo run -q -p chortle-server --bin chortle-serve -- --port 0 --workers 2 \
  > /dev/null 2> "$design_tmp/daemon.log" &
design_pid=$!
design_addr=""
for _ in $(seq 1 100); do
  design_addr="$(sed -n 's/^listening on //p' "$design_tmp/daemon.log" | head -n1)"
  [[ -n "$design_addr" ]] && break
  sleep 0.1
done
[[ -n "$design_addr" ]] \
  || { echo "ci: the design-smoke daemon never reported an address" >&2; exit 1; }
printf "$design_blif" | cargo run -q -p chortle-server --bin chortle-serve -- \
  --connect "$design_addr" --design -k 4 --jobs 2 \
  > "$design_tmp/serve_design.blif" 2>/dev/null \
  || { echo "ci: the map_design client failed" >&2; exit 1; }
cmp -s "$design_tmp/serve_design.blif" "$design_tmp/mapped.blif" \
  || { echo "ci: op:\"map_design\" differs from chortle-map --design" >&2; exit 1; }
cargo run -q -p chortle-server --bin chortle-serve -- \
  --connect "$design_addr" --shutdown 2>/dev/null
for _ in $(seq 1 100); do
  kill -0 "$design_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$design_pid" 2>/dev/null; then
  echo "ci: the design-smoke daemon did not exit after --shutdown" >&2; exit 1
fi
wait "$design_pid" \
  || { echo "ci: the design-smoke daemon exited non-zero" >&2; exit 1; }
design_pid=""
rm -rf "$design_tmp"
design_tmp=""

echo "==> observability smoke (/metrics scrape, JSONL logs, trace correlation)"
# A dedicated daemon (the main daemon's final report above pins exact
# request counts) with the Prometheus endpoint and debug logging on.
obs_tmp="$(mktemp -d)"
cargo run -q -p chortle-server --bin chortle-serve -- --port 0 --workers 2 \
  --metrics-addr 127.0.0.1:0 --log-level debug --log-file "$obs_tmp/daemon.jsonl" \
  > /dev/null 2> "$obs_tmp/daemon.log" &
obs_pid=$!
obs_addr=""
for _ in $(seq 1 100); do
  obs_addr="$(sed -n 's/^listening on //p' "$obs_tmp/daemon.log" | head -n1)"
  [[ -n "$obs_addr" ]] && break
  sleep 0.1
done
[[ -n "$obs_addr" ]] \
  || { echo "ci: the observability daemon never reported an address" >&2; exit 1; }
metrics_hostport="$(sed -n 's#^metrics on http://\(.*\)/metrics$#\1#p' "$obs_tmp/daemon.log" | head -n1)"
[[ -n "$metrics_hostport" ]] \
  || { echo "ci: the daemon never reported its metrics address" >&2; exit 1; }

# One traced request: the response must stay byte-identical to the
# offline CLI, and the trace_id must land in the structured log.
printf "$smoke_blif" | cargo run -q -p chortle-server --bin chortle-serve -- \
  --connect "$obs_addr" --cache off --trace-id ci-trace-1 \
  > "$obs_tmp/obs.blif" 2>/dev/null \
  || { echo "ci: the traced request failed" >&2; exit 1; }
printf '%s\n' "$ref" | cmp -s - "$obs_tmp/obs.blif" \
  || { echo "ci: the traced response differs from the offline CLI" >&2; exit 1; }
grep -q '"trace_id":"ci-trace-1"' "$obs_tmp/daemon.jsonl" \
  || { echo "ci: the trace_id never appeared in the structured log" >&2; exit 1; }
# Golden JSONL shape: every log line opens with the fixed prefix.
bad_lines="$(grep -cv '^{"seq":[0-9]*,"t_ns":[0-9]*,"level":"[a-z]*","target":"' \
  "$obs_tmp/daemon.jsonl" || true)"
[[ "$bad_lines" == 0 ]] \
  || { echo "ci: $bad_lines log line(s) violate the JSONL event shape" >&2; exit 1; }

# Scrape /metrics over plain HTTP/1.0 and validate the exposition with
# report-check --prom (the same check a Prometheus server would need).
exec 3<>"/dev/tcp/${metrics_hostport%:*}/${metrics_hostport##*:}"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
cat <&3 > "$obs_tmp/page.txt"
exec 3<&- 3>&-
sed -e '1,/^\r*$/d' "$obs_tmp/page.txt" > "$obs_tmp/metrics.prom"
cargo run -q -p chortle-cli --bin report-check -- --prom < "$obs_tmp/metrics.prom"
grep -q '^chortle_serve_completed 1$' "$obs_tmp/metrics.prom" \
  || { echo "ci: the exposition did not count the traced request" >&2; exit 1; }
grep -q '^# TYPE chortle_serve_window_qps gauge$' "$obs_tmp/metrics.prom" \
  || { echo "ci: the exposition is missing the windowed gauges" >&2; exit 1; }
grep -q '^chortle_serve_run_ns{quantile="0.99"} ' "$obs_tmp/metrics.prom" \
  || { echo "ci: the exposition is missing the latency summary" >&2; exit 1; }

cargo run -q -p chortle-server --bin chortle-serve -- \
  --connect "$obs_addr" --shutdown 2>/dev/null
for _ in $(seq 1 100); do
  kill -0 "$obs_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$obs_pid" 2>/dev/null; then
  echo "ci: the observability daemon did not exit after --shutdown" >&2; exit 1
fi
wait "$obs_pid" \
  || { echo "ci: the observability daemon exited non-zero" >&2; exit 1; }
obs_pid=""
# The drain itself is logged (an info event from serve.shutdown).
grep -q '"target":"serve.shutdown"' "$obs_tmp/daemon.jsonl" \
  || { echo "ci: the shutdown drain was not logged" >&2; exit 1; }
rm -rf "$obs_tmp"
obs_tmp=""

if [[ "$quick" == 0 ]]; then
  echo "==> bench-diff vs committed snapshots (threshold 40%)"
  # Regenerate both benchmark snapshots and gate them against the
  # committed ones. The generous threshold absorbs host noise; a real
  # scheduler regression (like the pre-chunking 0.62x mapping_total)
  # blows well past it.
  bench_tmp="$(mktemp -d)"
  cargo run -q --release -p chortle-bench --bin perf -- \
    "$bench_tmp/map.json" > /dev/null
  ./scripts/bench-diff.sh results/BENCH_map.json "$bench_tmp/map.json" 40
  cargo run -q --release -p chortle-bench --bin loadgen -- \
    "$bench_tmp/serve.json" > /dev/null
  ./scripts/bench-diff.sh results/BENCH_serve.json "$bench_tmp/serve.json" 40
  rm -rf "$bench_tmp"
fi

echo "ci: all green"
