#!/usr/bin/env bash
# Tier-1 gate: everything here must pass offline (no network, no
# external dev-dependencies) before a change lands.
#
#   ./scripts/ci.sh            # full gate
#   ./scripts/ci.sh --quick    # skip the release build (fmt+clippy+test)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

if [[ "$quick" == 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "ci: all green"
