//! Maps a structural 8-bit ALU with both the Chortle mapper and the MIS
//! library baseline across K = 2..5, printing a miniature version of the
//! paper's tables for one circuit.
//!
//! Run with `cargo run -p chortle --example alu_mapping --release`.

use std::time::Instant;

use chortle::{map_network, MapOptions};
use chortle_circuits::alu;
use chortle_logic_opt::optimize;
use chortle_mis::{map_network as mis_map, Library, MisOptions};
use chortle_netlist::{check_equivalence, NetworkStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let raw = alu(8);
    let (net, report) = optimize(&raw)?;
    println!("8-bit ALU: {}", NetworkStats::of(&net));
    println!(
        "Optimization: {} -> {} SOP literals ({} nodes extracted)\n",
        report.literals_before, report.literals_after, report.extracted
    );

    println!(
        "{:<4} {:>9} {:>9} {:>7} {:>10} {:>10}",
        "K", "MIS", "Chortle", "%", "t-MIS(s)", "t-Chort(s)"
    );
    for k in 2..=5 {
        let lib = Library::for_paper(k);
        let t0 = Instant::now();
        let mis = mis_map(&net, &lib, &MisOptions::new(k).with_fanout_duplication())?;
        let t_mis = t0.elapsed();
        let t1 = Instant::now();
        let ch = map_network(&net, &MapOptions::builder(k).build()?)?;
        let t_ch = t1.elapsed();
        check_equivalence(&net, &mis.circuit)?;
        check_equivalence(&net, &ch.circuit)?;
        let pct = (mis.report.luts as f64 - ch.report.luts as f64) / mis.report.luts as f64 * 100.0;
        println!(
            "{:<4} {:>9} {:>9} {:>6.1} {:>10.4} {:>10.4}",
            k,
            mis.report.luts,
            ch.report.luts,
            pct,
            t_mis.as_secs_f64(),
            t_ch.as_secs_f64()
        );
    }
    Ok(())
}
