//! Sweeps the LUT input count K from 2 to 8 over a few benchmark
//! circuits, reporting area (LUT count), depth and average pin
//! utilization — the trade-off behind the paper's motivation that
//! "lookup tables are an area-efficient choice for logic blocks"
//! [Rose89].
//!
//! Run with `cargo run -p chortle --example sweep_k --release`.

use chortle::{map_network, MapOptions, Objective};
use chortle_circuits::benchmark;
use chortle_logic_opt::optimize;
use chortle_netlist::LutStats;

// Columns: area-objective LUTs/depth, then the depth objective's
// depth/LUT trade (the FlowMap-direction extension).

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for name in ["9symml", "alu4", "apex7"] {
        let raw = benchmark(name).expect("known benchmark");
        let (net, _) = optimize(&raw)?;
        println!("{name}:");
        println!(
            "  {:<4} {:>7} {:>7} {:>12} {:>9} {:>9}",
            "K", "LUTs", "depth", "utilization", "d-depth", "d-LUTs"
        );
        for k in 2..=8 {
            let area = map_network(&net, &MapOptions::builder(k).build()?)?;
            let depth = map_network(
                &net,
                &MapOptions::builder(k).objective(Objective::Depth).build()?,
            )?;
            let stats = LutStats::of(&area.circuit);
            println!(
                "  {:<4} {:>7} {:>7} {:>9}.{:02} {:>9} {:>9}",
                k,
                stats.luts,
                stats.depth,
                stats.avg_utilization_centi / 100,
                stats.avg_utilization_centi % 100,
                depth.circuit.depth(),
                depth.report.luts
            );
        }
        println!();
    }
    Ok(())
}
