//! Quickstart: build a small Boolean network, map it into 4-input lookup
//! tables with Chortle, verify the result, and dump it as BLIF.
//!
//! Run with `cargo run -p chortle --example quickstart`.

use chortle::{map_network, MapOptions};
use chortle_netlist::{check_equivalence, write_lut_blif, Network, NodeOp, Signal};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // z = (a AND b) OR (NOT c AND d); y = NOT (a AND b)
    let mut net = Network::new();
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let d = net.add_input("d");
    let ab = net.add_gate(NodeOp::And, vec![a.into(), b.into()]);
    let cd = net.add_gate(NodeOp::And, vec![Signal::inverted(c), d.into()]);
    let z = net.add_gate(NodeOp::Or, vec![ab.into(), cd.into()]);
    net.add_output("z", z.into());
    net.add_output("y", Signal::inverted(ab));

    println!(
        "Network: {} inputs, {} gates, {} outputs",
        net.num_inputs(),
        net.num_gates(),
        net.num_outputs()
    );

    // Map into 4-input lookup tables.
    let mapped = map_network(&net, &MapOptions::builder(4).build()?)?;
    println!(
        "Mapped into {} LUTs across {} fanout-free trees",
        mapped.report.luts, mapped.report.trees
    );
    for (i, lut) in mapped.circuit.luts().iter().enumerate() {
        println!(
            "  LUT {i}: {} inputs, table {}",
            lut.utilization(),
            lut.table()
        );
    }

    // Prove the mapping is functionally identical to the network.
    check_equivalence(&net, &mapped.circuit)?;
    println!("Equivalence check passed.");

    // Hand off to downstream tools as BLIF.
    println!("\n{}", write_lut_blif(&net, &mapped.circuit, "quickstart"));
    Ok(())
}
