//! Maps benchmarks onto two commercial FPGA architectures of the paper's
//! era: Xilinx-style 4-input LUTs (via Chortle) and Actel ACT1-style
//! multiplexer modules (via the library mapper with the enumerated module
//! function set) — the paper's "commercial FPGA architectures" future
//! work, from both sides of the 1990 market.
//!
//! Run with `cargo run -p chortle --example act1_mapping --release`.

use chortle::{map_network, MapOptions};
use chortle_circuits::benchmark;
use chortle_logic_opt::optimize;
use chortle_mis::{act1_library, map_network as lib_map, MisOptions, ACT1_MAX_VARS};
use chortle_netlist::check_equivalence;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let act1 = act1_library();
    println!("{:<10} {:>9} {:>12}", "Circuit", "4-LUTs", "ACT1 modules");
    for name in ["9symml", "alu2", "apex7", "count", "frg1"] {
        let raw = benchmark(name).expect("known benchmark");
        let (net, _) = optimize(&raw)?;
        let luts = map_network(&net, &MapOptions::builder(4).build()?)?;
        let modules = lib_map(&net, &act1, &MisOptions::new(ACT1_MAX_VARS))?;
        check_equivalence(&net, &modules.circuit)?;
        println!(
            "{:<10} {:>9} {:>12}",
            name, luts.report.luts, modules.report.luts
        );
    }
    Ok(())
}
