//! Maps benchmarks into 4-input LUTs and packs them into XC3000-style
//! two-output CLBs (5 block inputs) — the "commercial FPGA architectures"
//! extension the paper lists as future work.
//!
//! Run with `cargo run -p chortle --example clb_packing --release`.

use chortle::clb::{pack_clbs, ClbOptions};
use chortle::{map_network, MapOptions};
use chortle_circuits::benchmark;
use chortle_logic_opt::optimize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:>7} {:>7} {:>8} {:>9}",
        "Circuit", "LUTs", "CLBs", "paired", "saving%"
    );
    for name in ["9symml", "alu2", "alu4", "apex7", "count", "frg1", "k2"] {
        let raw = benchmark(name).expect("known benchmark");
        let (net, _) = optimize(&raw)?;
        let mapped = map_network(&net, &MapOptions::builder(4).build()?)?;
        let packing = pack_clbs(&mapped.circuit, &ClbOptions::xc3000());
        let luts = mapped.report.luts;
        let clbs = packing.block_count();
        let saving = (luts - clbs) as f64 / luts as f64 * 100.0;
        println!(
            "{:<10} {:>7} {:>7} {:>8} {:>8.1}",
            name,
            luts,
            clbs,
            packing.paired_count(),
            saving
        );
    }
    Ok(())
}
