//! Walks through the paper's worked examples: the Figure 1 network and
//! its 3-LUT mapping (Figure 2), forest creation at fanout nodes
//! (Figure 3), and decomposition of a wide node (Figure 7).
//!
//! Run with `cargo run -p chortle --example paper_figures`.

use chortle::figures::{figure1_network, figure3_network, figure7_network};
use chortle::{map_network, Forest, MapOptions};
use chortle_netlist::LutSource;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1 / Figure 2: a five-input network mapped into three 3-LUTs.
    let net = figure1_network();
    let mapped = map_network(&net, &MapOptions::builder(3).build()?)?;
    println!(
        "Figure 1 network: {} gates over inputs a..e",
        net.num_gates()
    );
    println!(
        "Figure 2 mapping with K=3: {} lookup tables",
        mapped.report.luts
    );
    for (i, lut) in mapped.circuit.luts().iter().enumerate() {
        let inputs: Vec<String> = lut
            .inputs()
            .iter()
            .map(|s| match s {
                LutSource::Input(id) => net.node(*id).name().unwrap_or("?").to_owned(),
                LutSource::Lut(l) => format!("LUT{}", l.index()),
                LutSource::Const(v) => format!("const {v}"),
            })
            .collect();
        println!("  LUT{i}({}) table={}", inputs.join(", "), lut.table());
    }

    // Figure 3: forest creation.
    let fig3 = figure3_network();
    let forest = Forest::of(&fig3.simplified());
    println!(
        "\nFigure 3: the fanout node splits the graph into {} trees",
        forest.trees.len()
    );
    for t in &forest.trees {
        println!(
            "  tree rooted at {:?}: {} nodes, {} leaves",
            t.root,
            t.nodes.len(),
            t.leaf_count()
        );
    }

    // Figure 7: decomposition of a wide node.
    let fig7 = figure7_network();
    println!("\nFigure 7: a 6-input OR node under different K");
    for k in [2usize, 3, 4, 5, 6] {
        let m = map_network(&fig7, &MapOptions::builder(k).build()?)?;
        println!("  K={k}: {} LUTs", m.report.luts);
    }
    Ok(())
}
