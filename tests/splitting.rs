//! Node splitting (paper Section 3.1.4): gates wider than ten fanins are
//! pre-split into halves before the exhaustive decomposition search. The
//! paper reports that "the mapping of a split node uses no more lookup
//! tables than the mapping of the non-split nodes and are found in much
//! less time"; these tests measure that claim on wide-gate workloads.

use chortle::{map_network, MapOptions};
use chortle_circuits::control;
use chortle_netlist::{check_equivalence, Network, NodeOp, Signal};

/// A network of several wide gates (fanin 11..16) feeding an output each.
fn wide_gate_bank() -> Network {
    let mut net = Network::new();
    let inputs: Vec<Signal> = (0..16)
        .map(|i| Signal::new(net.add_input(format!("i{i}"))))
        .collect();
    for (o, width) in (11..=16).enumerate() {
        let op = if o % 2 == 0 { NodeOp::And } else { NodeOp::Or };
        let fanins: Vec<Signal> = inputs[..width]
            .iter()
            .enumerate()
            .map(|(i, &s)| if i % 3 == 0 { !s } else { s })
            .collect();
        let g = net.add_gate(op, fanins);
        net.add_output(format!("o{o}"), g.into());
    }
    net
}

#[test]
fn split_mapping_stays_optimal_on_plain_wide_gates() {
    // For a single wide AND/OR the optimum is known in closed form, and
    // splitting at ten must still reach it.
    let net = wide_gate_bank();
    for k in 2..=6 {
        let split = map_network(
            &net,
            &MapOptions::builder(k)
                .split_threshold(10)
                .unwrap()
                .build()
                .unwrap(),
        )
        .expect("maps");
        check_equivalence(&net, &split.circuit).expect("equivalent");
        let expect: usize = (11..=16usize).map(|w| (w - 1).div_ceil(k - 1)).sum();
        assert_eq!(split.report.luts, expect, "k={k}");
    }
}

#[test]
fn split_thresholds_agree_on_structured_logic() {
    // Wide-cube control logic, mapped with the paper's threshold (10) and
    // with the widest supported threshold (16, i.e. almost no splitting):
    // LUT counts must match — the paper's empirical claim.
    let net = control(0x51DE, 24, 8, 40, (8, 14), (2, 4));
    for k in [3usize, 5] {
        let at10 = map_network(
            &net,
            &MapOptions::builder(k)
                .split_threshold(10)
                .unwrap()
                .build()
                .unwrap(),
        )
        .expect("maps");
        let at16 = map_network(
            &net,
            &MapOptions::builder(k)
                .split_threshold(16)
                .unwrap()
                .build()
                .unwrap(),
        )
        .expect("maps");
        check_equivalence(&net, &at10.circuit).expect("equivalent");
        // The paper's observation is empirical ("the mapping of a split
        // node uses no more lookup tables ... We believe [this is]
        // because for large fanin nodes there are many different minimum
        // cost decompositions"). Occasionally a split does preclude all
        // minimum decompositions; allow at most 1% overhead.
        let slack = (at16.report.luts / 100).max(1);
        assert!(
            at10.report.luts <= at16.report.luts + slack,
            "k={k}: splitting at 10 cost too many LUTs ({} vs {})",
            at10.report.luts,
            at16.report.luts
        );
    }
}

#[test]
fn aggressive_splitting_can_cost_luts() {
    // Splitting below K forfeits decompositions; a threshold of 2 (full
    // binarization before mapping) may cost LUTs relative to 10 — this is
    // the quality/runtime trade-off the threshold controls.
    let net = control(0x51DF, 20, 6, 30, (6, 12), (2, 4));
    let fine = map_network(
        &net,
        &MapOptions::builder(5)
            .split_threshold(10)
            .unwrap()
            .build()
            .unwrap(),
    )
    .expect("maps");
    let coarse = map_network(
        &net,
        &MapOptions::builder(5)
            .split_threshold(2)
            .unwrap()
            .build()
            .unwrap(),
    )
    .expect("maps");
    check_equivalence(&net, &coarse.circuit).expect("equivalent");
    assert!(
        fine.report.luts <= coarse.report.luts,
        "threshold 10 must never lose to threshold 2"
    );
}

#[test]
fn report_tracks_splitting() {
    let net = wide_gate_bank();
    let mapped = map_network(
        &net,
        &MapOptions::builder(4)
            .split_threshold(10)
            .unwrap()
            .build()
            .unwrap(),
    )
    .expect("maps");
    assert!(mapped.report.max_fanin <= 10);
    let unsplit = map_network(
        &net,
        &MapOptions::builder(4)
            .split_threshold(16)
            .unwrap()
            .build()
            .unwrap(),
    )
    .expect("maps");
    assert!(unsplit.report.max_fanin == 16);
    assert!(unsplit.report.tree_nodes <= mapped.report.tree_nodes);
}
