//! Reconvergent fanout (paper Section 4.2, K=2 discussion): "The four
//! cases in which MIS achieves fewer lookup tables occur because the
//! input network contains reconvergent fanout, such as XOR, which Chortle
//! cannot find." These tests pin that asymmetry and its boundary.

use chortle::{map_network, MapOptions};
use chortle_logic_opt::optimize;
use chortle_mis::{map_network as mis_map, Library, MisOptions};
use chortle_netlist::{check_equivalence, Network, NodeOp, Signal};

fn xor_network(pairs: usize) -> Network {
    let mut net = Network::new();
    for p in 0..pairs {
        let a = net.add_input(format!("a{p}"));
        let b = net.add_input(format!("b{p}"));
        let t1 = net.add_gate(NodeOp::And, vec![a.into(), Signal::inverted(b)]);
        let t2 = net.add_gate(NodeOp::And, vec![Signal::inverted(a), b.into()]);
        let z = net.add_gate(NodeOp::Or, vec![t1.into(), t2.into()]);
        net.add_output(format!("z{p}"), z.into());
    }
    net
}

#[test]
fn mis_beats_chortle_on_xor_at_k2() {
    let net = xor_network(4);
    let lib = Library::for_paper(2);
    let mis = mis_map(&net, &lib, &MisOptions::new(2)).expect("maps");
    let ch = map_network(&net, &MapOptions::builder(2).build().unwrap()).expect("maps");
    check_equivalence(&net, &mis.circuit).expect("equivalent");
    check_equivalence(&net, &ch.circuit).expect("equivalent");
    // One XOR cell per pair for MIS; three 2-LUTs per pair for Chortle.
    assert_eq!(mis.report.luts, 4);
    assert_eq!(ch.report.luts, 12);
}

#[test]
fn the_gap_closes_at_k4() {
    // At K=4 Chortle absorbs the whole XOR tree (4 leaves) into one LUT,
    // so the reconvergence advantage disappears.
    let net = xor_network(4);
    let lib = Library::for_paper(4);
    let mis = mis_map(&net, &lib, &MisOptions::new(4)).expect("maps");
    let ch = map_network(&net, &MapOptions::builder(4).build().unwrap()).expect("maps");
    assert_eq!(mis.report.luts, ch.report.luts);
    assert_eq!(ch.report.luts, 4);
}

#[test]
fn sop_shaped_reconvergence_is_matched_per_tree() {
    // f = (a·b + !a·c)·d + !(a·b + !a·c)·e — a mux of muxes where the
    // inner mux has fanout 2 (a tree boundary for both mappers).
    let mut net = Network::new();
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let d = net.add_input("d");
    let e = net.add_input("e");
    let t1 = net.add_gate(NodeOp::And, vec![a.into(), b.into()]);
    let t2 = net.add_gate(NodeOp::And, vec![Signal::inverted(a), c.into()]);
    let inner = net.add_gate(NodeOp::Or, vec![t1.into(), t2.into()]);
    let u1 = net.add_gate(NodeOp::And, vec![inner.into(), d.into()]);
    let u2 = net.add_gate(NodeOp::And, vec![Signal::inverted(inner), e.into()]);
    let z = net.add_gate(NodeOp::Or, vec![u1.into(), u2.into()]);
    net.add_output("z", z.into());

    let lib = Library::for_paper(3);
    let mis = mis_map(&net, &lib, &MisOptions::new(3)).expect("maps");
    let ch = map_network(&net, &MapOptions::builder(3).build().unwrap()).expect("maps");
    check_equivalence(&net, &mis.circuit).expect("equivalent");
    check_equivalence(&net, &ch.circuit).expect("equivalent");
    // Each mux is a two-level SOP shape, so the structural matcher
    // absorbs both (2 LUTs), while Chortle pays the reconvergence in
    // both trees (4 LUTs) — the same asymmetry the paper reports for
    // XOR.
    assert_eq!(mis.report.luts, 2);
    assert_eq!(ch.report.luts, 4);
}

#[test]
fn non_sop_shaped_reconvergence_is_rejected_structurally() {
    // z = a AND (b OR (a AND c)): the full cone over {a,b,c} repeats `a`
    // across three levels — no 1990 pattern tree binds it, so the
    // structural matcher rejects that cut (a purely functional matcher
    // would cover it with one LUT). Both mappers land on two LUTs.
    let mut net = Network::new();
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let t = net.add_gate(NodeOp::And, vec![a.into(), c.into()]);
    let o = net.add_gate(NodeOp::Or, vec![b.into(), t.into()]);
    let z = net.add_gate(NodeOp::And, vec![a.into(), o.into()]);
    net.add_output("z", z.into());

    let lib = Library::for_paper(3);
    let mis = mis_map(&net, &lib, &MisOptions::new(3)).expect("maps");
    let ch = map_network(&net, &MapOptions::builder(3).build().unwrap()).expect("maps");
    check_equivalence(&net, &mis.circuit).expect("equivalent");
    check_equivalence(&net, &ch.circuit).expect("equivalent");
    assert!(
        mis.report.structural_rejections > 0,
        "the three-level reconvergent cut must be rejected"
    );
    assert_eq!(mis.report.luts, 2);
    assert_eq!(ch.report.luts, 2);
}

#[test]
fn parity_chain_gap_shrinks_with_k() {
    // An 8-input parity tree: Chortle's disadvantage is largest at K=2
    // and vanishes by K=4 (where each XOR pair fits one LUT for both).
    let mut net = Network::new();
    let inputs: Vec<Signal> = (0..8)
        .map(|i| Signal::new(net.add_input(format!("x{i}"))))
        .collect();
    let mut level = inputs;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0]);
                continue;
            }
            next.push(chortle_circuits::xor2(&mut net, pair[0], pair[1]));
        }
        level = next;
    }
    net.add_output("parity", level[0]);

    let (optimized, _) = optimize(&net).expect("acyclic");
    let mut gaps = Vec::new();
    for k in [2usize, 3, 4] {
        let lib = Library::for_paper(k);
        let mis = mis_map(&optimized, &lib, &MisOptions::new(k)).expect("maps");
        let ch = map_network(&optimized, &MapOptions::builder(k).build().unwrap()).expect("maps");
        check_equivalence(&optimized, &ch.circuit).expect("equivalent");
        gaps.push(ch.report.luts as isize - mis.report.luts as isize);
    }
    assert!(gaps[0] > 0, "MIS should win parity at K=2: gaps={gaps:?}");
    assert!(
        gaps[2] <= gaps[0],
        "the reconvergence gap must shrink with K: {gaps:?}"
    );
}
