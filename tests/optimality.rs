//! Optimality oracle: the production subset-DP mapper must report exactly
//! the same minimum LUT counts as the literal transcription of the
//! paper's pseudo-code (explicit partition + utilization-division
//! enumeration), on real trees extracted from the benchmark suite.

use chortle::reference::reference_tree_cost;
use chortle::{tree_lut_cost, Forest};
use chortle_circuits::benchmark;
use chortle_logic_opt::optimize;

#[test]
fn production_dp_is_optimal_on_suite_trees() {
    let mut checked = 0usize;
    for name in ["9symml", "alu2", "alu4", "count", "frg1", "apex7", "k2"] {
        let net = benchmark(name).expect("known");
        let (optimized, _) = optimize(&net).expect("acyclic");
        let normal = optimized.simplified();
        let forest = Forest::of(&normal);
        for tree in &forest.trees {
            // The reference mapper is exponential; keep it to small trees.
            if tree.nodes.len() > 12 || tree.max_fanin() > 6 {
                continue;
            }
            for k in 2..=5 {
                let fast = tree_lut_cost(tree, k);
                let slow = reference_tree_cost(tree, k);
                assert_eq!(fast, slow, "{name}: tree at {:?} K={k}", tree.root);
            }
            checked += 1;
            if checked >= 400 {
                return;
            }
        }
    }
    assert!(checked >= 50, "too few trees exercised ({checked})");
}

#[test]
fn utilization_inequality_holds_via_monotonicity() {
    // The paper's inequality cost(minmap(n,U)) >= cost(minmap(n,K)) is
    // established by construction; spot-check it through the public API
    // by mapping with decreasing K and confirming the tree cost never
    // drops when K shrinks.
    let net = benchmark("alu2").expect("known");
    let (optimized, _) = optimize(&net).expect("acyclic");
    let normal = optimized.simplified();
    let forest = Forest::of(&normal);
    for tree in forest.trees.iter().take(50) {
        if tree.max_fanin() > 10 {
            continue;
        }
        let mut last = u32::MAX;
        for k in 2..=6 {
            let c = tree_lut_cost(tree, k);
            assert!(c <= last, "cost must be monotone in K");
            last = c;
        }
    }
}

#[test]
fn single_lut_trees_are_recognized() {
    // Any tree with at most K leaves must map to exactly one LUT.
    let net = benchmark("apex7").expect("known");
    let (optimized, _) = optimize(&net).expect("acyclic");
    let normal = optimized.simplified();
    let forest = Forest::of(&normal);
    let mut seen = 0;
    for tree in &forest.trees {
        let leaves = tree.leaf_count();
        if leaves <= 5 && tree.max_fanin() <= 5 {
            assert_eq!(tree_lut_cost(tree, 5), 1, "tree with {leaves} leaves");
            seen += 1;
        }
    }
    assert!(seen > 0, "no small trees found to check");
}
