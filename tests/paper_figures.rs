//! Executable checks of the behaviours the paper's figures illustrate
//! (Figures 1–3, 5–7), through the public API only.

use chortle::figures::{figure1_network, figure3_network, figure7_network};
use chortle::{map_network, Forest, MapOptions};
use chortle_netlist::check_equivalence;

#[test]
fn figure1_and_2_network_maps_into_three_3luts() {
    let net = figure1_network();
    let mapped = map_network(&net, &MapOptions::builder(3).build().unwrap()).expect("maps");
    assert_eq!(
        mapped.report.luts, 3,
        "Figure 2 shows a 3-LUT implementation"
    );
    check_equivalence(&net, &mapped.circuit).expect("equivalent");
    assert!(mapped.circuit.luts().iter().all(|l| l.utilization() <= 3));
}

#[test]
fn figure3_forest_creation() {
    // The fanout node n is replaced by an additional node: three trees,
    // and both consumers see n as a leaf.
    let net = figure3_network();
    let forest = Forest::of(&net.simplified());
    assert_eq!(forest.trees.len(), 3);
    let leaf_counts: Vec<usize> = forest.trees.iter().map(|t| t.leaf_count()).collect();
    assert_eq!(leaf_counts, vec![2, 2, 2]);
}

#[test]
fn figure5_utilization_divisions_exist_for_k4() {
    // Figure 5 illustrates a 4-input root LUT with division {1,3}: an
    // unbalanced tree where one child feeds a wire and the other is
    // absorbed with three inputs. The OR(AND(a,b,c), d) shape realizes
    // exactly that division in one LUT.
    use chortle_netlist::{Network, NodeOp};
    let mut net = Network::new();
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let d = net.add_input("d");
    let g = net.add_gate(NodeOp::And, vec![a.into(), b.into(), c.into()]);
    let z = net.add_gate(NodeOp::Or, vec![g.into(), d.into()]);
    net.add_output("z", z.into());
    let mapped = map_network(&net, &MapOptions::builder(4).build().unwrap()).expect("maps");
    assert_eq!(mapped.report.luts, 1);
    assert_eq!(mapped.circuit.luts()[0].utilization(), 4);
}

#[test]
fn figure6_child_root_lut_elimination() {
    // Figure 6: constructing minmap(n, {1,3}) absorbs the chosen child's
    // root LUT. Observable effect: a two-level tree with 5 leaves at K=4
    // maps to 2 LUTs, not 3 — one child's root LUT was eliminated.
    use chortle_netlist::{Network, NodeOp};
    let mut net = Network::new();
    let inputs: Vec<_> = (0..5).map(|i| net.add_input(format!("i{i}"))).collect();
    let g1 = net.add_gate(NodeOp::And, vec![inputs[0].into(), inputs[1].into()]);
    let g2 = net.add_gate(
        NodeOp::And,
        vec![inputs[2].into(), inputs[3].into(), inputs[4].into()],
    );
    let z = net.add_gate(NodeOp::Or, vec![g1.into(), g2.into()]);
    net.add_output("z", z.into());
    let mapped = map_network(&net, &MapOptions::builder(4).build().unwrap()).expect("maps");
    assert_eq!(mapped.report.luts, 2);
    check_equivalence(&net, &mapped.circuit).expect("equivalent");
}

#[test]
fn figure7_decomposition_of_a_wide_node() {
    let net = figure7_network();
    // 6-input node at K=4: must introduce an intermediate node (2 LUTs);
    // at K=6 one LUT suffices; at K=2 a full binary decomposition (5).
    for (k, expect) in [(2usize, 5usize), (4, 2), (6, 1)] {
        let mapped = map_network(&net, &MapOptions::builder(k).build().unwrap()).expect("maps");
        assert_eq!(mapped.report.luts, expect, "k={k}");
        check_equivalence(&net, &mapped.circuit).expect("equivalent");
    }
}

#[test]
fn figure4_dynamic_programming_postorder_is_deterministic() {
    // The pseudo-code's postorder DP must be deterministic: mapping the
    // same network twice yields the identical circuit.
    let net = figure1_network();
    let a = map_network(&net, &MapOptions::builder(3).build().unwrap()).expect("maps");
    let b = map_network(&net, &MapOptions::builder(3).build().unwrap()).expect("maps");
    assert_eq!(a.circuit, b.circuit);
}
