//! End-to-end pipeline tests: generate → optimize → map (both mappers) →
//! verify, across the benchmark suite and every K the paper evaluates.

use chortle::{map_network, MapOptions};
use chortle_circuits::benchmark;
use chortle_logic_opt::optimize;
use chortle_mis::{map_network as mis_map, Library, MisOptions};
use chortle_netlist::{check_equivalence, check_networks, LutStats, NetworkStats};

/// The subset of the suite exercised per-K in tests (the full suite runs
/// in the `tables` binary; tests keep CI time reasonable).
const TEST_CIRCUITS: [&str; 6] = ["9symml", "alu2", "alu4", "count", "frg1", "apex7"];

#[test]
fn optimization_preserves_every_suite_circuit() {
    for b in chortle_circuits::suite() {
        let (optimized, report) = optimize(&b.network).expect("acyclic");
        optimized.validate().expect("valid");
        check_networks(&b.network, &optimized)
            .unwrap_or_else(|e| panic!("{}: optimization broke the function: {e}", b.name));
        assert!(
            report.literals_after <= report.literals_before,
            "{}: optimization grew the SOP literal count",
            b.name
        );
    }
}

#[test]
fn chortle_maps_all_test_circuits_at_every_k() {
    for name in TEST_CIRCUITS {
        let net = benchmark(name).expect("known");
        let (optimized, _) = optimize(&net).expect("acyclic");
        for k in 2..=5 {
            let mapped = map_network(&optimized, &MapOptions::builder(k).build().unwrap())
                .unwrap_or_else(|e| panic!("{name} K={k}: {e}"));
            check_equivalence(&optimized, &mapped.circuit)
                .unwrap_or_else(|e| panic!("{name} K={k}: {e}"));
            assert!(mapped.circuit.luts().iter().all(|l| l.utilization() <= k));
        }
    }
}

#[test]
fn mis_maps_all_test_circuits_at_every_k() {
    for name in TEST_CIRCUITS {
        let net = benchmark(name).expect("known");
        let (optimized, _) = optimize(&net).expect("acyclic");
        for k in 2..=5 {
            let lib = Library::for_paper(k);
            let mapped = mis_map(&optimized, &lib, &MisOptions::new(k))
                .unwrap_or_else(|e| panic!("{name} K={k}: {e}"));
            check_equivalence(&optimized, &mapped.circuit)
                .unwrap_or_else(|e| panic!("{name} K={k}: {e}"));
        }
    }
}

#[test]
fn chortle_lut_count_is_monotone_in_k() {
    for name in TEST_CIRCUITS {
        let net = benchmark(name).expect("known");
        let (optimized, _) = optimize(&net).expect("acyclic");
        let mut last = usize::MAX;
        for k in 2..=6 {
            let mapped =
                map_network(&optimized, &MapOptions::builder(k).build().unwrap()).expect("maps");
            assert!(
                mapped.report.luts <= last,
                "{name}: K={k} used more LUTs than K={}",
                k - 1
            );
            last = mapped.report.luts;
        }
    }
}

#[test]
fn fanout_duplication_rarely_helps_mis() {
    // The paper: "We have found that it is difficult to realize any
    // savings by this greedy approach" — duplication should not beat the
    // non-duplicating cover by much, and usually loses.
    let mut dup_total = 0usize;
    let mut tree_total = 0usize;
    for name in TEST_CIRCUITS {
        let net = benchmark(name).expect("known");
        let (optimized, _) = optimize(&net).expect("acyclic");
        let lib = Library::for_paper(4);
        let tree = mis_map(&optimized, &lib, &MisOptions::new(4)).expect("maps");
        let dup = mis_map(
            &optimized,
            &lib,
            &MisOptions::new(4).with_fanout_duplication(),
        )
        .expect("maps");
        dup_total += dup.report.luts;
        tree_total += tree.report.luts;
    }
    assert!(
        dup_total + 5 >= tree_total,
        "duplication unexpectedly dominant: {dup_total} vs {tree_total}"
    );
}

#[test]
fn mapped_circuits_report_sane_stats() {
    let net = benchmark("alu4").expect("known");
    let (optimized, _) = optimize(&net).expect("acyclic");
    let before = NetworkStats::of(&optimized);
    let mapped = map_network(&optimized, &MapOptions::builder(4).build().unwrap()).expect("maps");
    let stats = LutStats::of(&mapped.circuit);
    assert_eq!(stats.luts, mapped.report.luts);
    assert!(stats.depth >= 1);
    // Decomposition of wide nodes can add at most log-factor levels; a
    // generous structural sanity bound.
    assert!(
        stats.depth <= 2 * before.depth.max(1),
        "LUT depth {} wildly exceeds gate depth {}",
        stats.depth,
        before.depth
    );
    assert!(
        stats.avg_utilization_centi > 100,
        "LUTs should use >1 input on average"
    );
}

#[test]
fn blif_roundtrip_of_mapped_circuit() {
    // The mapped circuit can be written as BLIF and re-read as an
    // equivalent network — the hand-off a downstream place-and-route
    // tool would consume.
    let net = benchmark("alu2").expect("known");
    let (optimized, _) = optimize(&net).expect("acyclic");
    let mapped = map_network(&optimized, &MapOptions::builder(4).build().unwrap()).expect("maps");
    let text = chortle_netlist::write_lut_blif(&optimized, &mapped.circuit, "alu2_mapped");
    let reread = chortle_netlist::parse_blif(&text).expect("parses");
    check_networks(&optimized, &reread).expect("round trip preserves functions");
}

#[test]
fn unoptimized_networks_also_map_correctly() {
    // Mapping does not require the optimization script: raw generator
    // output goes straight through `simplified()` inside the mappers.
    for name in ["alu2", "count"] {
        let net = benchmark(name).expect("known");
        let mapped = map_network(&net, &MapOptions::builder(4).build().unwrap()).expect("maps");
        check_equivalence(&net, &mapped.circuit).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
